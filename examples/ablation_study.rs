//! Ablation study of the simulator's design knobs: how plane-level
//! parallelism, the queueing discipline, and the hybrid page allocator
//! change the *simulated* latencies (the wall-clock cost of each knob is
//! benchmarked in `crates/bench/benches/ablation.rs`).
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use ssdkeeper_repro::flash_sim::scheduler::SchedPolicy;
use ssdkeeper_repro::flash_sim::{PageAllocPolicy, Simulator, SsdConfig, TenantLayout};
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn mixed_trace(requests: usize) -> Vec<ssdkeeper_repro::flash_sim::IoRequest> {
    let specs = [
        TenantSpec::synthetic("w0", 0.95, 30_000.0, 1 << 12),
        TenantSpec::synthetic("r0", 0.05, 50_000.0, 1 << 12),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, requests, t as u64 + 9))
        .collect();
    mix_chronological(&streams, requests)
}

fn run(
    cfg: SsdConfig,
    dynamic_writes: bool,
    trace: &[ssdkeeper_repro::flash_sim::IoRequest],
) -> (f64, f64) {
    let mut layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(1 << 12);
    if dynamic_writes {
        layout = layout.with_policy(0, PageAllocPolicy::Dynamic);
    }
    let report = Simulator::new(cfg, layout).unwrap().run(trace).unwrap();
    (report.read.mean_us(), report.write.mean_us())
}

fn main() {
    let trace = mixed_trace(20_000);
    let base = SsdConfig::scaled_for_sweeps();
    println!(
        "{:<42} {:>12} {:>12}",
        "configuration", "read (us)", "write (us)"
    );

    let cases: Vec<(&str, SsdConfig, bool)> = vec![
        ("baseline (plane-par, FIFO, static)", base.clone(), false),
        (
            "no plane parallelism (die-serial arrays)",
            SsdConfig {
                plane_parallelism: false,
                ..base.clone()
            },
            false,
        ),
        (
            "read-priority scheduling (bypass 8)",
            SsdConfig {
                sched_policy: SchedPolicy::ReadPriority { max_bypass: 8 },
                ..base.clone()
            },
            false,
        ),
        (
            "fast bus (800 MB/s, array-bound regime)",
            SsdConfig {
                bus_mb_per_s: 800,
                ..base.clone()
            },
            false,
        ),
        ("dynamic allocation for the writer", base.clone(), true),
    ];
    for (name, cfg, dynamic) in cases {
        let (read, write) = run(cfg, dynamic, &trace);
        println!("{name:<42} {read:>12.1} {write:>12.1}");
    }

    println!("\nReadings:");
    println!("  * disabling plane parallelism slashes write throughput (programs serialize);");
    println!("  * read-priority scheduling trims read latency at the cost of writes;");
    println!("  * a fast bus shifts the bottleneck to the flash array, shrinking the");
    println!("    channel-allocation effect the paper studies;");
    println!("  * dynamic write allocation spreads bursts across idle planes.");
}
