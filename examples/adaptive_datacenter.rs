//! A datacenter scenario: four MSR-like tenants co-located on one SSD,
//! comparing the Shared and Isolated baselines against SSDKeeper's
//! adaptive allocation — the workload the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example adaptive_datacenter
//! ```

use ssdkeeper_repro::ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::ssdkeeper::Strategy;
use ssdkeeper_repro::workloads::msr::paper_mix_profiles;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological};

fn main() {
    // Train a small model (a production deployment would load a saved one).
    let spec = DatasetSpec::quick(128);
    let learner = Learner::new(spec);
    println!("training the strategy model on 128 labelled workloads...");
    let model = learner.train_with(
        &dataset_or_generate(&learner),
        OptimizerChoice::AdamLogistic,
        150,
        3,
    );
    println!(
        "model ready (test accuracy {:.1}%)\n",
        model.history.final_accuracy() * 100.0
    );
    let keeper = Keeper::new(KeeperConfig::default(), model.allocator());

    // Take Mix2 from the paper: a proxy server, a source-control server, a
    // research volume, and a media server sharing the device.
    let profile = paper_mix_profiles()[1];
    println!(
        "tenants ({}, intensity level {}):",
        profile.name, profile.intensity_level
    );
    let iops = profile.tenant_iops(model.max_total_iops);
    for (i, t) in profile.members.iter().enumerate() {
        println!(
            "  tenant {i}: {:<8} write ratio {:>3.0}%  {:>8.0} IOPS",
            t.name(),
            t.write_ratio() * 100.0,
            iops[i]
        );
    }
    let streams: Vec<_> = profile
        .members
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut s = t.spec(1.0, 1 << 12);
            s.iops = iops[i];
            generate_tenant_stream(
                &s,
                i as u16,
                (40_000.0 * profile.shares[i] * 1.3) as usize,
                i as u64,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 40_000);

    let lpn_spaces = [1u64 << 12; 4];
    let shared = keeper
        .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Shared))
        .unwrap()
        .report;
    let isolated = keeper
        .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Isolated))
        .unwrap()
        .report;
    let adaptive = keeper
        .run(RunSpec::adapt_once(&trace, &lpn_spaces))
        .unwrap();

    println!(
        "\n{:<22} {:>14} {:>14}",
        "configuration", "total (us)", "vs Shared"
    );
    let base = shared.total_latency_metric_us();
    for (name, metric) in [
        ("Shared".to_string(), base),
        ("Isolated".to_string(), isolated.total_latency_metric_us()),
        (
            format!("SSDKeeper ({})", adaptive.strategy),
            adaptive.report.total_latency_metric_us(),
        ),
    ] {
        println!(
            "{:<22} {:>14.1} {:>+13.1}%",
            name,
            metric,
            (1.0 - metric / base) * 100.0
        );
    }
    println!("\nper-tenant mean read latency under SSDKeeper (us):");
    for (i, t) in adaptive.report.tenants.iter().enumerate() {
        println!(
            "  tenant {i} ({}): read {:.1}, write {:.1}",
            profile.members[i].name(),
            t.read.mean_us(),
            t.write.mean_us()
        );
    }
}

/// Generates the training dataset (kept out of `main` for readability).
fn dataset_or_generate(
    learner: &ssdkeeper_repro::ssdkeeper::learner::Learner,
) -> ssdkeeper_repro::ssdkeeper::learner::LabelledDataset {
    learner.generate_dataset(11)
}
