//! Quickstart: simulate a two-tenant SSD and compare channel strategies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a writer tenant and a reader tenant, replays their mixed trace
//! against the paper's 8-channel SSD under three channel allocations, and
//! prints the latency breakdown.

use ssdkeeper_repro::flash_sim::SsdConfig;
use ssdkeeper_repro::ssdkeeper::label::{run_under_strategy, EvalConfig};
use ssdkeeper_repro::ssdkeeper::Strategy;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn main() {
    // One write-dominated tenant and one read-dominated tenant sharing the
    // Table I device (scaled block count for a quick run).
    let writer = TenantSpec::synthetic("writer", 0.95, 25_000.0, 1 << 12);
    let reader = TenantSpec::synthetic("reader", 0.05, 45_000.0, 1 << 12);

    let w = generate_tenant_stream(&writer, 0, 8_000, 1);
    let r = generate_tenant_stream(&reader, 1, 14_000, 2);
    let trace = mix_chronological(&[w, r], 20_000);
    println!(
        "mixed trace: {} requests over {:.1} ms of arrivals",
        trace.len(),
        trace.last().unwrap().arrival_ns as f64 / 1e6
    );

    let eval = EvalConfig {
        ssd: SsdConfig::scaled_for_sweeps(),
        hybrid: false,
        pool: ssdkeeper_repro::parallel::PoolConfig::auto(),
    };
    let rw_chars = [0u8, 1]; // writer, reader
    let lpn_spaces = [1 << 12, 1 << 12];

    println!(
        "\n{:<10} {:>12} {:>12} {:>12}",
        "strategy", "read (us)", "write (us)", "total (us)"
    );
    for strategy in [
        Strategy::Shared,
        Strategy::Isolated,
        Strategy::TwoPart { write_channels: 2 },
    ] {
        let report = run_under_strategy(&trace, strategy, &rw_chars, &lpn_spaces, &eval)
            .expect("workload fits the device");
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            strategy.to_string(),
            report.read.mean_us(),
            report.write.mean_us(),
            report.total_latency_metric_us(),
        );
    }
    println!("\nLower total is better; which strategy wins depends on the mix —");
    println!("that is exactly the gap SSDKeeper's learned allocator closes.");
}
