//! A drifting workload: the tenant mix flips mid-run (read-heavy phase,
//! then write-heavy phase). A single Algorithm 2 decision commits to the
//! first phase's pattern; the periodic controller
//! ([`Keeper::run`] with `RunSpec::periodic`) re-observes every window
//! and re-partitions when the mix changes.
//!
//! ```text
//! cargo run --release --example drifting_workload
//! ```

use ssdkeeper_repro::flash_sim::IoRequest;
use ssdkeeper_repro::ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::ssdkeeper::Strategy;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// Builds a two-phase trace modelled on the paper's Mix3 (level 16):
/// phase one has a dominant sequential reader (web-server-like) next to
/// three writers; phase two hands the dominant share to the main writer.
/// Both phases have a partitioned optimum well ahead of `Shared`, but the
/// *right* partition differs — which is what periodic re-observation
/// exploits.
fn drifting_trace(per_phase: usize) -> Vec<IoRequest> {
    // (write_ratio, pattern flavour) per tenant: t0 web-like reader,
    // t1 research-volume writer, t2 proxy writer, t3 media writer.
    let ratios = [0.01, 0.91, 0.97, 0.88];
    let total_iops = 96_000.0; // intensity level 16 on the 120k scale
    let phase = |reader_dominant: bool, offset_ns: u64, seed: u64| -> Vec<Vec<IoRequest>> {
        let shares: [f64; 4] = if reader_dominant {
            [0.67, 0.26, 0.03, 0.04]
        } else {
            [0.26, 0.67, 0.03, 0.04]
        };
        ratios
            .iter()
            .zip(shares.iter())
            .enumerate()
            .map(|(t, (&wr, &share))| {
                let mut spec =
                    TenantSpec::synthetic(format!("t{t}"), wr, total_iops * share, 1 << 12);
                if wr < 0.5 {
                    spec.pattern =
                        ssdkeeper_repro::workloads::AddressPattern::SequentialRuns { run_len: 16 };
                    spec.size = ssdkeeper_repro::workloads::SizeDist::Uniform { min: 2, max: 4 };
                } else {
                    spec.pattern = ssdkeeper_repro::workloads::AddressPattern::Zipf { theta: 0.85 };
                    spec.size = ssdkeeper_repro::workloads::SizeDist::Uniform { min: 1, max: 2 };
                }
                let count = (per_phase as f64 * share) as usize;
                let mut stream =
                    generate_tenant_stream(&spec, t as u16, count.max(1), seed + t as u64);
                for r in &mut stream {
                    r.arrival_ns += offset_ns;
                }
                stream
            })
            .collect()
    };
    let phase1 = phase(true, 0, 1);
    let phase1_end = phase1
        .iter()
        .filter_map(|s| s.last().map(|r| r.arrival_ns + 1))
        .max()
        .unwrap_or(0);
    let phase2 = phase(false, phase1_end, 100);
    // Concatenate per tenant so the merge sees four streams, each sorted
    // (phase 2 arrivals all follow phase 1).
    let streams: Vec<Vec<IoRequest>> = phase1
        .into_iter()
        .zip(phase2)
        .map(|(mut a, b)| {
            a.extend(b);
            a
        })
        .collect();
    mix_chronological(&streams, per_phase * 2)
}

fn main() {
    // Reuse a previously trained model when available (produced by
    // `exp --bin fig4`); otherwise train a small one on the spot.
    let allocator =
        match ssdkeeper_repro::ssdkeeper::model_io::load_allocator("artifacts/model.txt") {
            Ok(allocator) => {
                println!("loaded artifacts/model.txt");
                allocator
            }
            Err(_) => {
                println!("no saved model found; training a small one (this takes ~1 min)...");
                let learner = Learner::new(DatasetSpec::quick(256));
                let model = learner.train_with(
                    &learner.generate_dataset(21),
                    OptimizerChoice::AdamLogistic,
                    200,
                    2,
                );
                println!(
                    "model test accuracy: {:.1}%",
                    model.history.final_accuracy() * 100.0
                );
                model.allocator()
            }
        };

    let keeper = Keeper::new(KeeperConfig::default(), allocator);
    let trace = drifting_trace(60_000);
    let lpn_spaces = [1u64 << 12; 4];
    println!(
        "drifting trace: {} requests over {:.0} ms; dominances invert halfway",
        trace.len(),
        trace.last().unwrap().arrival_ns as f64 / 1e6
    );

    let shared = keeper
        .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Shared))
        .unwrap()
        .report;
    let single = keeper
        .run(RunSpec::adapt_once(&trace, &lpn_spaces))
        .unwrap();
    let periodic = keeper
        .run(RunSpec::periodic(
            &trace,
            &lpn_spaces,
            keeper.config().observe_window_ns,
        ))
        .unwrap();

    let base = shared.total_latency_metric_us();
    println!("\n{:<26} {:>12} {:>10}", "mode", "total (us)", "vs Shared");
    for (name, metric) in [
        ("Shared (no adaptation)".to_string(), base),
        (
            format!("one decision ({})", single.strategy),
            single.report.total_latency_metric_us(),
        ),
        (
            format!("periodic ({} switches)", periodic.decisions.len()),
            periodic.report.total_latency_metric_us(),
        ),
    ] {
        println!(
            "{:<26} {:>12.1} {:>+9.1}%",
            name,
            metric,
            (1.0 - metric / base) * 100.0
        );
    }

    println!("\nperiodic decisions:");
    for d in &periodic.decisions {
        println!(
            "  t={:>6.0} ms: {}  <- {}",
            d.at_ns as f64 / 1e6,
            d.strategy,
            d.features
        );
    }

    // Phase-wise oracle: the best static strategy for each half,
    // evaluated exhaustively - the bound a perfect model with instant
    // detection would approach.
    use ssdkeeper_repro::ssdkeeper::label::{best_strategy, evaluate_all, EvalConfig};
    let mid = trace.len() / 2;
    let mut second_half = trace[mid..].to_vec();
    let t0 = second_half[0].arrival_ns;
    for r in &mut second_half {
        r.arrival_ns -= t0;
    }
    let first_half = trace[..mid].to_vec();
    println!("\nphase-wise static oracle:");
    for (name, part) in [("phase 1", &first_half), ("phase 2", &second_half)] {
        let evals = evaluate_all(part, 4, &lpn_spaces, &EvalConfig::default()).unwrap();
        let best = best_strategy(&evals);
        let shared_metric = evals
            .iter()
            .find(|e| e.strategy == Strategy::Shared)
            .unwrap()
            .metric_us;
        println!(
            "  {name}: {} at {:.0} us ({:+.1}% vs Shared)",
            best.strategy,
            best.metric_us,
            (1.0 - best.metric_us / shared_metric) * 100.0
        );
    }
}
