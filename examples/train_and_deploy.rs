//! End-to-end SSDKeeper lifecycle: generate labelled data (Algorithm 1),
//! train the strategy model, persist it, reload it, and drive an adaptive
//! run (Algorithm 2).
//!
//! ```text
//! cargo run --release --example train_and_deploy
//! ```
//!
//! Uses deliberately small counts so the whole pipeline finishes in about
//! a minute; `exp --bin run_all` is the full-scale version.

use ssdkeeper_repro::ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::ssdkeeper::ChannelAllocator;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn main() {
    // --- Offline: label synthetic mixed workloads and train. ---
    let spec = DatasetSpec::quick(96);
    let max_iops = spec.max_total_iops;
    let learner = Learner::new(spec);
    println!("labelling 96 mixed workloads x 42 strategies (Algorithm 1)...");
    let dataset = learner.generate_dataset(7);
    let hist = dataset.label_histogram();
    let classes_used = hist.iter().filter(|&&n| n > 0).count();
    println!(
        "dataset ready: {} samples across {} strategy classes",
        dataset.samples.len(),
        classes_used
    );

    println!("training Adam-logistic (the paper's best configuration)...");
    let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 120, 1);
    println!(
        "trained in {:?}; final test accuracy {:.1}%",
        model.history.wall_time,
        model.history.final_accuracy() * 100.0
    );

    // --- Persist and reload, as a host would push parameters to the FTL. ---
    let path = std::env::temp_dir().join("ssdkeeper_model.txt");
    ann::io::save_network(&model.network, &path).expect("save model");
    let reloaded = ann::io::load_network(&path).expect("reload model");
    let allocator = ChannelAllocator::new(reloaded, max_iops);
    let cost = allocator.cost();
    println!(
        "deployed model: {} bytes of parameters, {} multiplications per decision",
        cost.param_bytes, cost.mults_per_decision
    );

    // --- Online: adaptive run on a fresh four-tenant mix. ---
    let specs = [
        TenantSpec::synthetic("prxy-like", 0.97, 20_000.0, 1 << 12),
        TenantSpec::synthetic("web-like", 0.02, 60_000.0, 1 << 12),
        TenantSpec::synthetic("rsrch-like", 0.90, 8_000.0, 1 << 12),
        TenantSpec::synthetic("mds-like", 0.08, 12_000.0, 1 << 12),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, 10_000, 40 + t as u64))
        .collect();
    let trace = mix_chronological(&streams, 30_000);

    let keeper = Keeper::new(KeeperConfig::default(), allocator);
    let outcome = keeper
        .run(RunSpec::adapt_once(&trace, &[1 << 12; 4]))
        .expect("adaptive run");
    let features = outcome.features.as_ref().expect("adapt-once features");
    println!("\nobserved features at t=T: {features}");
    println!("SSDKeeper chose: {}", outcome.strategy);
    println!(
        "total latency metric: {:.1} us (read {:.1}, write {:.1})",
        outcome.report.total_latency_metric_us(),
        outcome.report.read.mean_us(),
        outcome.report.write.mean_us()
    );
    std::fs::remove_file(&path).ok();
}
