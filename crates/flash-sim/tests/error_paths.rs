//! Error-path coverage for trace validation and `SimError` rendering:
//! every rejection a caller can hit has a stable, actionable Display
//! string, and both backends reject malformed inputs the same way.

use flash_sim::{
    validate_trace, BackendKind, IoRequest, NullProbe, Op, SimBuilder, SimError, SsdConfig,
    TenantLayout,
};

fn cfg() -> SsdConfig {
    SsdConfig::small_test()
}

fn layout(cfg: &SsdConfig) -> TenantLayout {
    TenantLayout::shared(2, cfg).with_lpn_space_all(64)
}

fn req(id: u64, tenant: u16, lpn: u64, pages: u32, at: u64) -> IoRequest {
    IoRequest::new(id, tenant, Op::Write, lpn, pages, at)
}

#[test]
fn unsorted_trace_names_the_first_bad_index() {
    let trace = vec![req(0, 0, 0, 1, 100), req(1, 0, 1, 1, 50)];
    let err = validate_trace(&trace, 2).unwrap_err();
    assert!(matches!(err, SimError::TraceNotSorted { index: 1 }));
    assert_eq!(err.to_string(), "trace not sorted by arrival at index 1");
}

#[test]
fn out_of_range_tenant_is_reported_with_its_id() {
    let trace = vec![req(0, 0, 0, 1, 0), req(1, 9, 0, 1, 10)];
    let err = validate_trace(&trace, 2).unwrap_err();
    assert!(matches!(
        err,
        SimError::UnknownTenant {
            index: 1,
            tenant: 9
        }
    ));
    assert_eq!(err.to_string(), "request 1 names unknown tenant 9");
}

#[test]
fn zero_page_request_is_rejected() {
    let trace = vec![req(0, 0, 0, 0, 0)];
    let err = validate_trace(&trace, 2).unwrap_err();
    assert!(matches!(err, SimError::EmptyRequest { index: 0 }));
    assert_eq!(err.to_string(), "request 0 has zero pages");
}

/// The same validation guards both backends: a bad trace fails a
/// `Backend::run` before any time is simulated or any byte is written.
#[test]
fn both_backends_reject_bad_traces_before_running() {
    let target = std::env::temp_dir().join(format!("ssdkeeper-errpath-{}.img", std::process::id()));
    for kind in [
        BackendKind::Sim,
        BackendKind::File {
            path: target.clone(),
        },
    ] {
        let be = SimBuilder::new(cfg(), layout(&cfg()))
            .build_backend(&kind)
            .unwrap();
        let trace = vec![req(0, 0, 0, 1, 100), req(1, 0, 1, 1, 50)];
        let err = be.run(&trace, &mut NullProbe).unwrap_err();
        assert_eq!(
            err.to_string(),
            "trace not sorted by arrival at index 1",
            "{kind}"
        );
    }
    let _ = std::fs::remove_file(target);
}

/// A forced tiny command arena overflows deterministically and names
/// its limit, instead of silently wrapping CmdIds.
#[test]
fn exhausted_cmd_slots_name_the_limit() {
    let c = cfg();
    let lay = layout(&c);
    // One request large enough to need more in-flight page commands
    // than the forced one-slot arena can name.
    let trace = vec![req(0, 0, 0, 8, 0)];
    let err = SimBuilder::new(c, lay)
        .cmd_slot_limit(1)
        .build()
        .unwrap()
        .run(&trace)
        .unwrap_err();
    assert!(matches!(err, SimError::CmdIdsExhausted { limit: 1 }));
    assert_eq!(
        err.to_string(),
        "command arena exhausted: 1 slots all in flight"
    );
}

/// Oversubscribing the physical planes fails at build time with the
/// plane and the page counts spelled out.
#[test]
fn capacity_exceeded_reports_plane_and_counts() {
    let c = cfg();
    let lay = TenantLayout::shared(2, &c).with_lpn_space_all(1 << 40);
    let err = SimBuilder::new(c, lay).build().map(|_| ()).unwrap_err();
    match &err {
        SimError::CapacityExceeded {
            required,
            available,
            ..
        } => assert!(required > available),
        other => panic!("expected CapacityExceeded, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("logical pages but only") && msg.contains("fit"),
        "{msg}"
    );
}

/// The Io variant renders the failing operation and the OS reason; it
/// is raised when the file backend's target cannot be opened.
#[test]
fn io_error_renders_op_and_reason() {
    let err = SimError::Io {
        op: "open",
        reason: "permission denied".into(),
    };
    assert_eq!(err.to_string(), "real-I/O open failed: permission denied");

    let be = SimBuilder::new(cfg(), layout(&cfg()))
        .build_backend(&BackendKind::File {
            path: "/nonexistent-dir/ssdkeeper-replay.img".into(),
        })
        .unwrap();
    let err = be.run(&[req(0, 0, 0, 1, 0)], &mut NullProbe).unwrap_err();
    match &err {
        SimError::Io { op, .. } => assert_eq!(*op, "open"),
        other => panic!("expected Io error, got {other}"),
    }
    assert!(
        err.to_string().starts_with("real-I/O open failed:"),
        "{err}"
    );
}

/// Bad reallocations carry a human-readable reason.
#[test]
fn bad_reallocation_renders_its_reason() {
    let err = SimError::BadReallocation {
        reason: "tenant 7 out of range".into(),
    };
    assert_eq!(err.to_string(), "bad reallocation: tenant 7 out of range");
}
