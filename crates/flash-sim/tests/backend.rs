//! Backend-trait contract tests: the sim backend is bit-identical to the
//! bare simulator, and the file backend replays real I/O with the same
//! probe-stream shape. File-backed tests skip gracefully (printed
//! "skipped", still passing) where the environment can't run them, so
//! `cargo test -q` stays hermetic in CI containers.

use flash_sim::backend::io_uring_available;
use flash_sim::probe::ProbeEvent;
use flash_sim::{
    BackendKind, EventRecorder, IoRequest, NullProbe, Op, Reallocation, SimBuilder, SimError,
    Simulator, SsdConfig, TenantLayout,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes the tests that set `SSDKEEPER_REPLAY_ENGINE`; the var is
/// process-global and the harness runs tests on parallel threads.
static ENGINE_ENV: Mutex<()> = Mutex::new(());

fn small_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::small_test();
    cfg.channels = 4;
    cfg
}

fn two_tenant_layout(cfg: &SsdConfig) -> TenantLayout {
    TenantLayout::shared(2, cfg).with_lpn_space_all(64)
}

fn mixed_trace() -> Vec<IoRequest> {
    let mut trace = Vec::new();
    for i in 0..40u64 {
        let tenant = (i % 2) as u16;
        let op = if i % 3 == 0 { Op::Read } else { Op::Write };
        trace.push(IoRequest::new(
            i,
            tenant,
            op,
            (i * 7) % 64,
            1 + (i % 4) as u32,
            i * 5_000,
        ));
    }
    trace
}

fn realloc_at(at_ns: u64) -> Reallocation {
    Reallocation::new(at_ns, vec![(0, vec![0, 1], None), (1, vec![2, 3], None)])
}

fn tmp_target(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ssdkeeper-backend-{tag}-{}.img",
        std::process::id()
    ))
}

/// The refactor is zero-cost on the simulated path: running through the
/// `Backend` trait object produces the exact report and probe stream
/// the bare `Simulator` produces.
#[test]
fn sim_backend_is_bit_identical_to_direct_simulator() {
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let trace = mixed_trace();

    let mut direct_rec = EventRecorder::with_capacity(1 << 14);
    let mut direct_sim =
        Simulator::with_probe(cfg.clone(), layout.clone(), &mut direct_rec).unwrap();
    direct_sim
        .schedule_reallocation(realloc_at(50_000))
        .unwrap();
    let direct = direct_sim.run(&trace).unwrap();

    let mut be_rec = EventRecorder::with_capacity(1 << 14);
    let mut be = SimBuilder::new(cfg, layout)
        .build_backend(&BackendKind::Sim)
        .unwrap();
    assert_eq!(be.name(), "sim");
    assert_eq!(be.engine(), "sim");
    be.schedule_reallocation(realloc_at(50_000)).unwrap();
    let via_backend = be.run(&trace, &mut be_rec).unwrap();

    assert_eq!(direct, via_backend, "reports must be identical");
    assert_eq!(
        direct_rec.encode(),
        be_rec.encode(),
        "SSDP captures must be byte-identical"
    );
}

/// Preconditioning and slot limits configured on the builder reach the
/// sim backend.
#[test]
fn sim_backend_honors_builder_preconditioning() {
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let be = SimBuilder::new(cfg, layout)
        .precondition(&[0.5, 0.5])
        .build_backend(&BackendKind::Sim)
        .unwrap();
    let report = be.run(&[], &mut NullProbe).unwrap();
    assert!(report.ftl.seeded_pages > 0, "preconditioning must apply");
}

/// Backends reject the same malformed reallocations the simulator does,
/// at schedule time.
#[test]
fn backends_validate_reallocations_eagerly() {
    for kind in [
        BackendKind::Sim,
        BackendKind::File {
            path: tmp_target("validate"),
        },
    ] {
        let cfg = small_cfg();
        let layout = two_tenant_layout(&cfg);
        let mut be = SimBuilder::new(cfg, layout).build_backend(&kind).unwrap();
        let err = be
            .schedule_reallocation(Reallocation::new(0, vec![(7, vec![0], None)]))
            .unwrap_err();
        assert!(
            matches!(err, SimError::BadReallocation { .. }),
            "{kind}: {err}"
        );
        be.schedule_reallocation(realloc_at(10)).unwrap();
        let err = be.schedule_reallocation(realloc_at(5)).unwrap_err();
        assert!(err.to_string().contains("scheduled after"), "{kind}: {err}");
    }
    let _ = std::fs::remove_file(tmp_target("validate"));
}

/// File backend replays a mixed trace against a tmpfile and reports
/// measured latencies through the same report/probe shapes.
#[test]
fn file_backend_round_trips_against_a_tmpfile() {
    let target = tmp_target("roundtrip");
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let trace = mixed_trace();

    let mut rec = EventRecorder::with_capacity(1 << 14);
    let mut be = SimBuilder::new(cfg, layout)
        .build_backend(&BackendKind::File {
            path: target.clone(),
        })
        .unwrap();
    assert_eq!(be.name(), "file");
    be.schedule_reallocation(realloc_at(50_000)).unwrap();
    let report = be.run(&trace, &mut rec).unwrap();
    let _ = std::fs::remove_file(&target);

    assert_eq!(report.total.count as usize, trace.len());
    let pages: u64 = trace.iter().map(|r| r.size_pages as u64).sum();
    assert_eq!(report.events_processed, pages, "one command per page");
    assert_eq!(
        report.read_breakdown.cmds + report.write_breakdown.cmds,
        pages
    );
    assert!(report.makespan_ns > 0, "measured time advanced");
    assert_eq!(report.ftl.seeded_pages, 0, "no simulated FTL state");

    // The probe stream has the simulator's shape: issue/acquire/release/
    // complete per page, plus the applied reallocation.
    let events = rec.to_vec();
    let count = |f: &dyn Fn(&ProbeEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(count(&|e| matches!(e, ProbeEvent::CmdIssue(_))), pages);
    assert_eq!(count(&|e| matches!(e, ProbeEvent::CmdComplete(_))), pages);
    assert_eq!(count(&|e| matches!(e, ProbeEvent::BusAcquire(_))), pages);
    assert_eq!(count(&|e| matches!(e, ProbeEvent::BusRelease(_))), pages);
    assert_eq!(count(&|e| matches!(e, ProbeEvent::Realloc(_))), 2);

    // Capture encodes/decodes through the same SSDP codec.
    let bytes = rec.encode();
    let (decoded, dropped) = flash_sim::probe::decode_events(&bytes).unwrap();
    assert_eq!(decoded.len(), events.len());
    assert_eq!(dropped, 0);
}

/// The pread/pwrite fallback is always available; forcing it must work
/// on every kernel.
#[test]
fn file_backend_pread_engine_works() {
    let _guard = ENGINE_ENV.lock().unwrap();
    std::env::set_var("SSDKEEPER_REPLAY_ENGINE", "pread");
    let target = tmp_target("pread");
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let be = SimBuilder::new(cfg, layout)
        .build_backend(&BackendKind::File {
            path: target.clone(),
        })
        .unwrap();
    assert_eq!(be.engine(), "pread");
    let report = be.run(&mixed_trace(), &mut NullProbe).unwrap();
    std::env::remove_var("SSDKEEPER_REPLAY_ENGINE");
    let _ = std::fs::remove_file(&target);
    assert_eq!(report.total.count as usize, mixed_trace().len());
}

/// io_uring-specific path; skips cleanly where the kernel or container
/// does not provide io_uring.
#[test]
fn file_backend_uring_engine_when_available() {
    if !io_uring_available() {
        eprintln!("skipped: io_uring unavailable in this environment");
        return;
    }
    let _guard = ENGINE_ENV.lock().unwrap();
    std::env::set_var("SSDKEEPER_REPLAY_ENGINE", "uring");
    let target = tmp_target("uring");
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let be = SimBuilder::new(cfg, layout)
        .build_backend(&BackendKind::File {
            path: target.clone(),
        })
        .unwrap();
    assert_eq!(be.engine(), "io_uring");
    let report = be.run(&mixed_trace(), &mut NullProbe).unwrap();
    std::env::remove_var("SSDKEEPER_REPLAY_ENGINE");
    let _ = std::fs::remove_file(&target);
    assert_eq!(report.total.count as usize, mixed_trace().len());
}

/// Replay against a user-designated real target (device or filesystem
/// path), gated on `SSDKEEPER_REPLAY_PATH`; skips when unset so CI
/// never touches real storage it wasn't pointed at.
#[test]
fn file_backend_against_designated_target() {
    let path = match std::env::var("SSDKEEPER_REPLAY_PATH") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => {
            eprintln!("skipped: SSDKEEPER_REPLAY_PATH unset");
            return;
        }
    };
    let cfg = small_cfg();
    let layout = two_tenant_layout(&cfg);
    let be = SimBuilder::new(cfg, layout)
        .build_backend(&BackendKind::File { path })
        .unwrap();
    let report = be.run(&mixed_trace(), &mut NullProbe).unwrap();
    assert_eq!(report.total.count as usize, mixed_trace().len());
}
