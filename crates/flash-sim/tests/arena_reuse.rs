//! Arena-reuse contract: building a simulator out of a recycled
//! [`SimArena`] must be *observationally invisible*. For every workload
//! shape and seed, a warm rebuild (arena dirtied by a previous run) must
//! produce a byte-identical [`flash_sim::SimReport`] and a byte-identical
//! SSDP probe capture versus a fresh build — and error contracts like
//! command-slot exhaustion must hold on reused arenas too.

use flash_sim::{
    EventRecorder, IoRequest, Op, SimArena, SimBuilder, SimError, SimReport, SsdConfig,
    TenantLayout,
};
use simrng::{Rng, SimRng};

fn small_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::small_test();
    cfg.channels = 4;
    cfg
}

/// Write-dominated traffic hammering a tight logical space on a nearly
/// full device: remaps dominate, so GC runs throughout.
fn gc_heavy_trace(seed: u64) -> (TenantLayout, Vec<f64>, Vec<IoRequest>) {
    let cfg = small_cfg();
    let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(48);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    for i in 0..600u64 {
        let tenant = (i % 2) as u16;
        let op = if rng.gen_bool(0.9) {
            Op::Write
        } else {
            Op::Read
        };
        let lpn = rng.gen_range(0u64..48);
        trace.push(IoRequest::new(i, tenant, op, lpn, 1, i * 2_000));
    }
    (layout, vec![0.9, 0.9], trace)
}

/// Read-dominated traffic over a wider space with light preconditioning.
fn read_mostly_trace(seed: u64) -> (TenantLayout, Vec<f64>, Vec<IoRequest>) {
    let cfg = small_cfg();
    let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(128);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    for i in 0..600u64 {
        let tenant = (i % 2) as u16;
        let op = if rng.gen_bool(0.85) {
            Op::Read
        } else {
            Op::Write
        };
        let lpn = rng.gen_range(0u64..128);
        let pages = 1 + rng.gen_range(0u32..3);
        trace.push(IoRequest::new(i, tenant, op, lpn, pages, i * 3_000));
    }
    (layout, vec![0.3, 0.3], trace)
}

/// Runs a workload with a recorder attached, either fresh or out of the
/// given arena, returning the report and the SSDP capture bytes.
fn run_captured(
    layout: &TenantLayout,
    fills: &[f64],
    trace: &[IoRequest],
    arena: &mut SimArena,
) -> (SimReport, Vec<u8>) {
    let mut rec = EventRecorder::with_capacity(1 << 14);
    let sim = SimBuilder::new(small_cfg(), layout.clone())
        .precondition(fills)
        .probe(&mut rec)
        .build_with_arena(arena)
        .expect("valid device");
    let report = sim.run_reclaim(trace, arena).expect("run succeeds");
    (report, rec.encode())
}

#[test]
fn warm_arena_runs_are_byte_identical_to_fresh_runs() {
    type Fixture = fn(u64) -> (TenantLayout, Vec<f64>, Vec<IoRequest>);
    let fixtures: [(&str, Fixture); 2] = [
        ("gc_heavy", gc_heavy_trace),
        ("read_mostly", read_mostly_trace),
    ];
    for (name, make) in fixtures {
        for seed in [1u64, 42, 9001] {
            let (layout, fills, trace) = make(seed);
            let (fresh_report, fresh_ssdp) =
                run_captured(&layout, &fills, &trace, &mut SimArena::new());

            // Dirty one arena with *both* workload shapes (different
            // geometry footprints and GC pressure), then run warm.
            let mut arena = SimArena::new();
            for dirty_seed in [7u64, 8] {
                let (l2, f2, t2) = if dirty_seed % 2 == 0 {
                    gc_heavy_trace(dirty_seed)
                } else {
                    read_mostly_trace(dirty_seed)
                };
                let (report, _) = run_captured(&l2, &f2, &t2, &mut arena);
                arena.recycle_report(report);
            }
            let (warm_report, warm_ssdp) = run_captured(&layout, &fills, &trace, &mut arena);

            assert_eq!(
                fresh_report, warm_report,
                "{name}/seed {seed}: warm report diverged"
            );
            assert_eq!(
                fresh_ssdp, warm_ssdp,
                "{name}/seed {seed}: warm SSDP capture diverged"
            );
            assert!(
                !fresh_ssdp.is_empty(),
                "{name}/seed {seed}: capture must not be trivially empty"
            );
        }
    }
}

#[test]
fn gc_heavy_fixture_actually_garbage_collects() {
    let (layout, fills, trace) = gc_heavy_trace(1);
    let (report, _) = run_captured(&layout, &fills, &trace, &mut SimArena::new());
    assert!(
        report.ftl.gc_invocations > 0,
        "fixture must exercise the GC path"
    );
}

#[test]
fn cmd_slot_exhaustion_fires_on_a_reused_arena() {
    let (layout, fills, trace) = read_mostly_trace(3);
    let mut arena = SimArena::new();
    // A successful run leaves the arena warm...
    let (report, _) = run_captured(&layout, &fills, &trace, &mut arena);
    arena.recycle_report(report);
    // ...and a slot-limited rebuild from that same arena must still hit
    // the exhaustion error, not inherit the previous run's open limit.
    let sim = SimBuilder::new(small_cfg(), layout.clone())
        .precondition(&fills)
        .cmd_slot_limit(1)
        .build_with_arena(&mut arena)
        .expect("valid device");
    let err = sim.run_reclaim(&trace, &mut arena).unwrap_err();
    assert!(
        matches!(err, SimError::CmdIdsExhausted { limit: 1 }),
        "expected CmdIdsExhausted, got {err:?}"
    );
    // The arena survives the failed run and still produces correct
    // results afterwards.
    let (again, _) = run_captured(&layout, &fills, &trace, &mut arena);
    let (fresh, _) = run_captured(&layout, &fills, &trace, &mut SimArena::new());
    assert_eq!(again, fresh, "arena must recover after an errored run");
}
