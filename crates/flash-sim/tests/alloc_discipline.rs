//! Heap-allocation discipline for the hot event loop.
//!
//! The whole point of the SoA command arena + [`SimArena`] design is that
//! (a) the steady-state event loop allocates nothing once warm, and (b) a
//! rebuild out of a recycled arena allocates nothing at all. Both are
//! asserted here with a counting `#[global_allocator]`: tracking is
//! thread-local, so the harness's parallel test threads never pollute a
//! tracked window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use flash_sim::probe::{CmdComplete, Probe};
use flash_sim::{IoRequest, Op, SimArena, SimBuilder, SsdConfig, TenantLayout};

struct CountingAlloc;

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    // `try_with` so allocation during TLS teardown can't panic the
    // allocator; an untracked thread just skips the count. IN_HOOK
    // guards against recursion from the debug backtrace itself.
    let _ = TRACK.try_with(|t| {
        if t.get() && !IN_HOOK.with(|g| g.get()) {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            IN_HOOK.with(|g| g.set(true));
            if std::env::var_os("ALLOC_DEBUG").is_some() {
                eprintln!("{}", std::backtrace::Backtrace::force_capture());
            }
            IN_HOOK.with(|g| g.set(false));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation tracking on, returning its result and the
/// number of heap allocations (alloc/alloc_zeroed/realloc) it performed.
fn tracked<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.with(|c| c.set(0));
    TRACK.with(|t| t.set(true));
    let r = f();
    TRACK.with(|t| t.set(false));
    (r, ALLOCS.with(|c| c.get()))
}

fn small_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::small_test();
    cfg.channels = 4;
    cfg
}

/// A uniform fixed-rate mixed workload: constant arrival spacing and
/// sizes so the in-flight high-water mark is reached early and the back
/// half of the run is a true steady state.
fn steady_trace(reads_per_write: u64, n: u64) -> Vec<IoRequest> {
    let mut trace = Vec::new();
    for i in 0..n {
        let tenant = (i % 2) as u16;
        let op = if i % (reads_per_write + 1) == 0 {
            Op::Write
        } else {
            Op::Read
        };
        trace.push(IoRequest::new(i, tenant, op, (i * 7) % 128, 1, i * 2_500));
    }
    trace
}

#[test]
fn warm_arena_rerun_performs_zero_heap_allocations() {
    let cfg = small_cfg();
    let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(128);
    let trace = steady_trace(3, 800);

    // Cold run grows every buffer to its high-water mark...
    let mut arena = SimArena::new();
    let sim = SimBuilder::new(cfg.clone(), layout.clone())
        .build_with_arena(&mut arena)
        .expect("valid device");
    let cold = sim.run_reclaim(&trace, &mut arena).expect("cold run");
    arena.recycle_report(cold.clone());

    // ...so the warm build + full rerun must not touch the heap at all.
    // The cfg/layout clones happen outside the tracked window: they are
    // the caller's inputs, not part of the engine's run path.
    let (cfg2, layout2) = (cfg.clone(), layout.clone());
    let (warm, allocs) = tracked(|| {
        let sim = SimBuilder::new(cfg2, layout2)
            .build_with_arena(&mut arena)
            .expect("valid device");
        sim.run_reclaim(&trace, &mut arena).expect("warm run")
    });
    assert_eq!(
        allocs, 0,
        "warm arena rebuild + rerun must be allocation-free"
    );
    assert_eq!(warm, cold, "warm rerun must also be byte-identical");
}

/// Probe that turns allocation tracking on mid-run (after warmup) and
/// off again near the end, bracketing the steady-state event loop.
struct SteadyStateWindow {
    completions: u64,
    start_at: u64,
    stop_at: u64,
    tracked_allocs: Option<u64>,
}

impl Probe for SteadyStateWindow {
    fn on_cmd_complete(&mut self, _ev: &CmdComplete) {
        self.completions += 1;
        if self.completions == self.start_at {
            ALLOCS.with(|c| c.set(0));
            TRACK.with(|t| t.set(true));
        }
        if self.completions == self.stop_at {
            TRACK.with(|t| t.set(false));
            self.tracked_allocs = Some(ALLOCS.with(|c| c.get()));
        }
    }
}

#[test]
fn steady_state_event_loop_performs_zero_heap_allocations() {
    let cfg = small_cfg();
    let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(128);
    let trace = steady_trace(3, 2_000);

    // First pass counts completions so the window brackets [50%, 90%].
    let total = {
        let sim = SimBuilder::new(cfg.clone(), layout.clone())
            .build()
            .expect("valid device");
        sim.run(&trace).expect("run").total.count
    };
    assert!(total >= 100, "fixture too small to have a steady state");

    let mut window = SteadyStateWindow {
        completions: 0,
        start_at: total / 2,
        stop_at: total * 9 / 10,
        tracked_allocs: None,
    };
    let sim = SimBuilder::new(cfg, layout)
        .probe(&mut window)
        .build()
        .expect("valid device");
    sim.run(&trace).expect("probed run");
    assert_eq!(
        window.tracked_allocs,
        Some(0),
        "steady-state event loop (50%..90% of completions) must not allocate"
    );
}
