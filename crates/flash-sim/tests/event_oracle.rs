//! Oracle equivalence for the timer-wheel event core.
//!
//! The engine's correctness argument leans on [`EventQueue`] serving
//! events in exactly the `(time, seq)` order a binary heap would — the
//! golden captures pin whole-simulation behaviour, and these tests pin
//! the queue itself. A reference model (a plain `BinaryHeap` over the
//! same `(time, seq)` order, the structure the wheel replaced) runs the
//! same seeded randomized operation interleavings side by side with the
//! wheel, and every observable — popped events, peeked times, lengths —
//! must agree, including same-tick bursts, per-level delta magnitudes,
//! and times at the far horizon (overflow list, `u64::MAX`).

use flash_sim::event::{Event, EventKind, EventQueue};
use simrng::{Rng, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The structure the wheel replaced: a min-heap over `(time, seq)` with
/// the same push-side sequence numbering.
#[derive(Default)]
struct OracleHeap {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl OracleHeap {
    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn pop_before(&mut self, limit: u64) -> Option<Event> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.time < limit) {
            self.pop()
        } else {
            None
        }
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A time delta spanning every placement class the wheel distinguishes:
/// same tick, within the level-0 slot, each higher level's magnitude,
/// beyond the 48-bit horizon (overflow list), and saturation at
/// `u64::MAX`.
fn random_delta(rng: &mut SimRng) -> u64 {
    match rng.gen_range(0u32..12) {
        0 | 1 => 0,
        2 => rng.gen_range(1u64..64),
        3 => rng.gen_range(64u64..4096),
        4 => rng.gen_range(4096u64..262_144),
        5 => rng.gen_range(1u64 << 18..1 << 24),
        6 => rng.gen_range(1u64 << 24..1 << 30),
        7 => rng.gen_range(1u64 << 30..1 << 42),
        8 => rng.gen_range(1u64 << 42..1 << 48),
        9 => rng.gen_range(1u64 << 48..1 << 52),
        10 => rng.gen_range(1u64 << 52..1 << 60),
        _ => u64::MAX,
    }
}

fn random_kind(rng: &mut SimRng) -> EventKind {
    let id = rng.gen_range(0u32..1024);
    match rng.gen_range(0u32..4) {
        0 => EventKind::Arrive(id),
        1 => EventKind::Admit(id),
        2 => EventKind::DieOpDone(id),
        _ => EventKind::BusDone(id),
    }
}

/// Randomized push/pop/pop_before/peek interleavings: every observable of
/// the wheel must equal the reference heap's, then a full drain must
/// produce identical sequences. Pushes respect the discrete-event
/// contract (never before the last served time), exactly as the engine's
/// do.
#[test]
fn random_interleavings_match_reference_heap() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xE0 + seed);
        let mut wheel = EventQueue::new();
        let mut heap = OracleHeap::default();
        // Lower bound for new event times: the last served time or
        // `advance_to` target, per the discrete-event contract.
        let mut lower = 0u64;
        for _ in 0..2000 {
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    let time = lower.saturating_add(random_delta(&mut rng));
                    let kind = random_kind(&mut rng);
                    wheel.push(time, kind);
                    heap.push(time, kind);
                }
                5 | 6 => {
                    let got = wheel.pop();
                    assert_eq!(got, heap.pop(), "pop diverged (seed {seed})");
                    if let Some(ev) = got {
                        lower = ev.time;
                    }
                }
                7 | 8 => {
                    let limit = lower.saturating_add(random_delta(&mut rng));
                    let got = wheel.pop_before(limit);
                    assert_eq!(
                        got,
                        heap.pop_before(limit),
                        "pop_before({limit}) diverged (seed {seed})"
                    );
                    match got {
                        Some(ev) => lower = ev.time,
                        None => {
                            // Nothing pending before `limit`: the engine
                            // would advance the cursor and schedule there.
                            wheel.advance_to(limit);
                            lower = lower.max(limit);
                        }
                    }
                }
                _ => {
                    assert_eq!(
                        wheel.peek_time(),
                        heap.peek_time(),
                        "peek diverged (seed {seed})"
                    );
                    assert_eq!(wheel.len(), heap.len(), "len diverged (seed {seed})");
                    assert_eq!(wheel.is_empty(), heap.len() == 0, "seed {seed}");
                }
            }
        }
        loop {
            let got = wheel.pop();
            assert_eq!(got, heap.pop(), "drain diverged (seed {seed})");
            if got.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.len(), 0);
    }
}

/// Bursts of events pushed at identical times must pop in push (seq)
/// order — the FIFO property the per-slot intrusive lists and the ready
/// buffer's seq sort provide — interleaved correctly across a handful of
/// distinct tick values.
#[test]
fn same_tick_bursts_pop_in_push_order() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(0xB0 + seed);
        let mut wheel = EventQueue::new();
        let mut heap = OracleHeap::default();
        // A few distinct times, one of them possibly at the far horizon;
        // pushes hop between them so same-time events get non-adjacent
        // sequence numbers.
        let mut times: Vec<u64> = (0..rng.gen_range(2u64..6))
            .map(|_| random_delta(&mut rng))
            .collect();
        times.push(0); // always exercise the cursor's own tick
        for _ in 0..rng.gen_range(64usize..256) {
            let t = times[rng.gen_range(0usize..times.len())];
            let kind = random_kind(&mut rng);
            wheel.push(t, kind);
            heap.push(t, kind);
        }
        let mut prev: Option<Event> = None;
        loop {
            let got = wheel.pop();
            assert_eq!(got, heap.pop(), "seed {seed}");
            let Some(ev) = got else { break };
            if let Some(p) = prev {
                assert!(
                    (p.time, p.seq) < (ev.time, ev.seq),
                    "served out of (time, seq) order (seed {seed})"
                );
            }
            prev = Some(ev);
        }
    }
}

/// The engine's arrival-cursor merge: a sorted trace is consumed through
/// `pop_before(arrival)` + `advance_to(arrival)` instead of being heaped
/// up front. Served `(time, kind)` sequences must match a reference
/// engine that pushes every arrival into the heap first (sequence
/// numbers `0..n-1`, the old engine's shape) — including time ties,
/// where arrivals must win and order among themselves by trace index.
#[test]
fn arrival_cursor_merge_matches_heaped_arrivals() {
    // Deterministic follow-up work keyed off the served event, so both
    // engines issue identical pushes: arrivals fan out a die op (and
    // sometimes a bus transfer), die ops sometimes re-admit. Zero deltas
    // create service events tied with later arrivals.
    fn followups(time: u64, kind: EventKind) -> Vec<(u64, EventKind)> {
        match kind {
            EventKind::Arrive(r) => {
                let d = (r as u64).wrapping_mul(2_654_435_761) % 97;
                let mut out = vec![(time + d, EventKind::DieOpDone(r))];
                if r % 3 == 0 {
                    out.push((time + d / 2, EventKind::BusDone(r)));
                }
                out
            }
            EventKind::DieOpDone(c) if c % 4 == 0 => {
                vec![(time + (c as u64 % 13), EventKind::Admit(c))]
            }
            _ => Vec::new(),
        }
    }

    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(0xAC + seed);
        // Non-decreasing arrival times with frequent same-tick bursts.
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        for _ in 0..rng.gen_range(50usize..300) {
            if rng.gen_range(0u32..3) != 0 {
                t += rng.gen_range(0u64..50);
            }
            arrivals.push(t);
        }

        // Reference: every arrival heaped up front with seqs 0..n-1.
        let mut heap = OracleHeap::default();
        for (i, &at) in arrivals.iter().enumerate() {
            heap.push(at, EventKind::Arrive(i as u32));
        }
        let mut want = Vec::new();
        while let Some(ev) = heap.pop() {
            want.push((ev.time, ev.kind));
            for (ft, fk) in followups(ev.time, ev.kind) {
                heap.push(ft, fk);
            }
        }

        // Wheel: arrivals merged at pop time via the cursor.
        let mut wheel = EventQueue::new();
        let mut cursor = 0usize;
        let mut got = Vec::new();
        loop {
            let (time, kind) = if cursor < arrivals.len() {
                let at = arrivals[cursor];
                match wheel.pop_before(at) {
                    Some(ev) => (ev.time, ev.kind),
                    None => {
                        wheel.advance_to(at);
                        let r = cursor as u32;
                        cursor += 1;
                        (at, EventKind::Arrive(r))
                    }
                }
            } else {
                match wheel.pop() {
                    Some(ev) => (ev.time, ev.kind),
                    None => break,
                }
            };
            got.push((time, kind));
            for (ft, fk) in followups(time, kind) {
                wheel.push(ft, fk);
            }
        }

        assert_eq!(got.len(), want.len(), "seed {seed}");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "event {i} diverged (seed {seed})");
        }
    }
}
