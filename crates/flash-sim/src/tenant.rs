//! Multi-tenant channel partitioning.
//!
//! SSDKeeper enforces a channel-allocation strategy by giving every tenant a
//! [`ChannelSet`] — the channels its writes may land on. Reads always follow
//! the mapping table, so after a mid-run re-allocation (Algorithm 2's
//! `predict` step at `t == T`) old data is still read from wherever it was
//! written, exactly as on a real device.

use crate::config::SsdConfig;
use crate::ftl::alloc::PageAllocPolicy;
use crate::geometry::MagicU32;

/// An ordered set of channel indices a tenant may write to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSet {
    channels: Vec<u16>,
    /// Reciprocal divider for `channels.len()`, kept in sync by the
    /// constructors: static allocation divides by the set size once per
    /// written page, and a multiply-high beats a 64-bit divide there.
    div_len: MagicU32,
}

impl ChannelSet {
    /// Builds a set from channel indices; duplicates are removed, order is
    /// preserved for striding.
    ///
    /// Returns `None` when `channels` is empty or any index is out of range.
    pub fn new(channels: &[usize], total_channels: usize) -> Option<Self> {
        if channels.is_empty() {
            return None;
        }
        let mut seen = vec![false; total_channels];
        let mut out = Vec::with_capacity(channels.len());
        for &c in channels {
            if c >= total_channels {
                return None;
            }
            if !seen[c] {
                seen[c] = true;
                out.push(c as u16);
            }
        }
        Some(Self {
            div_len: MagicU32::new(out.len()),
            channels: out,
        })
    }

    /// Every channel in the device.
    pub fn all(total_channels: usize) -> Self {
        Self {
            channels: (0..total_channels as u16).collect(),
            div_len: MagicU32::new(total_channels.max(1)),
        }
    }

    /// The channels as a slice.
    pub fn channels(&self) -> &[u16] {
        &self.channels
    }

    /// Number of channels in the set.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Channel used by static allocation for stripe position `i`.
    pub fn stripe(&self, i: u64) -> usize {
        self.channels[(i % self.channels.len() as u64) as usize] as usize
    }

    /// The reciprocal divider for [`Self::len`].
    #[inline]
    pub(crate) fn div_len(&self) -> MagicU32 {
        self.div_len
    }

    /// Whether `channel` is in the set.
    pub fn contains(&self, channel: usize) -> bool {
        self.channels.iter().any(|&c| c as usize == channel)
    }
}

/// One tenant's allocation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantState {
    /// Channels this tenant's new writes go to.
    pub channels: ChannelSet,
    /// Page allocation mode for this tenant (static or dynamic).
    pub policy: PageAllocPolicy,
    /// Size of the tenant's logical page space. Writes beyond this wrap
    /// (the simulator masks LPNs by this bound).
    pub lpn_space: u64,
}

/// Channel/policy assignment for every tenant sharing the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLayout {
    tenants: Vec<TenantState>,
}

/// Default logical space per tenant used by the convenience constructors:
/// large enough that synthetic workloads do not self-overwrite unless asked
/// to, small enough that mapping tables stay dense.
const DEFAULT_LPN_SPACE: u64 = 1 << 20;

impl TenantLayout {
    /// Builds a layout from explicit per-tenant states.
    pub fn new(tenants: Vec<TenantState>) -> Self {
        Self { tenants }
    }

    /// `n` tenants all striping over every channel (the paper's *Shared*
    /// baseline), static page allocation.
    pub fn shared(n: usize, cfg: &SsdConfig) -> Self {
        let tenants = (0..n)
            .map(|_| TenantState {
                channels: ChannelSet::all(cfg.channels),
                policy: PageAllocPolicy::Static,
                lpn_space: DEFAULT_LPN_SPACE,
            })
            .collect();
        Self { tenants }
    }

    /// `n` tenants splitting the channels as evenly as possible (the
    /// paper's *Isolated* baseline), static page allocation.
    ///
    /// Channels are dealt round-robin so remainders spread across tenants.
    pub fn isolated(n: usize, cfg: &SsdConfig) -> Self {
        assert!(n > 0, "need at least one tenant");
        assert!(
            n <= cfg.channels,
            "cannot isolate {n} tenants on {} channels",
            cfg.channels
        );
        let mut per_tenant: Vec<Vec<usize>> = vec![Vec::new(); n];
        for ch in 0..cfg.channels {
            per_tenant[ch % n].push(ch);
        }
        let tenants = per_tenant
            .into_iter()
            .map(|chs| TenantState {
                channels: ChannelSet::new(&chs, cfg.channels)
                    .expect("isolated split always yields non-empty valid sets"),
                policy: PageAllocPolicy::Static,
                lpn_space: DEFAULT_LPN_SPACE,
            })
            .collect();
        Self { tenants }
    }

    /// Builds a layout from per-tenant channel lists, all static allocation.
    ///
    /// Returns `None` if any list is empty or out of range.
    pub fn from_channel_lists(lists: &[Vec<usize>], cfg: &SsdConfig) -> Option<Self> {
        let tenants = lists
            .iter()
            .map(|chs| {
                Some(TenantState {
                    channels: ChannelSet::new(chs, cfg.channels)?,
                    policy: PageAllocPolicy::Static,
                    lpn_space: DEFAULT_LPN_SPACE,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self { tenants })
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Immutable access to a tenant's state.
    pub fn tenant(&self, idx: usize) -> &TenantState {
        &self.tenants[idx]
    }

    /// Mutable access to a tenant's state (used by mid-run re-allocation).
    pub fn tenant_mut(&mut self, idx: usize) -> &mut TenantState {
        &mut self.tenants[idx]
    }

    /// Iterates over tenant states.
    pub fn iter(&self) -> impl Iterator<Item = &TenantState> {
        self.tenants.iter()
    }

    /// Sets one tenant's page-allocation policy (builder style).
    pub fn with_policy(mut self, tenant: usize, policy: PageAllocPolicy) -> Self {
        self.tenants[tenant].policy = policy;
        self
    }

    /// Sets one tenant's logical space (builder style).
    pub fn with_lpn_space(mut self, tenant: usize, lpn_space: u64) -> Self {
        assert!(lpn_space > 0, "lpn_space must be positive");
        self.tenants[tenant].lpn_space = lpn_space;
        self
    }

    /// Sets every tenant's logical space (builder style).
    pub fn with_lpn_space_all(mut self, lpn_space: u64) -> Self {
        assert!(lpn_space > 0, "lpn_space must be positive");
        for t in &mut self.tenants {
            t.lpn_space = lpn_space;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig::paper_table1()
    }

    #[test]
    fn channel_set_rejects_empty_and_out_of_range() {
        assert!(ChannelSet::new(&[], 8).is_none());
        assert!(ChannelSet::new(&[8], 8).is_none());
        assert!(ChannelSet::new(&[0, 7], 8).is_some());
    }

    #[test]
    fn channel_set_dedups_preserving_order() {
        let s = ChannelSet::new(&[3, 1, 3, 1, 5], 8).unwrap();
        assert_eq!(s.channels(), &[3, 1, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stripe_cycles_through_set() {
        let s = ChannelSet::new(&[2, 4, 6], 8).unwrap();
        let strides: Vec<usize> = (0..6).map(|i| s.stripe(i)).collect();
        assert_eq!(strides, vec![2, 4, 6, 2, 4, 6]);
    }

    #[test]
    fn contains_checks_membership() {
        let s = ChannelSet::new(&[0, 2], 4).unwrap();
        assert!(s.contains(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn all_covers_every_channel() {
        let s = ChannelSet::all(8);
        assert_eq!(s.len(), 8);
        assert!((0..8).all(|c| s.contains(c)));
    }

    #[test]
    fn shared_layout_gives_every_tenant_all_channels() {
        let layout = TenantLayout::shared(4, &cfg());
        assert_eq!(layout.tenant_count(), 4);
        for t in layout.iter() {
            assert_eq!(t.channels.len(), 8);
            assert_eq!(t.policy, PageAllocPolicy::Static);
        }
    }

    #[test]
    fn isolated_layout_partitions_channels() {
        let layout = TenantLayout::isolated(4, &cfg());
        let mut owned = [0u32; 8];
        for t in layout.iter() {
            assert_eq!(t.channels.len(), 2);
            for &c in t.channels.channels() {
                owned[c as usize] += 1;
            }
        }
        assert!(
            owned.iter().all(|&n| n == 1),
            "each channel owned exactly once"
        );
    }

    #[test]
    fn isolated_layout_with_remainder() {
        let layout = TenantLayout::isolated(3, &cfg());
        let sizes: Vec<usize> = layout.iter().map(|t| t.channels.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    #[should_panic(expected = "cannot isolate")]
    fn isolated_rejects_more_tenants_than_channels() {
        let _ = TenantLayout::isolated(9, &cfg());
    }

    #[test]
    fn from_channel_lists_validates() {
        assert!(TenantLayout::from_channel_lists(&[vec![0], vec![]], &cfg()).is_none());
        assert!(TenantLayout::from_channel_lists(&[vec![0], vec![9]], &cfg()).is_none());
        let layout =
            TenantLayout::from_channel_lists(&[vec![0, 1, 2], vec![3, 4, 5, 6, 7]], &cfg())
                .unwrap();
        assert_eq!(layout.tenant(0).channels.len(), 3);
        assert_eq!(layout.tenant(1).channels.len(), 5);
    }

    #[test]
    fn builders_set_policy_and_space() {
        let layout = TenantLayout::shared(2, &cfg())
            .with_policy(1, PageAllocPolicy::Dynamic)
            .with_lpn_space(0, 128)
            .with_lpn_space_all(256);
        assert_eq!(layout.tenant(1).policy, PageAllocPolicy::Dynamic);
        assert_eq!(layout.tenant(0).lpn_space, 256);
        assert_eq!(layout.tenant(1).lpn_space, 256);
    }
}
