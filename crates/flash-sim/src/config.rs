//! SSD hardware configuration.
//!
//! Defaults follow Table I of the SSDKeeper paper: an 8-channel SSD with two
//! chips per channel, four planes per chip, 4096 blocks per plane, 128 pages
//! per block, and 16 KB pages (512 GB raw), with 20 µs reads, 200 µs
//! programs, and 1.5 ms erases.

use crate::scheduler::SchedPolicy;

/// Nanoseconds per microsecond, used throughout the timing model.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;

/// Full hardware description of the simulated SSD.
///
/// All structural fields must be non-zero; [`SsdConfig::validate`] enforces
/// this and is called by the simulator constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Number of independent channels (buses).
    pub channels: usize,
    /// Flash chips attached to each channel.
    pub chips_per_channel: usize,
    /// Dies per chip. A die is the unit that executes array commands.
    pub dies_per_chip: usize,
    /// Planes per die. A plane holds blocks and has its own page/cache
    /// registers; the FTL allocates pages plane by plane.
    pub planes_per_die: usize,
    /// Blocks per plane. A block is the erase unit.
    pub blocks_per_plane: usize,
    /// Pages per block. A page is the read/write unit.
    pub pages_per_block: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Array read latency (cell-to-register), in nanoseconds.
    pub read_latency_ns: u64,
    /// Program latency (register-to-cell), in nanoseconds.
    pub write_latency_ns: u64,
    /// Block erase latency, in nanoseconds.
    pub erase_latency_ns: u64,
    /// Channel bus bandwidth in MB/s; governs page transfer time.
    pub bus_mb_per_s: u64,
    /// Fraction of a plane's blocks kept free; dropping below this triggers
    /// garbage collection on that plane.
    pub gc_free_block_threshold: f64,
    /// Queueing discipline at dies and buses. FIFO is SSDSim-faithful;
    /// read-priority is the scheduling ablation.
    pub sched_policy: SchedPolicy,
    /// Host queue depth: maximum requests in flight *per tenant*. Further
    /// arrivals queue at the host and are admitted as completions free
    /// slots (latency is still measured from the original arrival, so
    /// host queueing counts). `0` disables the bound (infinite queue
    /// depth — the configuration used for the paper-shape sweeps, whose
    /// saturated points then diverge with trace length).
    pub host_queue_depth: u32,
    /// Static wear-leveling threshold: when a plane's erase-count spread
    /// (max − min) exceeds this, the next GC pass on that plane targets
    /// the *coldest* full block (moving its data so the block rejoins the
    /// write rotation) instead of the greedy min-valid victim. 0 disables
    /// static wear leveling (greedy GC still tie-breaks toward low erase
    /// counts).
    pub wear_leveling_threshold: u32,
    /// Whether planes within a die execute array commands concurrently
    /// (SSDSim's plane-level parallelism; the paper's chips have 4 planes).
    /// When false, the die is the unit of array execution — the ablation
    /// configuration.
    pub plane_parallelism: bool,
}

impl SsdConfig {
    /// The exact configuration of Table I in the paper.
    pub fn paper_table1() -> Self {
        Self {
            channels: 8,
            chips_per_channel: 2,
            dies_per_chip: 1,
            planes_per_die: 4,
            blocks_per_plane: 4096,
            pages_per_block: 128,
            page_size: 16 * 1024,
            read_latency_ns: 20 * US,
            write_latency_ns: 200 * US,
            erase_latency_ns: 3 * MS / 2,
            bus_mb_per_s: 200,
            gc_free_block_threshold: 0.05,
            sched_policy: SchedPolicy::Fifo,
            host_queue_depth: 0,
            wear_leveling_threshold: 32,
            plane_parallelism: true,
        }
    }

    /// Table I timing and topology with a shrunken per-plane block count, so
    /// that whole-device sweeps (thousands of simulator runs) fit in memory
    /// and exercise GC within short traces.
    pub fn scaled_for_sweeps() -> Self {
        Self {
            blocks_per_plane: 256,
            ..Self::paper_table1()
        }
    }

    /// A tiny geometry for unit tests: 2 channels, 1 chip, 2 planes,
    /// 8 blocks of 8 pages.
    pub fn small_test() -> Self {
        Self {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size: 16 * 1024,
            read_latency_ns: 20 * US,
            write_latency_ns: 200 * US,
            erase_latency_ns: 3 * MS / 2,
            bus_mb_per_s: 800,
            gc_free_block_threshold: 0.25,
            sched_policy: SchedPolicy::ReadPriority { max_bypass: 8 },
            host_queue_depth: 0,
            wear_leveling_threshold: 0,
            plane_parallelism: false,
        }
    }

    /// Nanoseconds the channel bus is occupied transferring one page.
    ///
    /// Table I does not list a bus speed; the default of 200 MB/s
    /// (ONFI-class, ~82 us per 16 KB page) makes the channel bus the
    /// binding resource for both reads (20 us array + 82 us bus) and
    /// writes (82 us bus + 200 us program, with programs overlapping
    /// across planes). In this regime each channel sustains ~12 kIOPS of
    /// either class, which is what makes *channel-count* allocation the
    /// lever the paper studies.
    pub fn page_transfer_ns(&self) -> u64 {
        let bytes_per_ns = self.bus_mb_per_s as f64 * 1e6 / 1e9;
        (self.page_size as f64 / bytes_per_ns).round() as u64
    }

    /// Total number of dies in the device.
    pub fn total_dies(&self) -> usize {
        self.channels * self.chips_per_channel * self.dies_per_chip
    }

    /// Dies attached to a single channel.
    pub fn dies_per_channel(&self) -> usize {
        self.chips_per_channel * self.dies_per_chip
    }

    /// Total number of planes in the device.
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Total number of physical pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_planes() as u64 * self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Checks structural and timing sanity; the simulator refuses invalid
    /// configurations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        macro_rules! nonzero {
            ($field:ident) => {
                if self.$field == 0 {
                    return Err(ConfigError::ZeroField(stringify!($field)));
                }
            };
        }
        nonzero!(channels);
        nonzero!(chips_per_channel);
        nonzero!(dies_per_chip);
        nonzero!(planes_per_die);
        nonzero!(blocks_per_plane);
        nonzero!(pages_per_block);
        nonzero!(page_size);
        nonzero!(read_latency_ns);
        nonzero!(write_latency_ns);
        nonzero!(erase_latency_ns);
        nonzero!(bus_mb_per_s);
        if !(0.0..1.0).contains(&self.gc_free_block_threshold) {
            return Err(ConfigError::BadGcThreshold(self.gc_free_block_threshold));
        }
        if self.blocks_per_plane < 2 {
            // GC needs at least one spare block to migrate into.
            return Err(ConfigError::ZeroField("blocks_per_plane (needs >= 2)"));
        }
        Ok(())
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_table1()
    }
}

/// Errors produced by [`SsdConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural or timing field that must be non-zero was zero.
    ZeroField(&'static str),
    /// The GC threshold is outside `[0, 1)`.
    BadGcThreshold(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroField(name) => {
                write!(f, "configuration field `{name}` must be non-zero")
            }
            ConfigError::BadGcThreshold(v) => {
                write!(f, "gc_free_block_threshold must be in [0,1), got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacity_is_512_gb() {
        let cfg = SsdConfig::paper_table1();
        assert_eq!(cfg.capacity_bytes(), 512u64 << 30);
    }

    #[test]
    fn table1_page_transfer_is_82us() {
        let cfg = SsdConfig::paper_table1();
        assert_eq!(cfg.page_transfer_ns(), 81_920);
    }

    #[test]
    fn table1_counts() {
        let cfg = SsdConfig::paper_table1();
        assert_eq!(cfg.total_dies(), 16);
        assert_eq!(cfg.dies_per_channel(), 2);
        assert_eq!(cfg.total_planes(), 64);
        assert_eq!(cfg.total_pages(), 64 * 4096 * 128);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(SsdConfig::default(), SsdConfig::paper_table1());
    }

    #[test]
    fn validate_accepts_all_presets() {
        for cfg in [
            SsdConfig::paper_table1(),
            SsdConfig::scaled_for_sweeps(),
            SsdConfig::small_test(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_zero_channels() {
        let cfg = SsdConfig {
            channels: 0,
            ..SsdConfig::small_test()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroField("channels")));
    }

    #[test]
    fn validate_rejects_bad_gc_threshold() {
        let cfg = SsdConfig {
            gc_free_block_threshold: 1.5,
            ..SsdConfig::small_test()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadGcThreshold(_))
        ));
    }

    #[test]
    fn validate_rejects_single_block_plane() {
        let cfg = SsdConfig {
            blocks_per_plane: 1,
            ..SsdConfig::small_test()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_error_display_is_informative() {
        let e = ConfigError::ZeroField("channels");
        assert!(e.to_string().contains("channels"));
        let e = ConfigError::BadGcThreshold(2.0);
        assert!(e.to_string().contains("2"));
    }
}
