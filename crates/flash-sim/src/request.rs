//! Host I/O requests as seen by the simulator front end.

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

impl Op {
    /// `true` for [`Op::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read => write!(f, "R"),
            Op::Write => write!(f, "W"),
        }
    }
}

/// One host I/O request.
///
/// A request touches `size_pages` consecutive logical pages starting at
/// `lpn` within the issuing tenant's logical space. The simulator fans it
/// out into page-granular flash commands; the request completes when the
/// slowest command completes (the paper's "the latency of the request
/// depends on the slowest chip access").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Trace-unique request id.
    pub id: u64,
    /// Issuing tenant (index into the simulator's tenant layout).
    pub tenant: u16,
    /// Direction.
    pub op: Op,
    /// First logical page within the tenant's LPN space.
    pub lpn: u64,
    /// Number of consecutive logical pages (>= 1).
    pub size_pages: u32,
    /// Arrival time in nanoseconds since simulation start.
    pub arrival_ns: u64,
}

impl IoRequest {
    /// Convenience constructor.
    pub fn new(id: u64, tenant: u16, op: Op, lpn: u64, size_pages: u32, arrival_ns: u64) -> Self {
        Self {
            id,
            tenant,
            op,
            lpn,
            size_pages,
            arrival_ns,
        }
    }

    /// Iterator over the logical pages touched by this request.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.lpn..self.lpn + self.size_pages as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_display_and_is_read() {
        assert_eq!(Op::Read.to_string(), "R");
        assert_eq!(Op::Write.to_string(), "W");
        assert!(Op::Read.is_read());
        assert!(!Op::Write.is_read());
    }

    #[test]
    fn pages_iterates_consecutive_lpns() {
        let r = IoRequest::new(0, 0, Op::Write, 10, 3, 0);
        assert_eq!(r.pages().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn single_page_request() {
        let r = IoRequest::new(1, 2, Op::Read, 7, 1, 500);
        assert_eq!(r.pages().count(), 1);
    }
}
