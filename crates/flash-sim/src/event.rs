//! The discrete-event core: a time-ordered event queue.
//!
//! Ties on time are broken by a monotonically increasing sequence number so
//! that simulation order — and therefore every latency the simulator
//! reports — is fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a page-granular flash command in the engine's arena.
pub type CmdId = u32;
/// Identifier of a host request in the engine's arena.
pub type ReqId = u32;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A host request arrives and is fanned out into flash commands.
    Arrive(ReqId),
    /// A host-queued request is admitted after a queue slot freed
    /// (host-queue-depth back-pressure).
    Admit(ReqId),
    /// A die finishes its current array operation (read/program/erase/GC)
    /// for the given command.
    DieOpDone(CmdId),
    /// A channel bus finishes the transfer phase of the given command.
    BusDone(CmdId),
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Firing time in nanoseconds.
    pub time: u64,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events ordered by `(time, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Reserves capacity for at least `additional` more events, so bulk
    /// scheduling (e.g. a whole trace's arrivals) does not regrow the heap.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Earliest scheduled time without removing the event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::Arrive(0));
        q.push(10, EventKind::Arrive(1));
        q.push(20, EventKind::Arrive(2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrive(0));
        q.push(5, EventKind::DieOpDone(1));
        q.push(5, EventKind::BusDone(2));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrive(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::DieOpDone(1));
        assert_eq!(q.pop().unwrap().kind, EventKind::BusDone(2));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.peek_time().is_none());
        q.push(42, EventKind::Arrive(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Popping always yields a non-decreasing time sequence and returns
    /// exactly the number of pushed events, over seeded random pushes.
    #[test]
    fn drain_is_sorted_and_complete() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..200);
            let times: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1_000_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, EventKind::Arrive(i as ReqId));
            }
            let mut drained = Vec::new();
            while let Some(e) = q.pop() {
                drained.push(e.time);
            }
            assert_eq!(drained.len(), times.len(), "seed {seed}");
            assert!(drained.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        }
    }
}
