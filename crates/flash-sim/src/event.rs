//! The discrete-event core: a time-ordered event queue.
//!
//! Ties on time are broken by a monotonically increasing sequence number so
//! that simulation order — and therefore every latency the simulator
//! reports — is fully deterministic.
//!
//! # Structure
//!
//! The queue is a hierarchical timing wheel (a calendar queue): 8 levels of
//! 64 slots, 6 bits of the timestamp per level, covering a 2^48 ns horizon
//! (~3.2 simulated days) with an overflow list beyond that. Push and pop are
//! O(1) amortized — an event cascades at most once per level on its way
//! down — versus the O(log n) of the `BinaryHeap` this replaced, and the
//! wheel never compares timestamps pairwise on the hot path.
//!
//! An event's level is the position of the **highest bit in which its time
//! differs from the wheel cursor `now`**, divided by 6 (Tokio-wheel style),
//! not the magnitude of the delta. This choice is what makes the wheel
//! exact rather than approximate:
//!
//! * every slot holds exactly one 2^(6·level) time bucket (two events in
//!   the same slot of the same level always share `time >> 6·level`), so a
//!   slot's position fully determines its bucket bound;
//! * occupied slots at a level are always at or after the cursor's slot
//!   within the cursor's parent bucket — no wraparound ambiguity;
//! * levels are strictly nested: every event at level L fires before any
//!   event at level L+1, so the lowest occupied level always holds the
//!   global minimum and `pop` never scans the full wheel.
//!
//! # Determinism
//!
//! Buckets are FIFO `Vec`s. A level-0 slot spans exactly one nanosecond, so
//! when the cursor reaches it the slot is drained into a ready buffer and
//! sorted by `seq` — equal-time events therefore pop in exact insertion
//! order no matter how they were interleaved across levels, cascades, or
//! the overflow list on the way in. This makes the wheel's pop sequence
//! bit-identical to the `(time, seq)` min-heap it replaced (property-tested
//! against a reference heap in `tests/event_oracle.rs`).
//!
//! # Contract
//!
//! Time is monotone: events must not be scheduled before the time of the
//! last popped event (`push` clamps and debug-asserts). `pop_before(limit)`
//! serves only events with `time < limit` — the simulator uses it to merge
//! the wheel against the sorted trace-arrival cursor, with arrivals winning
//! ties exactly as their up-front sequence numbers did before. After
//! `pop_before(t)` returns `None`, `advance_to(t)` may move the cursor
//! forward so subsequent pushes are placed relative to fresh time.

use std::collections::VecDeque;

/// Identifier of a page-granular flash command in the engine's arena.
pub type CmdId = u32;
/// Identifier of a host request in the engine's arena.
pub type ReqId = u32;

/// Timestamp bits consumed per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level (2^SLOT_BITS).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; together they cover `HORIZON_BITS` bits of timestamp.
const LEVELS: usize = 8;
/// Events whose time differs from `now` at or above this bit go to the
/// overflow list until the cursor catches up.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A host request arrives and is fanned out into flash commands.
    Arrive(ReqId),
    /// A host-queued request is admitted after a queue slot freed
    /// (host-queue-depth back-pressure).
    Admit(ReqId),
    /// A die finishes its current array operation (read/program/erase/GC)
    /// for the given command.
    DieOpDone(CmdId),
    /// A channel bus finishes the transfer phase of the given command.
    BusDone(CmdId),
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Firing time in nanoseconds.
    pub time: u64,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Arena index terminator for slot lists and the free list.
const NIL: u32 = u32::MAX;

/// One arena cell: an event plus its intrusive FIFO link.
#[derive(Debug, Clone, Copy)]
struct Node {
    ev: Event,
    next: u32,
}

/// Hierarchical timing wheel serving events in exact `(time, seq)` order.
///
/// Events live in a single node arena threaded through per-slot intrusive
/// FIFO lists, so a cascade re-links nodes instead of copying them, the
/// steady state performs no allocation (freed nodes are recycled), and the
/// whole structure — bitmaps, head/tail tables, and an arena sized by peak
/// in-flight events — stays cache-resident.
#[derive(Debug)]
pub struct EventQueue {
    /// Wheel cursor: the time of the last served event (or the last
    /// `advance_to`). All pending events are at or after `now`.
    now: u64,
    /// Events at exactly `now`, served front-first in `seq` order.
    ready: VecDeque<Event>,
    /// Whether `ready` needs a seq sort before the next serve.
    ready_dirty: bool,
    /// Node arena; capacity tracks peak pending events, then stays flat.
    nodes: Vec<Node>,
    /// Head of the recycled-node list (`NIL` when exhausted).
    free_head: u32,
    /// First node of each slot's FIFO list (valid iff the occupied bit is
    /// set). Boxed so the queue stays small inside `Simulator`.
    heads: Box<[[u32; SLOTS]; LEVELS]>,
    /// Last node of each slot's FIFO list (valid iff occupied).
    tails: Box<[[u32; SLOTS]; LEVELS]>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon, in push order.
    overflow: Vec<Event>,
    /// Minimum time in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
    /// Total pending events across ready, wheel, and overflow.
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            now: 0,
            ready: VecDeque::new(),
            ready_dirty: false,
            nodes: Vec::new(),
            free_head: NIL,
            heads: Box::new([[NIL; SLOTS]; LEVELS]),
            tails: Box::new([[NIL; SLOTS]; LEVELS]),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
            next_seq: 0,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with pre-reserved arena capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::default();
        q.nodes.reserve(cap.min(1 << 16));
        q
    }

    /// Restores the freshly-constructed state while keeping the node
    /// arena, ready buffer, and overflow list allocations, so a recycled
    /// queue (see [`crate::SimArena`]) starts its next run without
    /// touching the allocator.
    pub fn reset(&mut self) {
        self.now = 0;
        self.ready.clear();
        self.ready_dirty = false;
        self.nodes.clear();
        self.free_head = NIL;
        for level in self.heads.iter_mut() {
            level.fill(NIL);
        }
        for level in self.tails.iter_mut() {
            level.fill(NIL);
        }
        self.occupied = [0; LEVELS];
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.len = 0;
        self.next_seq = 0;
    }

    /// Takes a recycled (or fresh) arena node for `ev`.
    #[inline]
    fn alloc(&mut self, ev: Event) -> u32 {
        let n = self.free_head;
        if n != NIL {
            self.free_head = self.nodes[n as usize].next;
            self.nodes[n as usize] = Node { ev, next: NIL };
            n
        } else {
            let n = self.nodes.len() as u32;
            self.nodes.push(Node { ev, next: NIL });
            n
        }
    }

    /// Returns node `n` to the free list.
    #[inline]
    fn release(&mut self, n: u32) {
        self.nodes[n as usize].next = self.free_head;
        self.free_head = n;
    }

    /// Appends node `n` to the FIFO list of `slots[level][slot]`.
    #[inline]
    fn link(&mut self, level: usize, slot: usize, n: u32) {
        let bit = 1u64 << slot;
        if self.occupied[level] & bit != 0 {
            let t = self.tails[level][slot];
            self.nodes[t as usize].next = n;
        } else {
            self.occupied[level] |= bit;
            self.heads[level][slot] = n;
        }
        self.tails[level][slot] = n;
    }

    /// Schedules `kind` to fire at `time`.
    ///
    /// `time` must be at or after the time of the last popped event (the
    /// discrete-event contract); past times are clamped to the cursor.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Event { time, seq, kind });
    }

    /// Places an already-sequenced event relative to the current cursor.
    #[inline]
    fn insert(&mut self, ev: Event) {
        let xor = ev.time ^ self.now;
        if xor == 0 {
            // Due immediately. Pushes arrive in seq order (so appending
            // keeps `ready` sorted); cascaded/migrated events may not.
            if self.ready.back().is_some_and(|b| b.seq > ev.seq) {
                self.ready_dirty = true;
            }
            self.ready.push_back(ev);
            return;
        }
        let hi = 63 - xor.leading_zeros();
        if hi >= HORIZON_BITS {
            self.overflow_min = self.overflow_min.min(ev.time);
            self.overflow.push(ev);
            return;
        }
        let level = (hi / SLOT_BITS) as usize;
        let slot = ((ev.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let n = self.alloc(ev);
        self.link(level, slot, n);
    }

    /// Re-places node `n` (already unlinked) relative to the current
    /// cursor, re-linking it without touching the arena allocator unless
    /// the event leaves the wheel.
    #[inline]
    fn insert_node(&mut self, n: u32) {
        let ev = self.nodes[n as usize].ev;
        let xor = ev.time ^ self.now;
        if xor == 0 {
            if self.ready.back().is_some_and(|b| b.seq > ev.seq) {
                self.ready_dirty = true;
            }
            self.ready.push_back(ev);
            self.release(n);
            return;
        }
        let hi = 63 - xor.leading_zeros();
        if hi >= HORIZON_BITS {
            self.overflow_min = self.overflow_min.min(ev.time);
            self.overflow.push(ev);
            self.release(n);
            return;
        }
        let level = (hi / SLOT_BITS) as usize;
        let slot = ((ev.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.nodes[n as usize].next = NIL;
        self.link(level, slot, n);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_inner(None)
    }

    /// Removes and returns the earliest event **strictly before** `limit`,
    /// if any. The cursor never advances to or past `limit`, so the caller
    /// may still schedule events at `limit` afterwards.
    pub fn pop_before(&mut self, limit: u64) -> Option<Event> {
        self.pop_inner(Some(limit))
    }

    fn pop_inner(&mut self, limit: Option<u64>) -> Option<Event> {
        loop {
            if !self.ready.is_empty() {
                if limit.is_some_and(|lim| self.now >= lim) {
                    return None;
                }
                if self.ready_dirty {
                    self.ready.make_contiguous().sort_unstable_by_key(|e| e.seq);
                    self.ready_dirty = false;
                }
                self.len -= 1;
                return self.ready.pop_front();
            }
            if self.len == 0 {
                return None;
            }
            // Overflow events become placeable once the cursor shares
            // their top bits.
            if !self.overflow.is_empty() && (self.overflow_min ^ self.now) < (1 << HORIZON_BITS) {
                self.migrate_overflow();
                continue;
            }
            // Levels are strictly nested (see module docs): the lowest
            // occupied level holds the earliest pending events, and its
            // first occupied slot is the earliest bucket.
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Only overflow remains, too far ahead to place: jump.
                debug_assert!(!self.overflow.is_empty());
                if limit.is_some_and(|lim| self.overflow_min >= lim) {
                    return None;
                }
                self.now = self.overflow_min;
                self.migrate_overflow();
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // A level-0 slot spans exactly 1 ns within the cursor's
                // 64 ns bucket, so its time is exact.
                let t = (self.now & !(SLOTS as u64 - 1)) | slot as u64;
                if limit.is_some_and(|lim| t >= lim) {
                    return None;
                }
                self.now = t;
                self.occupied[0] &= !(1 << slot);
                let head = self.heads[0][slot];
                let first = self.nodes[head as usize];
                if first.next == NIL {
                    // The common case: an untied event skips the ready
                    // buffer (and its seq sort) entirely.
                    self.release(head);
                    self.len -= 1;
                    return Some(first.ev);
                }
                let mut n = head;
                while n != NIL {
                    let node = self.nodes[n as usize];
                    self.ready.push_back(node.ev);
                    self.release(n);
                    n = node.next;
                }
                self.ready_dirty = true;
            } else {
                let shift = SLOT_BITS * level as u32;
                let parent = self.now >> (shift + SLOT_BITS);
                let base = ((parent << SLOT_BITS) | slot as u64) << shift;
                if base > self.now {
                    // Every pending event is at or after this bucket's
                    // start, so the cursor may advance to it.
                    if limit.is_some_and(|lim| base >= lim) {
                        return None;
                    }
                    self.now = base;
                }
                // Cascade: the bucket now shares the cursor's upper bits,
                // so each event re-places at a strictly lower level.
                self.cascade(level, slot);
            }
        }
    }

    /// Moves the cursor forward to `t` so later pushes are placed relative
    /// to fresh time. Only valid when no pending event is earlier than `t`
    /// (i.e. after `pop_before(t)` returned `None`).
    pub fn advance_to(&mut self, t: u64) {
        if t <= self.now {
            return;
        }
        debug_assert!(
            self.peek_time().is_none_or(|pt| pt >= t),
            "advance_to past a pending event"
        );
        self.now = t;
        // A slot whose bucket contains the new cursor holds events that
        // now belong at a lower level; re-place them.
        for level in 1..LEVELS {
            let c = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occupied[level] & (1 << c) != 0 {
                self.cascade(level, c);
            }
        }
        // The jump may bring overflow events inside the horizon — or to
        // exactly `t`. Place them now, so the pop fast paths keep their
        // invariant that ready/wheel heads are globally minimal and a
        // later push at `t` cannot overtake an earlier event parked in
        // the overflow list.
        if !self.overflow.is_empty() && (self.overflow_min ^ t) < (1 << HORIZON_BITS) {
            self.migrate_overflow();
        }
        // Events at exactly `t` (the cursor's own level-0 slot) move to the
        // ready buffer, preserving the invariant that wheel slots only hold
        // events strictly after `now` — a later push at `t` must queue
        // behind them, not jump ahead via `ready`.
        let c0 = (t & (SLOTS as u64 - 1)) as usize;
        if self.occupied[0] & (1 << c0) != 0 {
            self.occupied[0] &= !(1 << c0);
            let mut n = self.heads[0][c0];
            while n != NIL {
                let node = self.nodes[n as usize];
                self.ready.push_back(node.ev);
                self.release(n);
                n = node.next;
            }
            self.ready_dirty = true;
        }
    }

    /// Empties `slots[level][slot]`, re-placing each event relative to the
    /// current cursor by re-linking its node.
    fn cascade(&mut self, level: usize, slot: usize) {
        self.occupied[level] &= !(1 << slot);
        let mut n = self.heads[level][slot];
        while n != NIL {
            let next = self.nodes[n as usize].next;
            self.insert_node(n);
            n = next;
        }
    }

    /// Re-places every overflow event the wheel can now hold.
    fn migrate_overflow(&mut self) {
        let mut kept = Vec::new();
        let mut new_min = u64::MAX;
        for ev in std::mem::take(&mut self.overflow) {
            if (ev.time ^ self.now) < (1 << HORIZON_BITS) {
                self.insert(ev);
            } else {
                new_min = new_min.min(ev.time);
                kept.push(ev);
            }
        }
        self.overflow = kept;
        self.overflow_min = new_min;
    }

    /// Earliest scheduled time without removing the event.
    pub fn peek_time(&self) -> Option<u64> {
        if !self.ready.is_empty() {
            return Some(self.now);
        }
        let wheel_min = (0..LEVELS).find(|&l| self.occupied[l] != 0).map(|level| {
            let slot = self.occupied[level].trailing_zeros() as usize;
            // The first occupied slot of the lowest occupied level holds
            // the global minimum; find it within the (small) bucket.
            let mut min = u64::MAX;
            let mut n = self.heads[level][slot];
            while n != NIL {
                let node = &self.nodes[n as usize];
                min = min.min(node.ev.time);
                n = node.next;
            }
            min
        });
        match wheel_min {
            Some(t) => Some(t.min(self.overflow_min)),
            None if !self.overflow.is_empty() => Some(self.overflow_min),
            None => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::Arrive(0));
        q.push(10, EventKind::Arrive(1));
        q.push(20, EventKind::Arrive(2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrive(0));
        q.push(5, EventKind::DieOpDone(1));
        q.push(5, EventKind::BusDone(2));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrive(0));
        assert_eq!(q.pop().unwrap().kind, EventKind::DieOpDone(1));
        assert_eq!(q.pop().unwrap().kind, EventKind::BusDone(2));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.peek_time().is_none());
        q.push(42, EventKind::Arrive(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Popping always yields a non-decreasing time sequence and returns
    /// exactly the number of pushed events, over seeded random pushes.
    #[test]
    fn drain_is_sorted_and_complete() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..200);
            let times: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1_000_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, EventKind::Arrive(i as ReqId));
            }
            let mut drained = Vec::new();
            while let Some(e) = q.pop() {
                drained.push(e.time);
            }
            assert_eq!(drained.len(), times.len(), "seed {seed}");
            assert!(drained.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        }
    }

    /// Events past the 2^48 horizon park in the overflow list and still
    /// pop in exact order, including a cursor jump when only overflow
    /// remains.
    #[test]
    fn far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        let far = 1u64 << 50;
        q.push(far + 7, EventKind::Arrive(0));
        q.push(3, EventKind::Arrive(1));
        q.push(far + 7, EventKind::Arrive(2));
        q.push(u64::MAX, EventKind::Arrive(3));
        let order: Vec<(u64, EventKind)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (3, EventKind::Arrive(1)),
                (far + 7, EventKind::Arrive(0)),
                (far + 7, EventKind::Arrive(2)),
                (u64::MAX, EventKind::Arrive(3)),
            ]
        );
    }

    /// `pop_before` is exclusive and never advances the cursor to the
    /// limit, so the caller can still schedule at the limit afterwards.
    #[test]
    fn pop_before_is_exclusive_and_advance_is_safe() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Arrive(0));
        q.push(20, EventKind::Arrive(1));
        assert_eq!(q.pop_before(10), None);
        assert_eq!(q.pop_before(11).unwrap().time, 10);
        assert_eq!(q.pop_before(20), None);
        q.advance_to(20);
        // An event scheduled at the limit after advance still wins FIFO
        // order against the pending one via seq.
        q.push(20, EventKind::Arrive(2));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrive(1));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrive(2));
        assert!(q.pop().is_none());
    }

    /// Interleaved push/pop with monotone time keeps exact (time, seq)
    /// order across cascade boundaries.
    #[test]
    fn interleaved_pops_respect_seq_across_levels() {
        let mut q = EventQueue::new();
        // Spread across several levels relative to now = 0.
        q.push(100_000, EventKind::Arrive(0));
        q.push(63, EventKind::Arrive(1));
        q.push(64, EventKind::Arrive(2));
        q.push(100_000, EventKind::Arrive(3));
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrive(1));
        // Pushing after a pop re-places relative to the advanced cursor.
        q.push(100_000, EventKind::Arrive(4));
        q.push(64, EventKind::Arrive(5));
        let rest: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            rest,
            vec![
                EventKind::Arrive(2),
                EventKind::Arrive(5),
                EventKind::Arrive(0),
                EventKind::Arrive(3),
                EventKind::Arrive(4),
            ]
        );
    }
}
