//! `flash-sim` — a trace-driven, discrete-event flash SSD simulator.
//!
//! This crate is the Rust substrate standing in for **SSDSim** (Hu et al.,
//! "Exploring and exploiting the multilevel parallelism inside SSDs"), the
//! simulator the SSDKeeper paper modifies for its evaluation. It models:
//!
//! * the full physical hierarchy of an SSD — channels, chips, dies, planes,
//!   blocks, and pages ([`geometry`]) — with the paper's Table I
//!   configuration as the default ([`SsdConfig::paper_table1`]);
//! * timing at command granularity: array read / program / erase latencies
//!   plus channel-bus transfer time, with per-die and per-bus contention
//!   ([`sim`]);
//! * read-priority command scheduling with bounded write starvation
//!   ([`scheduler`]);
//! * a page-level FTL: logical-to-physical mapping, static and dynamic page
//!   allocation, greedy garbage collection, and wear accounting ([`ftl`]);
//! * multi-tenant channel partitioning: every tenant owns a (mutable) set of
//!   channels, which is how SSDKeeper's channel allocator is enforced
//!   ([`tenant`]).
//!
//! The simulator is fully deterministic: a given configuration and request
//! trace always produces the same latencies, which the test-suite checks by
//! property testing.
//!
//! # Quick example
//!
//! ```
//! use flash_sim::{SsdConfig, Simulator, TenantLayout, IoRequest, Op, PageAllocPolicy};
//!
//! let mut cfg = SsdConfig::small_test();
//! cfg.channels = 4;
//! // Two tenants striped over all channels, 64 logical pages each.
//! let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(64);
//! let mut sim = Simulator::new(cfg, layout).unwrap();
//! let trace = vec![
//!     IoRequest::new(0, 0, Op::Write, 0, 4, 0),
//!     IoRequest::new(1, 1, Op::Read, 0, 2, 10_000),
//! ];
//! let report = sim.run(&trace).unwrap();
//! assert_eq!(report.total.count, 2);
//! ```
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod event;
pub mod ftl;
pub mod geometry;
pub mod metrics;
pub mod probe;
pub mod request;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod tenant;
pub mod trace;

pub use backend::{Backend, BackendKind, FileBackend, SimBackend};
pub use config::SsdConfig;
pub use ftl::alloc::PageAllocPolicy;
pub use geometry::{Geometry, PhysAddr};
pub use metrics::{MetricsProbe, MetricsSummary};
pub use probe::{replay, EventRecorder, NullProbe, Probe, ProbeEvent, Tee};
pub use request::{IoRequest, Op};
pub use sim::{validate_trace, Reallocation, SimArena, SimBuilder, SimError, Simulator};
pub use stats::{LatencyStats, PhaseHist, PhaseReport, SimReport, TenantReport};
pub use tenant::{ChannelSet, TenantLayout};
