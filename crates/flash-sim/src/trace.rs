//! Trace serialization: a compact binary container for request traces.
//!
//! The paper's pipeline is trace-driven: synthetic and MSR-like traces are
//! generated once and replayed across 42 allocation strategies. Persisting
//! them avoids regenerating identical inputs and lets experiments be
//! re-run bit-identically.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  u32  = 0x53534454 ("SSDT")
//! version u32 = 1
//! count  u64
//! count × { id u64, tenant u16, op u8 (0=read,1=write), _pad u8,
//!           size_pages u32, lpn u64, arrival_ns u64 }
//! ```

use crate::request::{IoRequest, Op};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5353_4454;
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 8 + 2 + 1 + 1 + 4 + 8 + 8;

/// Errors from [`decode_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the expected magic number.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Records expected from the header.
        expected: u64,
        /// Records actually present.
        got: u64,
    },
    /// An op byte was neither 0 nor 1.
    BadOp(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:#x}"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { expected, got } => {
                write!(f, "trace truncated: header says {expected} records, found {got}")
            }
            TraceError::BadOp(b) => write!(f, "invalid op byte {b}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes a trace to its binary form.
pub fn encode_trace(trace: &[IoRequest]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * RECORD_BYTES);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for r in trace {
        buf.put_u64_le(r.id);
        buf.put_u16_le(r.tenant);
        buf.put_u8(match r.op {
            Op::Read => 0,
            Op::Write => 1,
        });
        buf.put_u8(0);
        buf.put_u32_le(r.size_pages);
        buf.put_u64_le(r.lpn);
        buf.put_u64_le(r.arrival_ns);
    }
    buf.freeze()
}

/// Deserializes a trace produced by [`encode_trace`].
pub fn decode_trace(mut buf: impl Buf) -> Result<Vec<IoRequest>, TraceError> {
    if buf.remaining() < 16 {
        return Err(TraceError::Truncated { expected: 0, got: 0 });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let count = buf.get_u64_le();
    let available = (buf.remaining() / RECORD_BYTES) as u64;
    if available < count {
        return Err(TraceError::Truncated {
            expected: count,
            got: available,
        });
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = buf.get_u64_le();
        let tenant = buf.get_u16_le();
        let op = match buf.get_u8() {
            0 => Op::Read,
            1 => Op::Write,
            b => return Err(TraceError::BadOp(b)),
        };
        let _pad = buf.get_u8();
        let size_pages = buf.get_u32_le();
        let lpn = buf.get_u64_le();
        let arrival_ns = buf.get_u64_le();
        out.push(IoRequest {
            id,
            tenant,
            op,
            lpn,
            size_pages,
            arrival_ns,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vec<IoRequest> {
        vec![
            IoRequest::new(0, 0, Op::Write, 10, 4, 0),
            IoRequest::new(1, 3, Op::Read, u64::MAX, 1, 123_456_789),
        ]
    }

    #[test]
    fn round_trip_sample() {
        let bytes = encode_trace(&sample());
        let decoded = decode_trace(bytes).unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&[]);
        assert_eq!(decode_trace(bytes).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(0);
        assert_eq!(
            decode_trace(buf.freeze()).unwrap_err(),
            TraceError::BadMagic(0xdead_beef)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(99);
        buf.put_u64_le(0);
        assert_eq!(decode_trace(buf.freeze()).unwrap_err(), TraceError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_trace(&sample());
        let cut = bytes.slice(0..bytes.len() - 4);
        assert!(matches!(
            decode_trace(cut).unwrap_err(),
            TraceError::Truncated { expected: 2, got: 1 }
        ));
    }

    #[test]
    fn rejects_short_header() {
        let buf = Bytes::from_static(&[1, 2, 3]);
        assert!(matches!(decode_trace(buf), Err(TraceError::Truncated { .. })));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut bytes = BytesMut::from(&encode_trace(&sample())[..]);
        // op byte of record 0 sits at offset 16 (header) + 8 + 2 = 26.
        bytes[26] = 7;
        assert_eq!(decode_trace(bytes.freeze()).unwrap_err(), TraceError::BadOp(7));
    }

    #[test]
    fn error_display_messages() {
        assert!(TraceError::BadMagic(1).to_string().contains("magic"));
        assert!(TraceError::BadVersion(2).to_string().contains("version"));
        assert!(TraceError::BadOp(3).to_string().contains("op"));
        assert!(TraceError::Truncated { expected: 5, got: 1 }
            .to_string()
            .contains("truncated"));
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            records in proptest::collection::vec(
                (0u64..u64::MAX, 0u16..16, proptest::bool::ANY, 0u64..1_000_000, 1u32..64, 0u64..u64::MAX / 2),
                0..100,
            )
        ) {
            let trace: Vec<IoRequest> = records
                .into_iter()
                .enumerate()
                .map(|(i, (id, tenant, is_read, lpn, size, at))| IoRequest {
                    id: id.wrapping_add(i as u64),
                    tenant,
                    op: if is_read { Op::Read } else { Op::Write },
                    lpn,
                    size_pages: size,
                    arrival_ns: at,
                })
                .collect();
            let decoded = decode_trace(encode_trace(&trace)).unwrap();
            prop_assert_eq!(decoded, trace);
        }
    }
}
