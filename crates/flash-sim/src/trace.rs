//! Trace serialization: a compact binary container for request traces.
//!
//! The paper's pipeline is trace-driven: synthetic and MSR-like traces are
//! generated once and replayed across 42 allocation strategies. Persisting
//! them avoids regenerating identical inputs and lets experiments be
//! re-run bit-identically.
//!
//! Format (little-endian, hand-rolled `to_le_bytes`/`from_le_bytes` — no
//! external codec crates, and the byte layout is frozen):
//!
//! ```text
//! magic  u32  = 0x53534454 ("SSDT")
//! version u32 = 1
//! count  u64
//! count × { id u64, tenant u16, op u8 (0=read,1=write), _pad u8 (= 0),
//!           size_pages u32, lpn u64, arrival_ns u64 }
//! ```
//!
//! The pad byte is always written as zero and ignored on decode; it exists
//! so every multi-byte field stays naturally aligned within the record.

use crate::request::{IoRequest, Op};

const MAGIC: u32 = 0x5353_4454;
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 4 + 4 + 8;
const RECORD_BYTES: usize = 8 + 2 + 1 + 1 + 4 + 8 + 8;

/// Errors from [`decode_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the expected magic number.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Records expected from the header.
        expected: u64,
        /// Records actually present.
        got: u64,
    },
    /// An op byte was neither 0 nor 1.
    BadOp(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:#x}"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { expected, got } => {
                write!(
                    f,
                    "trace truncated: header says {expected} records, found {got}"
                )
            }
            TraceError::BadOp(b) => write!(f, "invalid op byte {b}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Little-endian cursor over a byte slice. Bounds are checked once per
/// record by the caller, so the accessors themselves just slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let bytes: [u8; N] = self.buf[self.pos..self.pos + N]
            .try_into()
            .expect("slice length equals N");
        self.pos += N;
        bytes
    }

    fn u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
}

/// Serializes a trace to its binary form.
pub fn encode_trace(trace: &[IoRequest]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + trace.len() * RECORD_BYTES);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for r in trace {
        buf.extend_from_slice(&r.id.to_le_bytes());
        buf.extend_from_slice(&r.tenant.to_le_bytes());
        buf.push(match r.op {
            Op::Read => 0,
            Op::Write => 1,
        });
        buf.push(0); // _pad
        buf.extend_from_slice(&r.size_pages.to_le_bytes());
        buf.extend_from_slice(&r.lpn.to_le_bytes());
        buf.extend_from_slice(&r.arrival_ns.to_le_bytes());
    }
    buf
}

/// Deserializes a trace produced by [`encode_trace`].
pub fn decode_trace(buf: &[u8]) -> Result<Vec<IoRequest>, TraceError> {
    let mut r = Reader::new(buf);
    if r.remaining() < HEADER_BYTES {
        return Err(TraceError::Truncated {
            expected: 0,
            got: 0,
        });
    }
    let magic = r.u32();
    if magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let version = r.u32();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let count = r.u64();
    let available = (r.remaining() / RECORD_BYTES) as u64;
    if available < count {
        return Err(TraceError::Truncated {
            expected: count,
            got: available,
        });
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = r.u64();
        let tenant = r.u16();
        let op = match r.u8() {
            0 => Op::Read,
            1 => Op::Write,
            b => return Err(TraceError::BadOp(b)),
        };
        let _pad = r.u8();
        let size_pages = r.u32();
        let lpn = r.u64();
        let arrival_ns = r.u64();
        out.push(IoRequest {
            id,
            tenant,
            op,
            lpn,
            size_pages,
            arrival_ns,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    fn sample() -> Vec<IoRequest> {
        vec![
            IoRequest::new(0, 0, Op::Write, 10, 4, 0),
            IoRequest::new(1, 3, Op::Read, u64::MAX, 1, 123_456_789),
        ]
    }

    #[test]
    fn round_trip_sample() {
        let bytes = encode_trace(&sample());
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&[]);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
    }

    /// Golden bytes: the exact on-disk image of [`sample`]. This pins the
    /// SSDT v1 layout — byte order, field order, pad position — so codec
    /// refactors cannot silently change the format and orphan recorded
    /// traces.
    #[test]
    fn golden_bytes_are_stable() {
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            // header
            0x54, 0x44, 0x53, 0x53,                         // magic "SSDT" LE
            0x01, 0x00, 0x00, 0x00,                         // version 1
            0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count 2
            // record 0: id=0 tenant=0 op=write pad size=4 lpn=10 at=0
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00,
            0x01, 0x00,
            0x04, 0x00, 0x00, 0x00,
            0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            // record 1: id=1 tenant=3 op=read pad size=1 lpn=MAX at=123456789
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x03, 0x00,
            0x00, 0x00,
            0x01, 0x00, 0x00, 0x00,
            0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
            0x15, 0xCD, 0x5B, 0x07, 0x00, 0x00, 0x00, 0x00,
        ];
        assert_eq!(encode_trace(&sample()), expected);
    }

    /// The pad byte is written as zero, ignored on decode, and a non-zero
    /// pad in the input must not change the decoded record.
    #[test]
    fn pad_byte_round_trips_and_is_ignored() {
        let mut bytes = encode_trace(&sample());
        // pad of record 0 sits at offset 16 (header) + 8 + 2 + 1 = 27.
        assert_eq!(bytes[27], 0, "encoder must write a zero pad");
        bytes[27] = 0xAB;
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, sample(), "pad contents must not affect decoding");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xdead_beef_u32.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_trace(&buf).unwrap_err(),
            TraceError::BadMagic(0xdead_beef)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_trace(&buf).unwrap_err(), TraceError::BadVersion(99));
    }

    /// Flipping single header bytes must surface as `BadMagic` or
    /// `BadVersion`, never as a panic or a silently wrong decode.
    #[test]
    fn corrupt_header_bytes_are_rejected() {
        let good = encode_trace(&sample());
        for offset in 0..8 {
            let mut corrupt = good.clone();
            corrupt[offset] ^= 0xFF;
            let err = decode_trace(&corrupt).unwrap_err();
            if offset < 4 {
                assert!(
                    matches!(err, TraceError::BadMagic(_)),
                    "offset {offset}: {err}"
                );
            } else {
                assert!(
                    matches!(err, TraceError::BadVersion(_)),
                    "offset {offset}: {err}"
                );
            }
        }
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_trace(&sample());
        let cut = &bytes[..bytes.len() - 4];
        assert!(matches!(
            decode_trace(cut).unwrap_err(),
            TraceError::Truncated {
                expected: 2,
                got: 1
            }
        ));
    }

    /// Every possible truncation point of a valid image must yield a clean
    /// `TraceError`, never a panic or an out-of-bounds read.
    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = encode_trace(&sample());
        for cut in 0..bytes.len() {
            let err = decode_trace(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
            assert!(
                matches!(err.unwrap_err(), TraceError::Truncated { .. }),
                "prefix of {cut} bytes must report truncation"
            );
        }
    }

    #[test]
    fn rejects_short_header() {
        assert!(matches!(
            decode_trace(&[1, 2, 3]),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut bytes = encode_trace(&sample());
        // op byte of record 0 sits at offset 16 (header) + 8 + 2 = 26.
        bytes[26] = 7;
        assert_eq!(decode_trace(&bytes).unwrap_err(), TraceError::BadOp(7));
    }

    /// Every op byte other than 0/1 is rejected with its own value.
    #[test]
    fn all_invalid_op_bytes_are_reported() {
        let good = encode_trace(&sample());
        for op in [2u8, 3, 0x7F, 0xFF] {
            let mut bytes = good.clone();
            bytes[26] = op;
            assert_eq!(decode_trace(&bytes).unwrap_err(), TraceError::BadOp(op));
        }
    }

    #[test]
    fn error_display_messages() {
        assert!(TraceError::BadMagic(1).to_string().contains("magic"));
        assert!(TraceError::BadVersion(2).to_string().contains("version"));
        assert!(TraceError::BadOp(3).to_string().contains("op"));
        assert!(TraceError::Truncated {
            expected: 5,
            got: 1
        }
        .to_string()
        .contains("truncated"));
    }

    /// Seeded-loop replacement for the former proptest: arbitrary traces
    /// round-trip bit-exactly through encode → decode.
    #[test]
    fn round_trip_arbitrary_traces() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..100);
            let trace: Vec<IoRequest> = (0..len)
                .map(|i| IoRequest {
                    id: rng.gen::<u64>().wrapping_add(i as u64),
                    tenant: rng.gen_range(0u16..16),
                    op: if rng.gen_bool(0.5) {
                        Op::Read
                    } else {
                        Op::Write
                    },
                    lpn: rng.gen_range(0u64..1_000_000),
                    size_pages: rng.gen_range(1u32..64),
                    arrival_ns: rng.gen_range(0..u64::MAX / 2),
                })
                .collect();
            let encoded = encode_trace(&trace);
            assert_eq!(encoded.len(), 16 + trace.len() * RECORD_BYTES);
            let decoded = decode_trace(&encoded).unwrap();
            assert_eq!(decoded, trace, "seed {seed}");
            // Re-encoding the decode must be byte-identical (codec is a
            // bijection on valid images).
            assert_eq!(encode_trace(&decoded), encoded, "seed {seed}");
        }
    }
}
