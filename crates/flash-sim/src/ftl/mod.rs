//! Flash translation layer: mapping, page allocation, garbage collection,
//! and wear accounting.
//!
//! Structure:
//! * [`mapping`] — per-tenant logical-to-physical page tables;
//! * [`alloc`] — static/dynamic plane selection (the paper's two page
//!   allocation modes, combined by SSDKeeper's hybrid page allocator);
//! * [`gc`] — greedy per-plane garbage collection;
//! * [`wear`] — erase-count accounting.
//!
//! The FTL here is *logically synchronous*: the bookkeeping effect of a
//! write or a GC pass is applied immediately, while its **timing** cost is
//! returned to the engine as a charge ([`gc::GcCharge`]) that occupies the
//! die in simulated time. This keeps the data structures simple and
//! deterministic without losing the performance interference GC causes.

pub mod alloc;
pub mod gc;
pub mod mapping;
pub mod wear;

use crate::config::SsdConfig;
use crate::geometry::{Geometry, PhysAddr};
use crate::tenant::TenantLayout;
use gc::GcCharge;
use mapping::TenantMap;

/// Per-page FTL state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Never written since the last erase.
    Free,
    /// Holds live data for `(tenant, lpn)`.
    Valid {
        /// Owning tenant.
        tenant: u16,
        /// Logical page the data belongs to.
        lpn: u64,
    },
    /// Holds stale data awaiting GC.
    Invalid,
}

/// One erase block.
#[derive(Debug, Clone)]
pub struct BlockState {
    /// Write pointer: next free page index, `== pages_per_block` when full.
    pub next_page: u32,
    /// Number of `Valid` pages.
    pub valid_count: u32,
    /// Lifetime erase count.
    pub erase_count: u32,
    /// Per-page state.
    pub pages: Vec<PageState>,
}

impl BlockState {
    fn new(pages_per_block: usize) -> Self {
        Self {
            next_page: 0,
            valid_count: 0,
            erase_count: 0,
            pages: vec![PageState::Free; pages_per_block],
        }
    }

    /// Whether the write pointer has reached the end of the block.
    pub fn is_full(&self, pages_per_block: usize) -> bool {
        self.next_page as usize >= pages_per_block
    }
}

/// One plane: the unit of page allocation and garbage collection.
#[derive(Debug, Clone)]
pub struct PlaneState {
    /// All blocks in the plane.
    pub blocks: Vec<BlockState>,
    /// Block currently receiving writes, if any.
    pub active_block: Option<usize>,
    /// Fully erased blocks available to become active.
    pub free_blocks: Vec<usize>,
    /// Count of `Free` pages across the plane (fast full-check).
    pub free_pages: u64,
    /// GC victim index: bucket `v` holds candidate entries for **full,
    /// non-active** blocks with `valid_count == v` as a lazy min-heap of
    /// `(erase_count << 32) | block_idx` keys, so the greedy victim — min
    /// by `(valid, erase, idx)` — is the live top of the first non-empty
    /// bucket. Entries are pushed on every transition into a bucket and
    /// never removed eagerly: a stale entry (its block moved on, got
    /// erased, or became active) is detected by comparing the key against
    /// the block's current state and popped at query time. Each push is
    /// popped at most once, so maintenance is O(log bucket) per
    /// invalidation with no per-node allocation — unlike the ordered-set
    /// variant this replaces, whose rebalancing dominated the GC-heavy
    /// write path.
    full_blocks: Vec<std::collections::BinaryHeap<std::cmp::Reverse<u64>>>,
    /// `erase_hist[c]` = blocks with `erase_count == c`; with the min/max
    /// cursors below it answers the wear-leveling spread check in O(1).
    erase_hist: Vec<u32>,
    /// Smallest erase count present in the plane.
    min_erase: u32,
    /// Largest erase count present in the plane.
    max_erase: u32,
}

impl PlaneState {
    fn new(cfg: &SsdConfig) -> Self {
        Self {
            blocks: (0..cfg.blocks_per_plane)
                .map(|_| BlockState::new(cfg.pages_per_block))
                .collect(),
            active_block: None,
            free_blocks: (0..cfg.blocks_per_plane).rev().collect(),
            free_pages: (cfg.blocks_per_plane * cfg.pages_per_block) as u64,
            full_blocks: vec![std::collections::BinaryHeap::new(); cfg.pages_per_block + 1],
            erase_hist: vec![cfg.blocks_per_plane as u32],
            min_erase: 0,
            max_erase: 0,
        }
    }

    /// Packs a victim-index entry; `Reverse` turns the max-heap into the
    /// min-heap the `(erase, idx)` order needs.
    #[inline]
    fn victim_key(erase: u32, block: u32) -> std::cmp::Reverse<u64> {
        std::cmp::Reverse((erase as u64) << 32 | block as u64)
    }

    /// Whether a bucket entry still describes its block: the block must be
    /// full, non-active, in this bucket, and not erased since the push
    /// (each erase bumps `erase_count`, so a block never re-enters a
    /// bucket under a key it already used).
    #[inline]
    fn entry_is_current(&self, bucket: usize, key: u64) -> bool {
        let idx = key as u32 as usize;
        let erase = (key >> 32) as u32;
        let b = &self.blocks[idx];
        b.next_page as usize >= self.bucket_pages_per_block()
            && self.active_block != Some(idx)
            && b.valid_count as usize == bucket
            && b.erase_count == erase
    }

    /// `pages_per_block`, recovered from the bucket count so the index
    /// methods need no extra argument threading.
    #[inline]
    fn bucket_pages_per_block(&self) -> usize {
        self.full_blocks.len() - 1
    }

    /// Adds `block` (full, non-active) to the bucket of its current valid
    /// count. Stale entries from earlier states are left behind for the
    /// query-time cleanup.
    pub(crate) fn index_insert(&mut self, block: usize) {
        let b = &self.blocks[block];
        self.full_blocks[b.valid_count as usize]
            .push(Self::victim_key(b.erase_count, block as u32));
    }

    /// Pops stale entries off a bucket and returns its live minimum
    /// `(erase, idx)` key, if any.
    fn bucket_top(&mut self, bucket: usize) -> Option<u64> {
        while let Some(&std::cmp::Reverse(key)) = self.full_blocks[bucket].peek() {
            if self.entry_is_current(bucket, key) {
                return Some(key);
            }
            self.full_blocks[bucket].pop();
        }
        None
    }

    /// Greedy victim: the full, non-active block minimizing
    /// `(valid_count, erase_count, idx)`, excluding fully-valid blocks
    /// (nothing reclaimable). Exactly the order of the old linear scan.
    pub(crate) fn greedy_victim(&mut self) -> Option<usize> {
        let fully_valid = self.bucket_pages_per_block();
        (0..fully_valid).find_map(|v| self.bucket_top(v).map(|key| key as u32 as usize))
    }

    /// Wear victim: the full, non-active block minimizing
    /// `(erase_count, valid_count, idx)` — fully-valid blocks included,
    /// since cold data is exactly what static wear leveling must move.
    /// Each bucket's live top is its min by `(erase, idx)`, so one
    /// candidate per bucket finds the global min in O(pages_per_block).
    pub(crate) fn wear_victim(&mut self) -> Option<usize> {
        (0..self.full_blocks.len())
            .filter_map(|valid| {
                self.bucket_top(valid).map(|key| {
                    let idx = key as u32;
                    let erase = (key >> 32) as u32;
                    (erase, valid as u32, idx)
                })
            })
            .min()
            .map(|(_, _, idx)| idx as usize)
    }

    /// Records that a block went from `old_count` to `old_count + 1`
    /// erases, keeping the histogram and min/max cursors exact.
    pub(crate) fn note_erase(&mut self, old_count: u32) {
        self.erase_hist[old_count as usize] -= 1;
        if old_count as usize + 1 == self.erase_hist.len() {
            self.erase_hist.push(0);
        }
        self.erase_hist[old_count as usize + 1] += 1;
        self.max_erase = self.max_erase.max(old_count + 1);
        while self.erase_hist[self.min_erase as usize] == 0 {
            self.min_erase += 1;
        }
    }

    /// `max - min` erase count over all blocks, in O(1).
    pub(crate) fn erase_spread(&self) -> u32 {
        self.max_erase - self.min_erase
    }

    /// Restores the factory-fresh [`PlaneState::new`] state in place,
    /// keeping the block, free-list, victim-bucket, and histogram
    /// allocations. The plane's shape (block count, pages per block) must
    /// be unchanged — [`Ftl::reset`] guarantees it via the geometry check.
    fn reset(&mut self) {
        let blocks_per_plane = self.blocks.len();
        for b in &mut self.blocks {
            b.next_page = 0;
            b.valid_count = 0;
            b.erase_count = 0;
            b.pages.fill(PageState::Free);
        }
        self.active_block = None;
        self.free_blocks.clear();
        self.free_blocks.extend((0..blocks_per_plane).rev());
        self.free_pages = (blocks_per_plane * self.bucket_pages_per_block()) as u64;
        for bucket in &mut self.full_blocks {
            bucket.clear();
        }
        self.erase_hist.clear();
        self.erase_hist.push(blocks_per_plane as u32);
        self.min_erase = 0;
        self.max_erase = 0;
    }
}

/// Outcome of a logical page write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Physical page the data landed on.
    pub addr: PhysAddr,
    /// Timing charge for a GC pass the write triggered, if any.
    pub gc: Option<GcCharge>,
}

/// FTL errors surfaced to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// A plane ran out of free pages and GC could not reclaim any.
    PlaneFull {
        /// Flat plane index that filled up.
        plane: usize,
    },
    /// A request addressed a tenant not present in the layout.
    UnknownTenant(u16),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::PlaneFull { plane } => {
                write!(f, "plane {plane} is full and GC reclaimed nothing")
            }
            FtlError::UnknownTenant(t) => write!(f, "tenant {t} not in layout"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Aggregate FTL counters reported at end of run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host pages written.
    pub host_pages_written: u64,
    /// Pages moved by garbage collection.
    pub gc_pages_moved: u64,
    /// Blocks erased by garbage collection.
    pub gc_blocks_erased: u64,
    /// GC passes triggered by host writes (timing charged).
    pub gc_invocations: u64,
    /// Pages silently seeded to satisfy reads of never-written LPNs.
    pub seeded_pages: u64,
}

impl FtlStats {
    /// Write amplification factor: (host + GC writes) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            1.0
        } else {
            (self.host_pages_written + self.gc_pages_moved) as f64 / self.host_pages_written as f64
        }
    }
}

/// The flash translation layer.
#[derive(Debug)]
pub struct Ftl {
    geo: Geometry,
    pages_per_block: usize,
    gc_trigger_blocks: usize,
    wear_leveling_threshold: u32,
    read_ns: u64,
    write_ns: u64,
    erase_ns: u64,
    planes: Vec<PlaneState>,
    maps: Vec<TenantMap>,
    stats: FtlStats,
    /// Reusable buffer for a GC pass's live `(tenant, lpn)` pages, so the
    /// steady-state hot path allocates nothing per collection.
    gc_scratch: Vec<(u16, u64)>,
}

impl Ftl {
    /// Builds the FTL for a device/layout pair.
    pub fn new(cfg: &SsdConfig, layout: &TenantLayout) -> Self {
        let geo = Geometry::new(cfg);
        // Floor of 2: the active block counts toward the spare pool, so a
        // trigger of 1 would only fire after the last block is already
        // full — too late for the write that needs it. Two guarantees GC
        // runs while one whole spare block still exists.
        let gc_trigger_blocks =
            ((cfg.blocks_per_plane as f64 * cfg.gc_free_block_threshold).ceil() as usize).max(2);
        Self {
            planes: (0..geo.total_planes())
                .map(|_| PlaneState::new(cfg))
                .collect(),
            maps: layout.iter().map(|t| TenantMap::new(t.lpn_space)).collect(),
            geo,
            pages_per_block: cfg.pages_per_block,
            gc_trigger_blocks,
            wear_leveling_threshold: cfg.wear_leveling_threshold,
            read_ns: cfg.read_latency_ns,
            write_ns: cfg.write_latency_ns,
            erase_ns: cfg.erase_latency_ns,
            stats: FtlStats::default(),
            gc_scratch: Vec::new(),
        }
    }

    /// Resets the FTL in place to the state [`Ftl::new`] would produce
    /// for `(cfg, layout)`, keeping every allocation — mapping tables,
    /// plane/block state, victim buckets — provided the device dimensions
    /// match the ones this FTL was built with. Returns `false` (leaving
    /// the instance valid for its old shape) when the dimensions differ
    /// and the caller must build fresh.
    pub(crate) fn reset(&mut self, cfg: &SsdConfig, layout: &TenantLayout) -> bool {
        if !self.geo.matches(cfg) {
            return false;
        }
        // Same dimensions, but the non-dimensional knobs may differ.
        self.pages_per_block = cfg.pages_per_block;
        self.gc_trigger_blocks =
            ((cfg.blocks_per_plane as f64 * cfg.gc_free_block_threshold).ceil() as usize).max(2);
        self.wear_leveling_threshold = cfg.wear_leveling_threshold;
        self.read_ns = cfg.read_latency_ns;
        self.write_ns = cfg.write_latency_ns;
        self.erase_ns = cfg.erase_latency_ns;
        for plane in &mut self.planes {
            plane.reset();
        }
        let old = self.maps.len();
        for (i, t) in layout.iter().enumerate() {
            if i < old {
                self.maps[i].reset(t.lpn_space);
            } else {
                self.maps.push(TenantMap::new(t.lpn_space));
            }
        }
        self.maps.truncate(layout.tenant_count());
        self.stats = FtlStats::default();
        self.gc_scratch.clear();
        true
    }

    /// The geometry the FTL was built with.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Free pages remaining in a flat plane.
    pub fn plane_free_pages(&self, plane: usize) -> u64 {
        self.planes[plane].free_pages
    }

    /// Number of erased spare blocks in a flat plane.
    pub fn plane_free_blocks(&self, plane: usize) -> usize {
        self.planes[plane].free_blocks.len()
            + usize::from(self.planes[plane].active_block.is_some())
    }

    /// Looks up the physical location of `(tenant, lpn)` for a read.
    ///
    /// LPNs that were never written are **seeded**: a physical page is
    /// allocated via the static policy (so pre-existing data is striped the
    /// way a freshly formatted device would hold it) with no timing cost,
    /// modelling data that was already on flash before the trace began.
    pub fn translate_read(
        &mut self,
        tenant: u16,
        lpn: u64,
        layout: &TenantLayout,
    ) -> Result<PhysAddr, FtlError> {
        let map = self
            .maps
            .get(tenant as usize)
            .ok_or(FtlError::UnknownTenant(tenant))?;
        let lpn = lpn % map.lpn_space();
        if let Some(packed) = self.maps[tenant as usize].get(lpn) {
            return Ok(self.geo.unpack_page(packed));
        }
        // Seed: allocate statically, discard the GC charge (no time passes).
        let state = layout.tenant(tenant as usize);
        let plane = alloc::static_plane(&self.geo, state, lpn);
        let outcome = self.write_inner(tenant, lpn, plane)?;
        self.stats.seeded_pages += 1;
        self.stats.host_pages_written -= 1; // seeding is not a host write
        Ok(outcome.addr)
    }

    /// Writes `(tenant, lpn)` to `plane` (flat index), invalidating any
    /// previous copy and possibly triggering GC on that plane.
    pub fn write(&mut self, tenant: u16, lpn: u64, plane: usize) -> Result<WriteOutcome, FtlError> {
        let map = self
            .maps
            .get(tenant as usize)
            .ok_or(FtlError::UnknownTenant(tenant))?;
        let lpn = lpn % map.lpn_space();
        self.write_inner(tenant, lpn, plane)
    }

    /// [`Ftl::write`] for an LPN already reduced modulo the tenant's
    /// logical space. The admit path computes `lpn % lpn_space` once for
    /// plane selection and reuses it here, skipping a second 64-bit
    /// modulo per written page.
    pub(crate) fn write_in_space(
        &mut self,
        tenant: u16,
        lpn: u64,
        plane: usize,
    ) -> Result<WriteOutcome, FtlError> {
        if self.maps.len() <= tenant as usize {
            return Err(FtlError::UnknownTenant(tenant));
        }
        debug_assert!(
            lpn < self.maps[tenant as usize].lpn_space(),
            "caller must pre-reduce the LPN"
        );
        self.write_inner(tenant, lpn, plane)
    }

    fn write_inner(
        &mut self,
        tenant: u16,
        lpn: u64,
        plane: usize,
    ) -> Result<WriteOutcome, FtlError> {
        // Invalidate the previous copy, if any.
        if let Some(old_packed) = self.maps[tenant as usize].get(lpn) {
            self.invalidate_packed(old_packed);
        }

        // Land the page on the plane's active block.
        let addr = self.append_to_plane(plane, tenant, lpn)?;
        self.maps[tenant as usize].set(lpn, self.geo.packed_at(plane, addr.block, addr.page));
        self.stats.host_pages_written += 1;

        // Trigger GC when spare blocks run low.
        let gc = if self.plane_free_blocks(plane) < self.gc_trigger_blocks {
            self.collect_plane(plane)
        } else {
            None
        };
        Ok(WriteOutcome { addr, gc })
    }

    /// Marks the page behind a packed id invalid, relocating the block
    /// between victim-index buckets when it is indexed (full and
    /// non-active). Works on the packed form directly so the hot write
    /// path never materializes a [`PhysAddr`] for the dying copy.
    fn invalidate_packed(&mut self, packed: u32) {
        let (plane, bi, page) = self.geo.split_packed(packed);
        let bi = bi as usize;
        let pages_per_block = self.pages_per_block;
        let state = &mut self.planes[plane];
        let block = &mut state.blocks[bi];
        debug_assert!(matches!(
            block.pages[page as usize],
            PageState::Valid { .. }
        ));
        block.pages[page as usize] = PageState::Invalid;
        block.valid_count -= 1;
        // Re-index under the new valid count; the entry left in the old
        // bucket goes stale and is popped lazily at victim selection.
        if block.is_full(pages_per_block) && state.active_block != Some(bi) {
            state.index_insert(bi);
        }
    }

    /// Appends a page to the plane's active block, rotating in a fresh block
    /// when needed.
    fn append_to_plane(
        &mut self,
        plane: usize,
        tenant: u16,
        lpn: u64,
    ) -> Result<PhysAddr, FtlError> {
        let pages_per_block = self.pages_per_block;
        let state = &mut self.planes[plane];

        let need_new_block = match state.active_block {
            Some(b) => state.blocks[b].is_full(pages_per_block),
            None => true,
        };
        if need_new_block {
            match state.free_blocks.pop() {
                Some(b) => {
                    // The outgoing active block (full, by `need_new_block`)
                    // leaves rotation and becomes victim material. Insert
                    // only on success: on the PlaneFull path it stays the
                    // active block.
                    if let Some(old) = state.active_block {
                        state.index_insert(old);
                    }
                    state.active_block = Some(b);
                }
                None => return Err(FtlError::PlaneFull { plane }),
            }
        }
        let b = state.active_block.expect("just ensured an active block");
        let block = &mut state.blocks[b];
        let page = block.next_page;
        debug_assert!(matches!(block.pages[page as usize], PageState::Free));
        block.pages[page as usize] = PageState::Valid { tenant, lpn };
        block.next_page += 1;
        block.valid_count += 1;
        state.free_pages -= 1;

        Ok(self.geo.addr_at(plane, b as u32, page))
    }

    /// Runs one greedy GC pass on `plane`; returns the timing charge or
    /// `None` when no profitable victim exists.
    fn collect_plane(&mut self, plane: usize) -> Option<GcCharge> {
        gc::collect_plane(self, plane)
    }

    // ---- internals shared with the gc module ----

    pub(crate) fn plane_mut(&mut self, plane: usize) -> &mut PlaneState {
        &mut self.planes[plane]
    }

    pub(crate) fn plane_ref(&self, plane: usize) -> &PlaneState {
        &self.planes[plane]
    }

    pub(crate) fn timings(&self) -> (u64, u64, u64) {
        (self.read_ns, self.write_ns, self.erase_ns)
    }

    pub(crate) fn pages_per_block_internal(&self) -> usize {
        self.pages_per_block
    }

    pub(crate) fn wear_threshold_internal(&self) -> u32 {
        self.wear_leveling_threshold
    }

    pub(crate) fn stats_mut(&mut self) -> &mut FtlStats {
        &mut self.stats
    }

    /// Erases `block` in `plane`: all pages become free, the spare pool
    /// grows, wear accounting advances.
    pub(crate) fn erase_block_internal(&mut self, plane: usize, block: usize) {
        let pages_per_block = self.pages_per_block as u64;
        let state = &mut self.planes[plane];
        let b = &mut state.blocks[block];
        debug_assert_eq!(b.valid_count, 0, "erasing a block with live data");
        for p in b.pages.iter_mut() {
            *p = PageState::Free;
        }
        b.next_page = 0;
        let old_erase = b.erase_count;
        b.erase_count += 1;
        state.free_pages += pages_per_block;
        state.free_blocks.push(block);
        state.note_erase(old_erase);
    }

    /// GC inner loop: drains the victim's live pages and re-appends them
    /// to the plane's active block(s), remapping each as it lands. Fused
    /// into one method so the per-moved-page work — block rotation check,
    /// page append, packed-id computation, mapping update — runs with the
    /// loop invariants (`pages_per_block`, the plane's packed page base)
    /// held in locals; this body executes once per live page of every
    /// victim, the hottest FTL path under write pressure.
    ///
    /// Returns `(pages_moved, victim_erased)`. `victim_erased` is set
    /// when the spare pool ran dry mid-migration and the victim had to be
    /// erased early to supply the destination block for its own remaining
    /// live pages.
    pub(crate) fn migrate_for_gc(&mut self, plane: usize, victim: usize) -> (u32, bool) {
        obs::span!("gc_migrate");
        let pages_per_block = self.pages_per_block;
        let mut live = std::mem::take(&mut self.gc_scratch);
        live.clear();
        {
            // Collect the live pages and invalidate the whole victim in
            // one pass over its pages. The victim is full, so it can
            // never be the active block the moves land on.
            let block = &mut self.planes[plane].blocks[victim];
            debug_assert!(block.next_page as usize == pages_per_block);
            for p in block.pages.iter_mut() {
                if let PageState::Valid { tenant, lpn } = *p {
                    live.push((tenant, lpn));
                }
                *p = PageState::Invalid;
            }
            block.valid_count = 0;
        }

        let page_base = self.geo.packed_at(plane, 0, 0);
        let ppb32 = pages_per_block as u32;
        let mut moved = 0u32;
        let mut victim_erased = false;
        for &(tenant, lpn) in &live {
            let state = &mut self.planes[plane];
            let need_new_block = match state.active_block {
                Some(b) => state.blocks[b].is_full(pages_per_block),
                None => true,
            };
            if need_new_block {
                if state.free_blocks.is_empty() {
                    // Spare pool dry: free the victim now and continue
                    // into the block it just vacated.
                    self.erase_block_internal(plane, victim);
                    victim_erased = true;
                }
                let state = &mut self.planes[plane];
                let b = state
                    .free_blocks
                    .pop()
                    .expect("erased victim provides a spare block");
                // The outgoing active block (full, by `need_new_block`)
                // leaves rotation and becomes victim material.
                if let Some(old) = state.active_block {
                    state.index_insert(old);
                }
                state.active_block = Some(b);
            }
            let state = &mut self.planes[plane];
            let b = state.active_block.expect("just ensured an active block");
            let block = &mut state.blocks[b];
            let page = block.next_page;
            debug_assert!(matches!(block.pages[page as usize], PageState::Free));
            block.pages[page as usize] = PageState::Valid { tenant, lpn };
            block.next_page += 1;
            block.valid_count += 1;
            state.free_pages -= 1;
            self.maps[tenant as usize].set(lpn, page_base + b as u32 * ppb32 + page);
            moved += 1;
        }
        self.gc_scratch = live;
        (moved, victim_erased)
    }

    /// Validates internal invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (pi, plane) in self.planes.iter().enumerate() {
            let mut free_pages = 0u64;
            for block in &plane.blocks {
                let valid = block
                    .pages
                    .iter()
                    .filter(|p| matches!(p, PageState::Valid { .. }))
                    .count() as u32;
                assert_eq!(valid, block.valid_count, "plane {pi} valid_count mismatch");
                let free = block
                    .pages
                    .iter()
                    .filter(|p| matches!(p, PageState::Free))
                    .count() as u64;
                free_pages += free;
                // Pages below the write pointer must not be Free.
                for (i, p) in block.pages.iter().enumerate() {
                    if (i as u32) < block.next_page {
                        assert!(!matches!(p, PageState::Free), "hole below write pointer");
                    } else {
                        assert!(matches!(p, PageState::Free), "data above write pointer");
                    }
                }
            }
            assert_eq!(
                free_pages, plane.free_pages,
                "plane {pi} free_pages mismatch"
            );
            // The victim index must cover exactly the full, non-active
            // blocks: after discarding stale entries, each bucket's live
            // keys are the `(erase, idx)` pairs of its blocks.
            let mut expect = vec![std::collections::BTreeSet::new(); self.pages_per_block + 1];
            for (bi, b) in plane.blocks.iter().enumerate() {
                if b.is_full(self.pages_per_block) && plane.active_block != Some(bi) {
                    expect[b.valid_count as usize].insert((b.erase_count as u64) << 32 | bi as u64);
                }
            }
            let live: Vec<std::collections::BTreeSet<u64>> = plane
                .full_blocks
                .iter()
                .enumerate()
                .map(|(v, bucket)| {
                    bucket
                        .iter()
                        .map(|&std::cmp::Reverse(key)| key)
                        .filter(|&key| plane.entry_is_current(v, key))
                        .collect()
                })
                .collect();
            assert_eq!(expect, live, "plane {pi} victim index stale");
            // The erase histogram and its cursors must match the blocks.
            let mut hist = vec![0u32; plane.erase_hist.len()];
            for b in &plane.blocks {
                hist[b.erase_count as usize] += 1;
            }
            assert_eq!(hist, plane.erase_hist, "plane {pi} erase histogram stale");
            let min = plane.blocks.iter().map(|b| b.erase_count).min().unwrap();
            let max = plane.blocks.iter().map(|b| b.erase_count).max().unwrap();
            assert_eq!((min, max), (plane.min_erase, plane.max_erase));
        }
        // Mapping must point at Valid pages tagged with the same (tenant, lpn).
        for (t, map) in self.maps.iter().enumerate() {
            for (lpn, packed) in map.iter_mapped() {
                let addr = self.geo.unpack_page(packed);
                let plane = self.geo.plane_index(&addr);
                match self.planes[plane].blocks[addr.block as usize].pages[addr.page as usize] {
                    PageState::Valid { tenant, lpn: l } => {
                        assert_eq!(tenant as usize, t);
                        assert_eq!(l, lpn);
                    }
                    other => panic!("mapping points at non-valid page: {other:?}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantLayout;

    fn small() -> (SsdConfig, TenantLayout) {
        let cfg = SsdConfig::small_test();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(64);
        (cfg, layout)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        let out = ftl.write(0, 5, 0).unwrap();
        let addr = ftl.translate_read(0, 5, &layout).unwrap();
        assert_eq!(addr, out.addr);
        ftl.check_invariants();
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        let first = ftl.write(0, 5, 0).unwrap().addr;
        let second = ftl.write(0, 5, 0).unwrap().addr;
        assert_ne!(
            first, second,
            "log-structured writes never overwrite in place"
        );
        let read = ftl.translate_read(0, 5, &layout).unwrap();
        assert_eq!(read, second);
        ftl.check_invariants();
    }

    #[test]
    fn read_of_unwritten_lpn_seeds_statically() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        let a1 = ftl.translate_read(0, 9, &layout).unwrap();
        let a2 = ftl.translate_read(0, 9, &layout).unwrap();
        assert_eq!(a1, a2, "seeding is stable");
        assert_eq!(ftl.stats().seeded_pages, 1);
        assert_eq!(ftl.stats().host_pages_written, 0);
        ftl.check_invariants();
    }

    #[test]
    fn lpns_wrap_at_tenant_space() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        let a = ftl.write(0, 3, 0).unwrap().addr;
        // 3 + 64 wraps to 3: reading it must hit the same page.
        let b = ftl.translate_read(0, 3 + 64, &layout).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_tenant_is_an_error() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        assert_eq!(ftl.write(7, 0, 0).unwrap_err(), FtlError::UnknownTenant(7));
        assert!(matches!(
            ftl.translate_read(7, 0, &layout),
            Err(FtlError::UnknownTenant(7))
        ));
    }

    #[test]
    fn filling_a_plane_without_invalid_pages_errors() {
        let cfg = SsdConfig {
            gc_free_block_threshold: 0.0,
            ..SsdConfig::small_test()
        };
        // lpn space larger than one plane so every write is a fresh page.
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(10_000);
        let mut ftl = Ftl::new(&cfg, &layout);
        let plane_pages = (cfg.blocks_per_plane * cfg.pages_per_block) as u64;
        for lpn in 0..plane_pages {
            ftl.write(0, lpn, 0).unwrap();
        }
        assert!(matches!(
            ftl.write(0, plane_pages, 0),
            Err(FtlError::PlaneFull { plane: 0 })
        ));
    }

    #[test]
    fn overwrites_trigger_gc_and_reclaim_space() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        // Hammer a small working set confined to plane 0 far beyond its
        // capacity; GC must keep reclaiming.
        let plane_pages = (cfg.blocks_per_plane * cfg.pages_per_block) as u64; // 64
        for i in 0..(plane_pages * 8) {
            let lpn = i % 16; // small hot set
            ftl.write(0, lpn, 0).unwrap();
        }
        let stats = ftl.stats();
        assert!(stats.gc_blocks_erased > 0, "GC must have run");
        assert!(stats.write_amplification() >= 1.0);
        ftl.check_invariants();
    }

    #[test]
    fn write_amplification_default_is_one() {
        assert_eq!(FtlStats::default().write_amplification(), 1.0);
    }

    #[test]
    fn plane_free_counters_consistent() {
        let (cfg, layout) = small();
        let mut ftl = Ftl::new(&cfg, &layout);
        let before = ftl.plane_free_pages(0);
        ftl.write(0, 0, 0).unwrap();
        assert_eq!(ftl.plane_free_pages(0), before - 1);
        assert!(ftl.plane_free_blocks(0) <= cfg.blocks_per_plane);
    }
}
