//! Wear (erase-count) accounting across the device.
//!
//! The FTL's GC victim selection already tie-breaks toward low-erase blocks
//! (see [`super::gc`]); this module provides the reporting side: per-device
//! erase-count distribution summaries used by tests, examples, and the
//! ablation benches.

use super::Ftl;

/// Summary of the erase-count distribution over all blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearSummary {
    /// Total block erases performed.
    pub total_erases: u64,
    /// Lowest per-block erase count.
    pub min: u32,
    /// Highest per-block erase count.
    pub max: u32,
    /// Mean erase count.
    pub mean: f64,
    /// Population standard deviation of erase counts.
    pub std_dev: f64,
}

impl WearSummary {
    /// Max-minus-min spread; 0 for perfectly even wear.
    pub fn spread(&self) -> u32 {
        self.max - self.min
    }
}

/// Computes the erase-count summary for the whole device.
///
/// Streams over the per-plane block tables twice (totals, then variance)
/// instead of materialising a flat count vector, so repeated reporting —
/// e.g. once per keeper window on a warm [`crate::SimArena`] — performs no
/// heap allocation. The accumulation order matches the flattened
/// plane-major order the old vector used, so the floating-point results
/// are bit-identical.
pub fn wear_summary(ftl: &Ftl) -> WearSummary {
    let geo = ftl.geometry();
    let blocks = geo.total_planes() * geo.blocks_per_plane();
    if blocks == 0 {
        return WearSummary::default();
    }
    let mut total: u64 = 0;
    let mut min = u32::MAX;
    let mut max = 0u32;
    for plane in 0..geo.total_planes() {
        for block in &ftl.plane_ref(plane).blocks {
            let c = block.erase_count;
            total += c as u64;
            min = min.min(c);
            max = max.max(c);
        }
    }
    let mean = total as f64 / blocks as f64;
    let mut sq_sum = 0.0f64;
    for plane in 0..geo.total_planes() {
        for block in &ftl.plane_ref(plane).blocks {
            let d = block.erase_count as f64 - mean;
            sq_sum += d * d;
        }
    }
    WearSummary {
        total_erases: total,
        min,
        max,
        mean,
        std_dev: (sq_sum / blocks as f64).sqrt(),
    }
}

/// Summarises an explicit slice of erase counts (test/diagnostic helper).
#[cfg_attr(not(test), allow(dead_code))]
fn summarize(counts: &[u32]) -> WearSummary {
    if counts.is_empty() {
        return WearSummary {
            total_erases: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let min = *counts.iter().min().expect("non-empty");
    let max = *counts.iter().max().expect("non-empty");
    let mean = total as f64 / counts.len() as f64;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / counts.len() as f64;
    WearSummary {
        total_erases: total,
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::ftl::Ftl;
    use crate::tenant::TenantLayout;

    #[test]
    fn fresh_device_has_zero_wear() {
        let cfg = SsdConfig::small_test();
        let layout = TenantLayout::shared(1, &cfg);
        let ftl = Ftl::new(&cfg, &layout);
        let w = wear_summary(&ftl);
        assert_eq!(w.total_erases, 0);
        assert_eq!(w.spread(), 0);
        assert_eq!(w.mean, 0.0);
    }

    #[test]
    fn summarize_empty_slice() {
        let w = summarize(&[]);
        assert_eq!(w.total_erases, 0);
        assert_eq!(w.std_dev, 0.0);
    }

    #[test]
    fn summarize_known_values() {
        let w = summarize(&[1, 3, 5, 7]);
        assert_eq!(w.total_erases, 16);
        assert_eq!(w.min, 1);
        assert_eq!(w.max, 7);
        assert_eq!(w.spread(), 6);
        assert!((w.mean - 4.0).abs() < 1e-12);
        // population std dev of [1,3,5,7] = sqrt(5)
        assert!((w.std_dev - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wear_accumulates_under_gc_and_stays_bounded() {
        let cfg = SsdConfig {
            gc_free_block_threshold: 0.25,
            ..SsdConfig::small_test()
        };
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(8);
        let mut ftl = Ftl::new(&cfg, &layout);
        for i in 0..4096u64 {
            ftl.write(0, i % 8, 0).unwrap();
        }
        let w = wear_summary(&ftl);
        assert!(w.total_erases > 0);
        assert_eq!(w.total_erases, ftl.stats().gc_blocks_erased);
        // Only plane 0 receives writes in this test, so device-wide spread
        // equals plane-0 spread plus zeros elsewhere; within plane 0 the
        // erase tie-break keeps wear within a small band.
        let plane0: Vec<u32> = ftl
            .plane_ref(0)
            .blocks
            .iter()
            .map(|b| b.erase_count)
            .collect();
        let lo = *plane0.iter().min().unwrap();
        let hi = *plane0.iter().max().unwrap();
        assert!(
            hi - lo <= hi.max(4),
            "wear spread should stay bounded (lo={lo}, hi={hi})"
        );
        assert!(
            lo > 0,
            "victim rotation must touch every block in the plane"
        );
    }
}
