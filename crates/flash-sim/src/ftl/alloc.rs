//! Page allocation: choosing the plane a write lands on.
//!
//! The paper contrasts two modes (§IV-E):
//!
//! * **Static** — channel/chip/plane are a pure function of the LPN, so
//!   consecutive logical pages stripe across the tenant's channels. This
//!   maximizes read parallelism for sequential reads, which is why
//!   SSDKeeper assigns it to read-dominated tenants.
//! * **Dynamic** — the write goes to the least-backlogged die in the
//!   tenant's channel set, so bursts of writes spread to whatever is idle.
//!   SSDKeeper assigns it to write-dominated tenants.
//!
//! SSDKeeper's *hybrid page allocator* is exactly the per-tenant choice
//! between these two, driven by the observed read/write characteristic.

use crate::geometry::Geometry;
use crate::tenant::TenantState;

/// Page allocation mode for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageAllocPolicy {
    /// LPN-determined placement (channel-first striping).
    Static,
    /// Least-backlogged-die placement at dispatch time.
    Dynamic,
}

impl std::fmt::Display for PageAllocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageAllocPolicy::Static => write!(f, "static"),
            PageAllocPolicy::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// Flat plane index chosen by **static** allocation for `(tenant, lpn)`.
///
/// Striping order is channel-first, then die-within-channel, then plane:
/// consecutive LPNs hit different channels, so a `size`-page sequential read
/// engages `min(size, |channels|)` buses at once.
pub fn static_plane(geo: &Geometry, tenant: &TenantState, lpn: u64) -> usize {
    let set = &tenant.channels;
    if lpn <= u32::MAX as u64 {
        // Mapping tables are dense (one slot per LPN), so every reduced
        // LPN fits 32 bits in practice and the three stripe divisions
        // collapse to reciprocal multiplies. This runs once per written
        // page on the admit path.
        let (div_dies, div_planes) = geo.stripe_divs();
        let (q1, ch_pos) = set.div_len().divmod(lpn as u32);
        let (q2, die_in_channel) = div_dies.divmod(q1);
        let (_, plane_in_die) = div_planes.divmod(q2);
        let channel = set.channels()[ch_pos as usize] as usize;
        let die = geo.die_index_of(channel, die_in_channel as usize);
        return geo.plane_index_of(die, plane_in_die as usize);
    }

    let nch = set.len() as u64;
    let dies_per_channel = geo.dies_per_channel() as u64;
    let planes_per_die = geo.planes_per_die() as u64;

    let channel = set.stripe(lpn);
    let die_in_channel = (lpn / nch) % dies_per_channel;
    let plane_in_die = (lpn / (nch * dies_per_channel)) % planes_per_die;

    let die = geo.die_index_of(channel, die_in_channel as usize);
    geo.plane_index_of(die, plane_in_die as usize)
}

/// Flat plane index chosen by **dynamic** allocation.
///
/// `plane_backlog` maps flat plane index to the number of commands
/// currently queued or executing on its execution unit; `plane_free` maps
/// flat plane index to its free-page count. Among the tenant's channels
/// the least-backlogged plane wins; ties prefer the plane with the most
/// free pages (so planes fill evenly and GC pressure stays balanced),
/// then the lower index.
/// Ties are broken in **channel-first** order (all channels' first planes
/// before any channel's second plane), so a burst of writes arriving at an
/// idle device fans out across buses instead of piling onto one channel —
/// the same parallelism static striping gets.
pub fn dynamic_plane(
    geo: &Geometry,
    tenant: &TenantState,
    plane_backlog: &[u32],
    plane_free: impl Fn(usize) -> u64,
) -> usize {
    let planes_per_channel = geo.dies_per_channel() * geo.planes_per_die();
    (0..planes_per_channel)
        .flat_map(|rank| {
            tenant
                .channels
                .channels()
                .iter()
                .enumerate()
                .map(move |(ch_pos, &ch)| {
                    let die = geo.die_index_of(ch as usize, rank / geo.planes_per_die());
                    let plane = geo.plane_index_of(die, rank % geo.planes_per_die());
                    (rank, ch_pos, plane)
                })
        })
        // `(rank, ch_pos)` makes every key unique, so `min_by_key`'s
        // last-min-wins tie rule cannot differ from the first-wins scan
        // this replaces: backlog first, then most free pages, then
        // channel-first rank order.
        .min_by_key(|&(rank, ch_pos, plane)| {
            (
                plane_backlog[plane],
                std::cmp::Reverse(plane_free(plane)),
                rank,
                ch_pos,
            )
        })
        .map(|(_, _, plane)| plane)
        .expect("channel sets are non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::tenant::{ChannelSet, TenantState};
    use simrng::{Rng, SimRng};

    fn tenant_with_channels(chs: &[usize], cfg: &SsdConfig) -> TenantState {
        TenantState {
            channels: ChannelSet::new(chs, cfg.channels).unwrap(),
            policy: PageAllocPolicy::Static,
            lpn_space: 1 << 16,
        }
    }

    #[test]
    fn policy_display() {
        assert_eq!(PageAllocPolicy::Static.to_string(), "static");
        assert_eq!(PageAllocPolicy::Dynamic.to_string(), "dynamic");
    }

    #[test]
    fn static_stripes_consecutive_lpns_across_channels() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[0, 1, 2, 3], &cfg);
        let channels: Vec<usize> = (0..8)
            .map(|lpn| geo.channel_of_plane(static_plane(&geo, &tenant, lpn)))
            .collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    /// The reciprocal-multiply fast path must place every 32-bit LPN on
    /// the same plane as the plain div/mod stripe arithmetic, across
    /// channel-set sizes that do and do not divide the LPN space.
    #[test]
    fn static_plane_reciprocal_matches_reference() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let sets: [&[usize]; 4] = [&[0], &[5, 7], &[0, 1, 2], &[0, 1, 2, 3, 4, 5, 6, 7]];
        let mut rng = SimRng::seed_from_u64(91);
        for chs in sets {
            let tenant = tenant_with_channels(chs, &cfg);
            let reference = |lpn: u64| {
                let nch = chs.len() as u64;
                let dpc = geo.dies_per_channel() as u64;
                let die_in_channel = (lpn / nch) % dpc;
                let plane_in_die = (lpn / (nch * dpc)) % geo.planes_per_die() as u64;
                let die = geo.die_index_of(tenant.channels.stripe(lpn), die_in_channel as usize);
                geo.plane_index_of(die, plane_in_die as usize)
            };
            for lpn in 0..4096u64 {
                assert_eq!(
                    static_plane(&geo, &tenant, lpn),
                    reference(lpn),
                    "lpn {lpn}"
                );
            }
            for _ in 0..4096 {
                let lpn = rng.gen::<u64>() >> 32; // 32-bit range: fast path
                assert_eq!(
                    static_plane(&geo, &tenant, lpn),
                    reference(lpn),
                    "lpn {lpn}"
                );
                let big = rng.gen::<u64>() | (1 << 32); // beyond: slow path
                assert_eq!(
                    static_plane(&geo, &tenant, big),
                    reference(big),
                    "lpn {big}"
                );
            }
        }
    }

    #[test]
    fn static_respects_channel_set() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[5, 7], &cfg);
        for lpn in 0..256 {
            let ch = geo.channel_of_plane(static_plane(&geo, &tenant, lpn));
            assert!(ch == 5 || ch == 7, "lpn {lpn} landed on channel {ch}");
        }
    }

    #[test]
    fn static_eventually_uses_every_plane_in_set() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[2, 3], &cfg);
        let reachable: usize = 2 * geo.dies_per_channel() * geo.planes_per_die();
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..1024 {
            seen.insert(static_plane(&geo, &tenant, lpn));
        }
        assert_eq!(seen.len(), reachable);
    }

    #[test]
    fn dynamic_picks_least_backlogged_plane() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[0, 1], &cfg);
        let mut backlog = vec![10u32; geo.total_planes()];
        let idle = geo.plane_index_of(geo.die_index_of(1, 1), 2);
        backlog[idle] = 0; // channel 1, second die, third plane is idle
        let plane = dynamic_plane(&geo, &tenant, &backlog, |_| 100);
        assert_eq!(plane, idle);
    }

    #[test]
    fn dynamic_ignores_planes_outside_channel_set() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[6], &cfg);
        let mut backlog = vec![5u32; geo.total_planes()];
        // Channel 0's planes are idle but outside the set.
        for d in geo.dies_of_channel(0) {
            for p in geo.planes_of_die(d) {
                backlog[p] = 0;
            }
        }
        let plane = dynamic_plane(&geo, &tenant, &backlog, |_| 100);
        assert_eq!(geo.channel_of_plane(plane), 6);
    }

    #[test]
    fn dynamic_breaks_backlog_ties_by_free_pages() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[0], &cfg);
        let backlog = vec![0u32; geo.total_planes()];
        // Make plane index 2 within die 0 the freest.
        let target = geo.plane_index_of(0, 2);
        let plane = dynamic_plane(
            &geo,
            &tenant,
            &backlog,
            |p| if p == target { 99 } else { 1 },
        );
        assert_eq!(plane, target);
    }

    /// Static allocation is a pure function of (channel set, lpn).
    #[test]
    fn static_is_deterministic() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let tenant = tenant_with_channels(&[1, 4, 6], &cfg);
        let mut rng = SimRng::seed_from_u64(401);
        for _ in 0..512 {
            let lpn = rng.gen_range(0u64..100_000);
            assert_eq!(
                static_plane(&geo, &tenant, lpn),
                static_plane(&geo, &tenant, lpn)
            );
        }
    }

    /// Dynamic allocation always lands inside the tenant's channel set.
    #[test]
    fn dynamic_stays_in_set() {
        let cfg = SsdConfig::paper_table1();
        let geo = Geometry::new(&cfg);
        let mut rng = SimRng::seed_from_u64(402);
        for _ in 0..256 {
            let backlogs: Vec<u32> = (0..64).map(|_| rng.gen_range(0u32..100)).collect();
            let ch_a = rng.gen_range(0usize..8);
            let ch_b = rng.gen_range(0usize..8);
            let tenant = tenant_with_channels(&[ch_a, ch_b], &cfg);
            let plane = dynamic_plane(&geo, &tenant, &backlogs, |_| 10);
            let ch = geo.channel_of_plane(plane);
            assert!(ch == ch_a || ch == ch_b);
        }
    }
}
