//! Per-tenant page-level address mapping.
//!
//! Each tenant owns a dense logical page space (`0..lpn_space`) and a flat
//! table from LPN to packed physical page id (see
//! [`crate::geometry::Geometry::pack_page`]). A dense `Vec<u32>` is used
//! instead of a hash map: lookups are on the critical path of every
//! simulated I/O, and the spaces involved (2²⁰ pages by default) make the
//! table small (4 MB/tenant) and perfectly cache-predictable.

/// Sentinel for "never mapped".
const UNMAPPED: u32 = u32::MAX;

/// Logical-to-physical table for one tenant.
#[derive(Debug, Clone)]
pub struct TenantMap {
    table: Vec<u32>,
    mapped: u64,
}

impl TenantMap {
    /// Creates an empty map covering `0..lpn_space`.
    ///
    /// # Panics
    ///
    /// Panics if `lpn_space` is zero.
    pub fn new(lpn_space: u64) -> Self {
        assert!(lpn_space > 0, "tenant logical space must be non-empty");
        Self {
            table: vec![UNMAPPED; lpn_space as usize],
            mapped: 0,
        }
    }

    /// Clears every mapping and re-sizes the table to `lpn_space`,
    /// reusing the existing allocation when it is already large enough —
    /// equivalent to `*self = TenantMap::new(lpn_space)` without the 4
    /// MB/tenant reallocation.
    ///
    /// # Panics
    ///
    /// Panics if `lpn_space` is zero.
    pub fn reset(&mut self, lpn_space: u64) {
        assert!(lpn_space > 0, "tenant logical space must be non-empty");
        self.table.clear();
        self.table.resize(lpn_space as usize, UNMAPPED);
        self.mapped = 0;
    }

    /// Size of the logical space.
    pub fn lpn_space(&self) -> u64 {
        self.table.len() as u64
    }

    /// Number of LPNs currently mapped.
    pub fn mapped_count(&self) -> u64 {
        self.mapped
    }

    /// Looks up an LPN. `lpn` must be `< lpn_space`.
    pub fn get(&self, lpn: u64) -> Option<u32> {
        let v = self.table[lpn as usize];
        (v != UNMAPPED).then_some(v)
    }

    /// Maps `lpn` to a packed physical page id.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ppa` is the sentinel value.
    pub fn set(&mut self, lpn: u64, ppa: u32) {
        debug_assert_ne!(
            ppa, UNMAPPED,
            "u32::MAX is reserved as the unmapped sentinel"
        );
        let slot = &mut self.table[lpn as usize];
        if *slot == UNMAPPED {
            self.mapped += 1;
        }
        *slot = ppa;
    }

    /// Removes a mapping (used only by tests and invariant checks; the FTL
    /// itself never unmaps, it remaps).
    pub fn clear(&mut self, lpn: u64) {
        let slot = &mut self.table[lpn as usize];
        if *slot != UNMAPPED {
            self.mapped -= 1;
            *slot = UNMAPPED;
        }
    }

    /// Iterates over `(lpn, packed_ppa)` pairs that are currently mapped.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != UNMAPPED)
            .map(|(i, &v)| (i as u64, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn new_map_is_empty() {
        let m = TenantMap::new(16);
        assert_eq!(m.lpn_space(), 16);
        assert_eq!(m.mapped_count(), 0);
        assert!(m.get(0).is_none());
        assert_eq!(m.iter_mapped().count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_space_panics() {
        let _ = TenantMap::new(0);
    }

    #[test]
    fn set_get_clear_cycle() {
        let mut m = TenantMap::new(8);
        m.set(3, 42);
        assert_eq!(m.get(3), Some(42));
        assert_eq!(m.mapped_count(), 1);
        m.set(3, 43); // remap does not change count
        assert_eq!(m.mapped_count(), 1);
        m.clear(3);
        assert!(m.get(3).is_none());
        assert_eq!(m.mapped_count(), 0);
        m.clear(3); // idempotent
        assert_eq!(m.mapped_count(), 0);
    }

    #[test]
    fn iter_mapped_yields_pairs_in_order() {
        let mut m = TenantMap::new(8);
        m.set(5, 50);
        m.set(1, 10);
        assert_eq!(m.iter_mapped().collect::<Vec<_>>(), vec![(1, 10), (5, 50)]);
    }

    /// mapped_count always equals the number of distinct mapped LPNs,
    /// over seeded random set/clear sequences.
    #[test]
    fn mapped_count_is_consistent() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut m = TenantMap::new(32);
            let ops = rng.gen_range(0usize..200);
            for _ in 0..ops {
                let lpn = rng.gen_range(0u64..32);
                if rng.gen_bool(0.5) {
                    m.set(lpn, rng.gen_range(0u32..1000));
                } else {
                    m.clear(lpn);
                }
            }
            assert_eq!(
                m.mapped_count(),
                m.iter_mapped().count() as u64,
                "seed {seed}"
            );
        }
    }
}
