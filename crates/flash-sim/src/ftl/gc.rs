//! Greedy garbage collection.
//!
//! When a plane's spare-block pool drops below the configured threshold the
//! FTL runs one GC pass on that plane: pick the full block with the fewest
//! valid pages (ties broken toward the least-erased block, a light
//! wear-leveling touch), migrate its valid pages to the plane's active
//! block, erase it, and return it to the spare pool.
//!
//! Bookkeeping happens synchronously; the **time** the pass takes —
//! `moved × (read + program) + erase` — is returned as a [`GcCharge`] that
//! the engine turns into a die-blocking composite operation, so foreground
//! I/O behind a collecting die stalls exactly as it would on hardware.
//! Migrations use on-chip copyback and never touch the channel bus.

use super::Ftl;

/// Timing charge for one GC pass, to be applied to the owning execution
/// unit by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcCharge {
    /// Flat plane index that performs the pass.
    pub plane: usize,
    /// Block index of the chosen victim within the plane.
    pub victim_block: u32,
    /// Total busy time: valid-page moves plus the erase.
    pub duration_ns: u64,
    /// Valid pages migrated.
    pub moved_pages: u32,
    /// Blocks erased (always 1 for a single pass).
    pub erased_blocks: u32,
}

/// Runs one greedy pass on `plane`. Returns `None` when no profitable
/// victim exists (every full block is 100 % valid, or no block is full).
///
/// When the plane's erase-count spread exceeds the configured static
/// wear-leveling threshold, the pass instead targets the *coldest* full
/// block — even a fully valid one — so cold data stops pinning low-wear
/// blocks out of the rotation.
pub(super) fn collect_plane(ftl: &mut Ftl, plane: usize) -> Option<GcCharge> {
    let pages_per_block = ftl.pages_per_block_internal();
    let victim = pick_wear_victim(ftl, plane, pages_per_block)
        .or_else(|| ftl.plane_mut(plane).greedy_victim())?;
    // No index removal here: the victim's entries go stale when the erase
    // below bumps its erase count (and empties it), and the lazy cleanup
    // in victim selection discards them.

    // Collect, invalidate, and migrate the victim's live pages in the
    // FTL's fused inner loop (see `Ftl::migrate_for_gc`); the victim is
    // erased there only when the spare pool ran dry mid-migration.
    let (moved, victim_erased) = ftl.migrate_for_gc(plane, victim);
    if !victim_erased {
        ftl.erase_block_internal(plane, victim);
    }

    let (read_ns, write_ns, erase_ns) = ftl.timings();
    let stats = ftl.stats_mut();
    stats.gc_pages_moved += moved as u64;
    stats.gc_blocks_erased += 1;
    stats.gc_invocations += 1;

    Some(GcCharge {
        plane,
        victim_block: victim as u32,
        duration_ns: moved as u64 * (read_ns + write_ns) + erase_ns,
        moved_pages: moved,
        erased_blocks: 1,
    })
}

/// Static wear leveling: when the plane's erase spread exceeds the
/// threshold, returns the coldest (least-erased) full block so its data
/// is migrated and the block rejoins the write rotation. Returns `None`
/// when disabled (threshold 0) or the spread is within bounds.
fn pick_wear_victim(ftl: &mut Ftl, plane: usize, _pages_per_block: usize) -> Option<usize> {
    let threshold = ftl.wear_threshold_internal();
    if threshold == 0 {
        return None;
    }
    // O(1) spread check via the plane's erase histogram.
    if ftl.plane_ref(plane).erase_spread() <= threshold {
        return None;
    }
    // Coldest full block, ties toward more invalid pages (cheaper moves):
    // min (erase, valid, idx) straight out of the victim index.
    ftl.plane_mut(plane).wear_victim()
}

#[cfg(test)]
mod tests {
    use crate::config::SsdConfig;
    use crate::ftl::{Ftl, PageState};
    use crate::tenant::TenantLayout;

    fn setup(threshold: f64, lpn_space: u64) -> (SsdConfig, TenantLayout, Ftl) {
        let cfg = SsdConfig {
            gc_free_block_threshold: threshold,
            ..SsdConfig::small_test()
        };
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(lpn_space);
        let ftl = Ftl::new(&cfg, &layout);
        (cfg, layout, ftl)
    }

    /// Drives plane 0 until GC has fired at least once.
    fn hammer(ftl: &mut Ftl, writes: u64, hot_set: u64) {
        for i in 0..writes {
            ftl.write(0, i % hot_set, 0).unwrap();
        }
    }

    #[test]
    fn gc_triggers_under_pressure_and_keeps_invariants() {
        let (_cfg, _layout, mut ftl) = setup(0.25, 64);
        hammer(&mut ftl, 512, 8);
        assert!(ftl.stats().gc_invocations > 0);
        ftl.check_invariants();
    }

    #[test]
    fn gc_charge_duration_matches_moved_pages() {
        let (_cfg, _layout, mut ftl) = setup(0.25, 64);
        // Find a write whose outcome carries a GC charge.
        let mut found = false;
        for i in 0..2048 {
            let out = ftl.write(0, i % 8, 0).unwrap();
            if let Some(gc) = out.gc {
                let (r, w, e) = (20_000u64, 200_000u64, 1_500_000u64);
                assert_eq!(gc.duration_ns, gc.moved_pages as u64 * (r + w) + e);
                assert_eq!(gc.erased_blocks, 1);
                assert_eq!(gc.plane, 0);
                assert!((gc.victim_block as usize) < SsdConfig::small_test().blocks_per_plane);
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one GC charge");
    }

    #[test]
    fn hot_overwrites_produce_cheap_victims() {
        // A tiny hot set means victims are fully invalid: zero moves.
        let (_cfg, _layout, mut ftl) = setup(0.25, 4);
        hammer(&mut ftl, 1024, 4);
        let stats = ftl.stats();
        assert!(stats.gc_invocations > 0);
        // Write amplification should stay close to 1 for fully-hot traffic.
        assert!(
            stats.write_amplification() < 1.2,
            "WA {} too high for fully-hot workload",
            stats.write_amplification()
        );
    }

    #[test]
    fn mixed_hot_cold_moves_cold_pages() {
        let (_cfg, _layout, mut ftl) = setup(0.25, 32);
        // Interleave one-shot cold pages with hot pages so blocks hold a
        // mix, then overwrite hot pages in a *random* order: cyclic
        // overwrites would hand greedy GC a fully-invalid victim every
        // pass, whereas random ones leave every block partially valid and
        // force migrations.
        use simrng::Rng;
        for i in 0..16u64 {
            ftl.write(0, i, 0).unwrap(); // hot
            ftl.write(0, 16 + i, 0).unwrap(); // cold, written once
        }
        let mut rng = simrng::SimRng::seed_from_u64(42);
        for _ in 0..1024 {
            let lpn = rng.gen_range(0..16u64);
            ftl.write(0, lpn, 0).unwrap();
        }
        let stats = ftl.stats();
        assert!(stats.gc_pages_moved > 0, "cold valid pages must migrate");
        ftl.check_invariants();
        // Cold data must still be readable at its (migrated) location.
        let layout = TenantLayout::shared(1, &SsdConfig::small_test()).with_lpn_space_all(32);
        for lpn in 16..32 {
            ftl.translate_read(0, lpn, &layout).unwrap();
        }
    }

    #[test]
    fn erase_counts_accumulate() {
        let (cfg, _layout, mut ftl) = setup(0.25, 8);
        hammer(&mut ftl, 2048, 8);
        let total_erases: u64 = (0..1)
            .map(|_| {
                (0..cfg.blocks_per_plane)
                    .map(|b| ftl.plane_ref(0).blocks[b].erase_count as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total_erases, ftl.stats().gc_blocks_erased);
        assert!(total_erases > 1);
    }

    #[test]
    fn static_wear_leveling_bounds_the_erase_spread() {
        use crate::ftl::wear::wear_summary;
        // Cold data written once, then a hot region hammered hard. With
        // greedy-only GC the cold blocks are never erased and the spread
        // grows with total wear; static WL drags them back into rotation.
        let run = |threshold: u32| {
            let cfg = SsdConfig {
                channels: 1,
                chips_per_channel: 1,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 8,
                pages_per_block: 8,
                gc_free_block_threshold: 0.25,
                wear_leveling_threshold: threshold,
                ..SsdConfig::small_test()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(32);
            let mut ftl = Ftl::new(&cfg, &layout);
            for lpn in 16..32 {
                ftl.write(0, lpn, 0).unwrap(); // cold, written once
            }
            for i in 0..8_192u64 {
                ftl.write(0, i % 16, 0).unwrap(); // hot
            }
            ftl.check_invariants();
            // Cold data must remain readable.
            for lpn in 16..32 {
                ftl.translate_read(0, lpn, &layout).unwrap();
            }
            wear_summary(&ftl)
        };
        let greedy = run(0);
        let leveled = run(4);
        assert!(
            leveled.spread() < greedy.spread(),
            "WL spread {} must beat greedy spread {}",
            leveled.spread(),
            greedy.spread()
        );
        assert!(
            leveled.spread() <= 8,
            "spread must stay near the threshold, got {}",
            leveled.spread()
        );
    }

    #[test]
    fn wear_leveling_disabled_by_zero_threshold() {
        // threshold 0 must never trigger the cold-victim path (behaviour
        // identical to the original greedy policy).
        let (_cfg, _layout, mut ftl) = setup(0.25, 8);
        hammer(&mut ftl, 512, 8);
        // All data hot: every block cycles anyway; just assert no panic
        // and invariants hold.
        ftl.check_invariants();
    }

    #[test]
    fn gc_never_erases_live_data() {
        let (_cfg, layout, mut ftl) = setup(0.25, 48);
        for round in 0..64u64 {
            for lpn in 0..48 {
                if lpn % 3 == round % 3 {
                    ftl.write(0, lpn, 0).unwrap();
                }
            }
        }
        // Every LPN ever written must resolve to a Valid page with its tag.
        ftl.check_invariants();
        for lpn in 0..48 {
            let addr = ftl.translate_read(0, lpn, &layout).unwrap();
            let plane = ftl.geometry().plane_index(&addr);
            match ftl.plane_ref(plane).blocks[addr.block as usize].pages[addr.page as usize] {
                PageState::Valid { tenant, lpn: l } => {
                    assert_eq!(tenant, 0);
                    assert_eq!(l, lpn);
                }
                other => panic!("lpn {lpn} maps to {other:?}"),
            }
        }
    }
}
