//! The discrete-event simulation engine.
//!
//! # Command lifecycle
//!
//! Every host request fans out into page-granular commands at arrival. A
//! command serializes through phases, holding its **die** end-to-end and
//! the **channel bus** only during transfer phases:
//!
//! ```text
//! read:  [wait die] → array read (die) → [wait bus] → transfer out (bus+die) → done
//! write: [wait die] → [wait bus] → transfer in (bus+die) → program (die) → done
//! gc:    [wait die] → composite move+erase (die) → done
//! ```
//!
//! Two chips on one channel can overlap array operations but not
//! transfers — the multilevel parallelism SSDSim models and the SSDKeeper
//! paper exploits. Reads outrank writes at both resources with a bounded
//! bypass (see [`crate::scheduler`]).
//!
//! # Mid-run channel re-allocation
//!
//! [`Simulator::schedule_reallocation`] registers a layout change that takes
//! effect at a given simulated time, which is how SSDKeeper's Algorithm 2
//! (observe under `Shared`, predict at `t == T`, then switch) is executed.
//! Only *new writes* follow the new channel sets; reads keep following the
//! mapping table, like on a real device.

use crate::config::{ConfigError, SsdConfig};
use crate::event::{CmdId, EventKind, EventQueue, ReqId};
use crate::ftl::alloc::{self, PageAllocPolicy};
use crate::ftl::wear::wear_summary;
use crate::ftl::{Ftl, FtlError};
use crate::geometry::Geometry;
use crate::probe::{
    BusAcquire, BusRelease, CmdComplete, CmdIssue, GcCollect, NullProbe, Probe, ReallocApply,
};
use crate::request::{IoRequest, Op};
use crate::scheduler::{BusSched, CmdClass, DieSched};
use crate::stats::{LatencyBreakdown, LatencyStats, PhaseReport, SimReport, TenantReport};
use crate::tenant::{ChannelSet, TenantLayout};

/// Sentinel request id for internal (GC) commands.
const NO_REQ: ReqId = ReqId::MAX;

/// Phase of an in-flight command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Read: die is executing the array read.
    ArrayRead,
    /// Read: array done, waiting for the bus.
    WaitBusRead,
    /// Read: transferring data out on the bus.
    XferRead,
    /// Write: holding the die, waiting for the bus.
    WaitBusWrite,
    /// Write: transferring data in on the bus.
    XferWrite,
    /// Write: die is programming the page.
    Program,
    /// GC: die executing the composite move+erase charge.
    GcExec,
}

/// Hot per-command state: the fields every dispatch touches. Packed to
/// 8 bytes so eight in-flight commands share a cache line.
#[derive(Debug, Clone, Copy)]
struct CmdMeta {
    /// Array-execution unit index (plane or die, per
    /// `SsdConfig::plane_parallelism`).
    unit: u32,
    channel: u16,
    class: CmdClass,
    phase: Phase,
}

/// Hot per-command timestamps, split from [`CmdMeta`] so phase dispatch
/// that needs no times keeps the meta array dense.
#[derive(Debug, Clone, Copy)]
struct CmdTimes {
    /// When the command entered its unit queue.
    t_spawn: u64,
    /// Start of the current phase (for breakdown accounting).
    t_mark: u64,
}

/// Cold per-command fields: written at spawn, read at completion and in
/// the GC branches — never by the per-event dispatch itself.
#[derive(Debug, Clone, Copy)]
struct CmdCold {
    req: ReqId,
    /// Tenant served; GC commands carry the triggering write's tenant.
    tenant: u16,
    /// Composite duration for GC commands, 0 otherwise.
    gc_duration_ns: u64,
}

/// Struct-of-arrays command arena with slot recycling.
///
/// Splitting hot (`meta`, `times`) from cold (`cold`) fields keeps the
/// cache lines the event loop streams through free of bytes it never
/// reads per event; recycling keeps all three arrays at the peak
/// in-flight depth instead of growing with the trace.
#[derive(Debug)]
struct CmdArena {
    meta: Vec<CmdMeta>,
    times: Vec<CmdTimes>,
    cold: Vec<CmdCold>,
    /// Slots of retired commands, reused by [`CmdArena::alloc`]. Recycling
    /// ids is safe because every scheduler queue orders by its own
    /// insertion sequence, never by `CmdId` value.
    free_slots: Vec<CmdId>,
    /// Upper bound on arena slots (defaults to the full id space; tests
    /// shrink it to force exhaustion).
    slot_limit: CmdId,
}

impl Default for CmdArena {
    fn default() -> Self {
        Self {
            meta: Vec::new(),
            times: Vec::new(),
            cold: Vec::new(),
            free_slots: Vec::new(),
            slot_limit: CmdId::MAX,
        }
    }
}

impl CmdArena {
    /// Places a command in a recycled (or fresh) slot; a depth beyond
    /// `slot_limit` is a checked error.
    #[inline]
    fn alloc(&mut self, meta: CmdMeta, times: CmdTimes, cold: CmdCold) -> Result<CmdId, SimError> {
        match self.free_slots.pop() {
            Some(slot) => {
                self.meta[slot as usize] = meta;
                self.times[slot as usize] = times;
                self.cold[slot as usize] = cold;
                Ok(slot)
            }
            None => {
                if self.meta.len() >= self.slot_limit as usize {
                    return Err(SimError::CmdIdsExhausted {
                        limit: self.slot_limit,
                    });
                }
                let id = self.meta.len() as CmdId;
                self.meta.push(meta);
                self.times.push(times);
                self.cold.push(cold);
                // The free list holds at most one entry per slot; growing
                // it alongside the slot arrays keeps `free` itself
                // allocation-free, so retiring commands in the
                // steady-state loop never touches the heap.
                if self.free_slots.capacity() < self.meta.len() {
                    let need = self.meta.len() - self.free_slots.len();
                    self.free_slots.reserve(need);
                }
                Ok(id)
            }
        }
    }

    /// Returns a finished command's slot to the free list. Must only be
    /// called once per command, after its last use of the slot.
    #[inline]
    fn free(&mut self, id: CmdId) {
        self.free_slots.push(id);
    }

    /// Empties the arena (keeping array capacity) and lifts any
    /// test-imposed slot limit.
    fn reset(&mut self) {
        self.meta.clear();
        self.times.clear();
        self.cold.clear();
        self.free_slots.clear();
        self.slot_limit = CmdId::MAX;
    }
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    arrival_ns: u64,
    remaining: u32,
    tenant: u16,
    op: Op,
}

/// One per-tenant row of a [`Reallocation`]: the channel list lives as a
/// `(start, len)` span into the reallocation's flat channel table, so a
/// schedule of N entries is two allocations, not N+1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReallocEntry {
    tenant: u32,
    /// Start of this entry's channel span in `Reallocation::channels`.
    start: u32,
    /// Length of the channel span.
    len: u32,
    policy: Option<PageAllocPolicy>,
}

/// One pending layout change.
///
/// Construct with [`Reallocation::new`]; entries are stored as spans over
/// one flat channel table (see [`ReallocEntry`]) and read back through
/// [`Reallocation::entries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reallocation {
    /// Simulated time at which the change applies.
    pub at_ns: u64,
    entries: Vec<ReallocEntry>,
    /// Concatenated channel lists of all entries, addressed by the spans.
    channels: Vec<usize>,
}

impl Reallocation {
    /// Builds a reallocation applying at `at_ns` from `(tenant index,
    /// channels, policy)` rows, flattening the per-row channel lists into
    /// one table.
    pub fn new<C>(
        at_ns: u64,
        rows: impl IntoIterator<Item = (usize, C, Option<PageAllocPolicy>)>,
    ) -> Self
    where
        C: AsRef<[usize]>,
    {
        let mut entries = Vec::new();
        let mut channels = Vec::new();
        for (tenant, list, policy) in rows {
            let list = list.as_ref();
            let start = channels.len() as u32;
            channels.extend_from_slice(list);
            entries.push(ReallocEntry {
                tenant: tenant as u32,
                start,
                len: list.len() as u32,
                policy,
            });
        }
        Self {
            at_ns,
            entries,
            channels,
        }
    }

    /// Number of per-tenant rows.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the `(tenant index, channels, policy)` rows in the order
    /// they were given to [`Reallocation::new`].
    pub fn entries(&self) -> impl Iterator<Item = (usize, &[usize], Option<PageAllocPolicy>)> + '_ {
        self.entries.iter().map(move |e| {
            (
                e.tenant as usize,
                &self.channels[e.start as usize..(e.start + e.len) as usize],
                e.policy,
            )
        })
    }
}

/// Errors surfaced by [`Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid hardware configuration.
    Config(ConfigError),
    /// FTL failure during the run (e.g. a plane filled up).
    Ftl(FtlError),
    /// The trace is not sorted by arrival time.
    TraceNotSorted {
        /// Index of the first out-of-order request.
        index: usize,
    },
    /// A request names a tenant outside the layout.
    UnknownTenant {
        /// Index of the offending request.
        index: usize,
        /// The tenant id it carried.
        tenant: u16,
    },
    /// A request has zero pages.
    EmptyRequest {
        /// Index of the offending request.
        index: usize,
    },
    /// The tenants' logical spaces cannot fit the planes they stripe over.
    CapacityExceeded {
        /// Flat plane index that would overflow.
        plane: usize,
        /// Logical pages that map onto the plane.
        required: u64,
        /// Usable physical pages on the plane.
        available: u64,
    },
    /// A scheduled reallocation is invalid (bad tenant or channel list).
    BadReallocation {
        /// Explanation.
        reason: String,
    },
    /// A tenant layout could not be constructed (e.g. a strategy's channel
    /// lists reference channels outside the device).
    BadLayout {
        /// Explanation.
        reason: String,
    },
    /// The command arena ran out of `CmdId`s: more commands were in
    /// flight at once than the id space can name. With slot recycling
    /// this only happens at a forced (test) limit or a truly absurd
    /// in-flight depth — it is a checked error, never a silent wrap.
    CmdIdsExhausted {
        /// The arena's slot limit when it overflowed.
        limit: u32,
    },
    /// The trace holds more requests than the `ReqId` space can name
    /// (the top id is reserved as the internal GC sentinel).
    ReqIdsExhausted {
        /// Largest admissible request count.
        max_requests: u64,
    },
    /// A real-I/O backend operation failed (file open, syscall, short
    /// transfer). Never raised by the simulated backend.
    Io {
        /// The operation that failed (e.g. `"open"`, `"read"`).
        op: &'static str,
        /// OS-level failure description.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Ftl(e) => write!(f, "FTL error: {e}"),
            SimError::TraceNotSorted { index } => {
                write!(f, "trace not sorted by arrival at index {index}")
            }
            SimError::UnknownTenant { index, tenant } => {
                write!(f, "request {index} names unknown tenant {tenant}")
            }
            SimError::EmptyRequest { index } => write!(f, "request {index} has zero pages"),
            SimError::CapacityExceeded {
                plane,
                required,
                available,
            } => write!(
                f,
                "plane {plane} would hold {required} logical pages but only {available} fit"
            ),
            SimError::BadReallocation { reason } => write!(f, "bad reallocation: {reason}"),
            SimError::BadLayout { reason } => write!(f, "bad layout: {reason}"),
            SimError::CmdIdsExhausted { limit } => {
                write!(f, "command arena exhausted: {limit} slots all in flight")
            }
            SimError::ReqIdsExhausted { max_requests } => {
                write!(f, "trace too long: at most {max_requests} requests per run")
            }
            SimError::Io { op, reason } => write!(f, "real-I/O {op} failed: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<FtlError> for SimError {
    fn from(e: FtlError) -> Self {
        SimError::Ftl(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Validates a trace against the engine's admission rules — sorted by
/// arrival, tenants within `tenant_count`, at least one page per
/// request. Shared by every [`crate::backend::Backend`], so simulated
/// and real-I/O replays reject malformed traces with identical errors.
pub fn validate_trace(trace: &[IoRequest], tenant_count: usize) -> Result<(), SimError> {
    let mut prev = 0u64;
    for (i, r) in trace.iter().enumerate() {
        if r.arrival_ns < prev {
            return Err(SimError::TraceNotSorted { index: i });
        }
        prev = r.arrival_ns;
        if r.tenant as usize >= tenant_count {
            return Err(SimError::UnknownTenant {
                index: i,
                tenant: r.tenant,
            });
        }
        if r.size_pages == 0 {
            return Err(SimError::EmptyRequest { index: i });
        }
    }
    Ok(())
}

/// Validates a device description (config + tenant layout) without
/// building a [`Simulator`]: runs the config checks, derives the
/// geometry, and verifies the layout's logical capacity fits. Used by
/// backends that need up-front validation but defer engine construction
/// (e.g. [`crate::backend::SimBackend::new`]).
pub(crate) fn validate_device(cfg: &SsdConfig, layout: &TenantLayout) -> Result<(), SimError> {
    cfg.validate()?;
    let geo = Geometry::new(cfg);
    check_capacity(cfg, &geo, layout, &mut Vec::new())
}

/// Validates one scheduled reallocation against the registration rules
/// every backend enforces: non-decreasing application times, tenants
/// within the layout, constructible channel sets.
pub(crate) fn validate_reallocation(
    realloc: &Reallocation,
    prev_at_ns: Option<u64>,
    tenant_count: usize,
    channels: usize,
) -> Result<(), SimError> {
    if let Some(last) = prev_at_ns {
        if realloc.at_ns < last {
            return Err(SimError::BadReallocation {
                reason: format!(
                    "reallocation at {} scheduled after one at {}",
                    realloc.at_ns, last
                ),
            });
        }
    }
    for (tenant, list, _) in realloc.entries() {
        if tenant >= tenant_count {
            return Err(SimError::BadReallocation {
                reason: format!("tenant {tenant} out of range"),
            });
        }
        if ChannelSet::new(list, channels).is_none() {
            return Err(SimError::BadReallocation {
                reason: format!("invalid channel list {list:?} for tenant {tenant}"),
            });
        }
    }
    Ok(())
}

/// The trace-driven SSD simulator.
///
/// Build one per run: [`Simulator::run`] consumes the instance so that
/// every report corresponds to a device that started empty (plus lazy read
/// seeding). Prefer [`Simulator::builder`] for anything beyond the plain
/// `new` + `run` shape (preconditioning, slot limits, probes).
///
/// The engine is generic over a [`Probe`] sink; the default [`NullProbe`]
/// monomorphizes every hook into nothing, so un-probed runs carry no
/// observability cost. Attach a probe (e.g. `&mut EventRecorder`) via
/// [`SimBuilder::probe`].
#[derive(Debug)]
pub struct Simulator<P: Probe = NullProbe> {
    cfg: SsdConfig,
    geo: Geometry,
    layout: TenantLayout,
    ftl: Ftl,
    units: Vec<DieSched>,
    buses: Vec<BusSched>,
    events: EventQueue,
    cmds: CmdArena,
    reqs: Vec<ReqState>,
    realloc: Vec<Reallocation>,
    next_realloc: usize,
    /// Application time of `realloc[next_realloc]` (`u64::MAX` when none
    /// remain), so the hot loop pays one compare instead of a scan.
    next_realloc_at: u64,
    transfer_ns: u64,
    // Accumulators.
    tenants: Vec<TenantReport>,
    read: LatencyStats,
    write: LatencyStats,
    total: LatencyStats,
    makespan_ns: u64,
    events_processed: u64,
    backlog_scratch: Vec<u32>,
    bus_busy_ns: Vec<u64>,
    /// Per-tenant requests currently dispatched to the device.
    in_flight: Vec<u32>,
    /// Intrusive singly-linked successor table backing the per-tenant
    /// host-side FIFOs: one slot per trace request, `NO_REQ` terminated.
    /// Replaces a `VecDeque` per tenant with one flat buffer.
    host_next: Vec<ReqId>,
    /// Head of each tenant's host-side FIFO (`NO_REQ` when empty).
    hq_head: Vec<ReqId>,
    /// Tail of each tenant's host-side FIFO (`NO_REQ` when empty).
    hq_tail: Vec<ReqId>,
    read_breakdown: LatencyBreakdown,
    write_breakdown: LatencyBreakdown,
    gc_busy_ns: u64,
    // Boxed: ~1.6 KiB of histogram buckets would otherwise sit inline in
    // the hot Simulator struct and measurably slow the event loop.
    phases: Box<PhaseReport>,
    probe: P,
}

/// Fluent construction for [`Simulator`]: config + layout, then optional
/// preconditioning fill, command-slot limit, and probe, then
/// [`SimBuilder::build`]. Replaces the old `Simulator::new` +
/// mutate-then-`run` shape at every call site that needed more than the
/// defaults.
///
/// ```
/// # use flash_sim::{SimBuilder, SsdConfig, TenantLayout};
/// let cfg = SsdConfig::small_test();
/// let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(64);
/// let sim = SimBuilder::new(cfg, layout)
///     .precondition(&[0.5])
///     .build()
///     .unwrap();
/// # let _ = sim;
/// ```
#[derive(Debug)]
pub struct SimBuilder<P: Probe = NullProbe> {
    cfg: SsdConfig,
    layout: TenantLayout,
    fill_fractions: Vec<f64>,
    cmd_slot_limit: Option<u32>,
    probe: P,
}

impl SimBuilder {
    /// Starts a builder with no preconditioning, the full command-id
    /// space, and the zero-cost [`NullProbe`].
    pub fn new(cfg: SsdConfig, layout: TenantLayout) -> Self {
        Self {
            cfg,
            layout,
            fill_fractions: Vec::new(),
            cmd_slot_limit: None,
            probe: NullProbe,
        }
    }
}

impl<P: Probe> SimBuilder<P> {
    /// Preconditions the device at build time: per-tenant fill fractions
    /// as in [`Simulator::precondition`].
    pub fn precondition(mut self, fill_fractions: &[f64]) -> Self {
        self.fill_fractions = fill_fractions.to_vec();
        self
    }

    /// Caps the command arena at `limit` slots (exercises
    /// [`SimError::CmdIdsExhausted`] without 2^32 live commands).
    pub fn cmd_slot_limit(mut self, limit: u32) -> Self {
        self.cmd_slot_limit = Some(limit);
        self
    }

    /// Attaches a probe. Pass `&mut recorder` to keep the recorder after
    /// [`Simulator::run`] consumes the simulator.
    pub fn probe<Q: Probe>(self, probe: Q) -> SimBuilder<Q> {
        SimBuilder {
            cfg: self.cfg,
            layout: self.layout,
            fill_fractions: self.fill_fractions,
            cmd_slot_limit: self.cmd_slot_limit,
            probe,
        }
    }

    /// Decomposes the builder for [`crate::SimBuilder::build_backend`],
    /// which re-assembles the pieces into a backend of the chosen kind.
    pub(crate) fn into_parts(self) -> (SsdConfig, TenantLayout, Vec<f64>, Option<u32>) {
        (
            self.cfg,
            self.layout,
            self.fill_fractions,
            self.cmd_slot_limit,
        )
    }

    /// Validates and constructs the simulator.
    pub fn build(self) -> Result<Simulator<P>, SimError> {
        self.build_with_arena(&mut SimArena::new())
    }

    /// [`SimBuilder::build`] drawing every run-path buffer from `arena`:
    /// buffers recycled from a previous run (see
    /// [`Simulator::run_reclaim`]) are reset in place instead of
    /// reallocated, so warm rebuilds allocate nothing.
    pub fn build_with_arena(self, arena: &mut SimArena) -> Result<Simulator<P>, SimError> {
        let mut sim = Simulator::with_probe_arena(self.cfg, self.layout, self.probe, arena)?;
        if let Some(limit) = self.cmd_slot_limit {
            sim.cmds.slot_limit = limit;
        }
        if !self.fill_fractions.is_empty() {
            sim.precondition(&self.fill_fractions)?;
        }
        Ok(sim)
    }
}

/// Recyclable allocation pool for repeated [`Simulator`] runs.
///
/// A cold [`SimBuilder::build`] allocates the FTL mapping tables, the
/// command arena, the timer wheel, and every queue from scratch;
/// [`SimBuilder::build_with_arena`] instead resets buffers reclaimed from
/// a previous run ([`Simulator::run_reclaim`]) in place, so a warm
/// build + run performs zero heap allocations when the device shape is
/// unchanged (a changed shape transparently rebuilds what no longer
/// fits). Reports can be recycled too via [`SimArena::recycle_report`].
///
/// Reuse never changes results: a simulator built from a used arena is
/// observationally identical to a fresh one — same report, same probe
/// stream, byte for byte.
///
/// ```
/// # use flash_sim::{SimArena, SimBuilder, SsdConfig, TenantLayout};
/// let cfg = SsdConfig::small_test();
/// let mk_layout = || TenantLayout::shared(1, &cfg).with_lpn_space_all(64);
/// let mut arena = SimArena::new();
/// for _ in 0..3 {
///     let sim = SimBuilder::new(cfg.clone(), mk_layout())
///         .build_with_arena(&mut arena)
///         .unwrap();
///     let report = sim.run_reclaim(&[], &mut arena).unwrap();
///     arena.recycle_report(report);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    parts: ArenaParts,
    /// Per-tenant report buffer salvaged by [`SimArena::recycle_report`].
    spare_tenants: Vec<TenantReport>,
    /// Per-channel busy-time buffer salvaged by
    /// [`SimArena::recycle_report`].
    spare_bus_busy: Vec<u64>,
}

/// The simulator's run-path buffers between runs. Every field mirrors a
/// [`Simulator`] field (or build-time scratch) and is reset — never
/// reallocated — when the next build draws from it.
#[derive(Debug, Default)]
struct ArenaParts {
    geo: Option<Geometry>,
    ftl: Option<Ftl>,
    units: Vec<DieSched>,
    buses: Vec<BusSched>,
    // Behind Option so taking it out leaves `None` rather than a default
    // queue — `EventQueue::default()` heap-allocates its wheel head/tail
    // arrays, which would break the zero-warm-allocation contract.
    events: Option<EventQueue>,
    cmds: CmdArena,
    reqs: Vec<ReqState>,
    realloc: Vec<Reallocation>,
    backlog_scratch: Vec<u32>,
    in_flight: Vec<u32>,
    host_next: Vec<ReqId>,
    hq_head: Vec<ReqId>,
    hq_tail: Vec<ReqId>,
    phases: Option<Box<PhaseReport>>,
    /// Build-time scratch for [`check_capacity`]'s per-plane demand.
    capacity_scratch: Vec<u64>,
}

impl SimArena {
    /// Creates an empty arena; the first build from it is a cold build.
    pub fn new() -> Self {
        Self::default()
    }

    /// Salvages a finished report's heap buffers for the next run, so
    /// repeated build/run/report cycles reach a steady state with no
    /// allocation at all. Keeps whichever buffers have the most capacity.
    pub fn recycle_report(&mut self, report: SimReport) {
        let SimReport {
            mut tenants,
            mut bus_busy_ns,
            ..
        } = report;
        tenants.clear();
        if tenants.capacity() > self.spare_tenants.capacity() {
            self.spare_tenants = tenants;
        }
        bus_busy_ns.clear();
        if bus_busy_ns.capacity() > self.spare_bus_busy.capacity() {
            self.spare_bus_busy = bus_busy_ns;
        }
    }

    /// Takes a finished simulator's buffers back into the arena.
    fn reclaim<P: Probe>(&mut self, sim: Simulator<P>) {
        let Simulator {
            geo,
            ftl,
            units,
            buses,
            events,
            cmds,
            reqs,
            realloc,
            mut tenants,
            backlog_scratch,
            mut bus_busy_ns,
            in_flight,
            host_next,
            hq_head,
            hq_tail,
            phases,
            ..
        } = sim;
        self.parts.geo = Some(geo);
        self.parts.ftl = Some(ftl);
        self.parts.units = units;
        self.parts.buses = buses;
        self.parts.events = Some(events);
        self.parts.cmds = cmds;
        self.parts.reqs = reqs;
        self.parts.realloc = realloc;
        self.parts.backlog_scratch = backlog_scratch;
        self.parts.in_flight = in_flight;
        self.parts.host_next = host_next;
        self.parts.hq_head = hq_head;
        self.parts.hq_tail = hq_tail;
        self.parts.phases = Some(phases);
        // The report build stole these via mem::take when the run
        // completed; after an error they still hold capacity worth keeping.
        tenants.clear();
        if tenants.capacity() > self.spare_tenants.capacity() {
            self.spare_tenants = tenants;
        }
        bus_busy_ns.clear();
        if bus_busy_ns.capacity() > self.spare_bus_busy.capacity() {
            self.spare_bus_busy = bus_busy_ns;
        }
    }
}

impl Simulator {
    /// Creates a simulator for `cfg` and the initial tenant `layout`.
    ///
    /// Fails when the configuration is invalid or when the tenants'
    /// logical spaces would statically overflow the planes they stripe
    /// over (see [`SimError::CapacityExceeded`]).
    pub fn new(cfg: SsdConfig, layout: TenantLayout) -> Result<Self, SimError> {
        Self::with_probe(cfg, layout, NullProbe)
    }

    /// Starts a [`SimBuilder`] for `cfg` and `layout`.
    pub fn builder(cfg: SsdConfig, layout: TenantLayout) -> SimBuilder {
        SimBuilder::new(cfg, layout)
    }
}

impl<P: Probe> Simulator<P> {
    /// Creates a simulator with an attached probe; see [`Simulator::new`]
    /// for the validation performed.
    pub fn with_probe(cfg: SsdConfig, layout: TenantLayout, probe: P) -> Result<Self, SimError> {
        Self::with_probe_arena(cfg, layout, probe, &mut SimArena::new())
    }

    /// [`Simulator::with_probe`] drawing every run-path buffer from
    /// `arena` (see [`SimArena`]). Buffers whose shape still matches the
    /// configuration are reset in place; the rest are rebuilt.
    pub fn with_probe_arena(
        cfg: SsdConfig,
        layout: TenantLayout,
        probe: P,
        arena: &mut SimArena,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        // Reuse the previous run's geometry when the dimensions match, so
        // the warm path skips rebuilding its coordinate tables.
        let geo = match arena.parts.geo.take() {
            Some(g) if g.matches(&cfg) => g,
            _ => Geometry::new(&cfg),
        };
        {
            // Validation runs before any buffer leaves the arena, so an
            // error here cannot strand its contents. The demand scratch
            // stays inside the arena: it is build-time-only state.
            let scratch = &mut arena.parts.capacity_scratch;
            check_capacity(&cfg, &geo, &layout, scratch)?;
        }
        let p = &mut arena.parts;
        let ftl = match p.ftl.take() {
            Some(mut f) => {
                if f.reset(&cfg, &layout) {
                    f
                } else {
                    Ftl::new(&cfg, &layout)
                }
            }
            None => Ftl::new(&cfg, &layout),
        };
        let tenant_count = layout.tenant_count();
        let unit_count = if cfg.plane_parallelism {
            geo.total_planes()
        } else {
            geo.total_dies()
        };
        let mut units = std::mem::take(&mut p.units);
        for d in &mut units {
            d.reset();
        }
        units.resize_with(unit_count, DieSched::default);
        let mut buses = std::mem::take(&mut p.buses);
        for b in &mut buses {
            b.reset();
        }
        buses.resize_with(geo.channels(), BusSched::default);
        let events = match p.events.take() {
            Some(mut e) => {
                e.reset();
                e
            }
            None => EventQueue::default(),
        };
        let mut cmds = std::mem::take(&mut p.cmds);
        cmds.reset();
        let mut reqs = std::mem::take(&mut p.reqs);
        reqs.clear();
        let mut realloc = std::mem::take(&mut p.realloc);
        realloc.clear();
        let mut backlog_scratch = std::mem::take(&mut p.backlog_scratch);
        backlog_scratch.clear();
        backlog_scratch.resize(geo.total_planes(), 0);
        let mut in_flight = std::mem::take(&mut p.in_flight);
        in_flight.clear();
        in_flight.resize(tenant_count, 0);
        let mut host_next = std::mem::take(&mut p.host_next);
        host_next.clear();
        let mut hq_head = std::mem::take(&mut p.hq_head);
        hq_head.clear();
        hq_head.resize(tenant_count, NO_REQ);
        let mut hq_tail = std::mem::take(&mut p.hq_tail);
        hq_tail.clear();
        hq_tail.resize(tenant_count, NO_REQ);
        let mut phases = p.phases.take().unwrap_or_default();
        *phases = PhaseReport::default();
        let mut tenants = std::mem::take(&mut arena.spare_tenants);
        tenants.clear();
        tenants.resize(tenant_count, TenantReport::default());
        let mut bus_busy_ns = std::mem::take(&mut arena.spare_bus_busy);
        bus_busy_ns.clear();
        bus_busy_ns.resize(geo.channels(), 0);
        let transfer_ns = cfg.page_transfer_ns();
        Ok(Self {
            units,
            buses,
            events,
            cmds,
            reqs,
            realloc,
            next_realloc: 0,
            next_realloc_at: u64::MAX,
            transfer_ns,
            tenants,
            read: LatencyStats::new(),
            write: LatencyStats::new(),
            total: LatencyStats::new(),
            makespan_ns: 0,
            events_processed: 0,
            backlog_scratch,
            bus_busy_ns,
            in_flight,
            host_next,
            hq_head,
            hq_tail,
            read_breakdown: LatencyBreakdown::default(),
            write_breakdown: LatencyBreakdown::default(),
            gc_busy_ns: 0,
            phases,
            probe,
            cfg,
            geo,
            layout,
            ftl,
        })
    }

    /// Schedules a channel/policy re-allocation to apply at `at_ns`.
    ///
    /// Multiple reallocations may be scheduled; they must be registered in
    /// non-decreasing time order.
    pub fn schedule_reallocation(&mut self, realloc: Reallocation) -> Result<(), SimError> {
        validate_reallocation(
            &realloc,
            self.realloc.last().map(|r| r.at_ns),
            self.layout.tenant_count(),
            self.cfg.channels,
        )?;
        self.realloc.push(realloc);
        Ok(())
    }

    /// Caps the command arena (see [`SimBuilder::cmd_slot_limit`]).
    pub(crate) fn set_cmd_slot_limit(&mut self, limit: u32) {
        self.cmds.slot_limit = limit;
    }

    /// Preconditions the device: marks the first `fill_fraction` of each
    /// tenant's logical space as already written (statically striped,
    /// zero simulated time), so the measured run starts from a filled
    /// device instead of a factory-fresh one — standard SSD evaluation
    /// methodology. Preconditioned pages appear in
    /// [`crate::ftl::FtlStats::seeded_pages`].
    ///
    /// Call before [`Simulator::run`]. Fractions are clamped to `[0, 1]`.
    pub fn precondition(&mut self, fill_fractions: &[f64]) -> Result<(), SimError> {
        for (tenant, &frac) in fill_fractions.iter().enumerate() {
            if tenant >= self.layout.tenant_count() {
                break;
            }
            let space = self.layout.tenant(tenant).lpn_space;
            let fill = ((space as f64) * frac.clamp(0.0, 1.0)) as u64;
            for lpn in 0..fill {
                self.ftl.translate_read(tenant as u16, lpn, &self.layout)?;
            }
        }
        Ok(())
    }

    /// Runs the trace to completion and returns the report.
    ///
    /// Requirements on the trace: sorted by `arrival_ns`, tenant ids within
    /// the layout, and `size_pages >= 1` everywhere.
    pub fn run(mut self, trace: &[IoRequest]) -> Result<SimReport, SimError> {
        self.run_inner(trace)
    }

    /// [`Simulator::run`], then returns the simulator's buffers to
    /// `arena` for the next [`SimBuilder::build_with_arena`]. Reclaims on
    /// error exits too, so a failed run still recycles its allocations.
    pub fn run_reclaim(
        mut self,
        trace: &[IoRequest],
        arena: &mut SimArena,
    ) -> Result<SimReport, SimError> {
        let result = self.run_inner(trace);
        arena.reclaim(self);
        result
    }

    fn run_inner(&mut self, trace: &[IoRequest]) -> Result<SimReport, SimError> {
        // The top ReqId is the internal GC sentinel; request ids must stay
        // strictly below it.
        if trace.len() > NO_REQ as usize {
            return Err(SimError::ReqIdsExhausted {
                max_requests: NO_REQ as u64,
            });
        }
        self.validate_trace(trace)?;
        self.reqs.clear();
        self.reqs.extend(trace.iter().map(|r| ReqState {
            arrival_ns: r.arrival_ns,
            remaining: r.size_pages,
            tenant: r.tenant,
            op: r.op,
        }));
        // One FIFO-successor slot per request (see `host_next`).
        self.host_next.clear();
        self.host_next.resize(trace.len(), NO_REQ);
        self.next_realloc_at = self.realloc.first().map_or(u64::MAX, |r| r.at_ns);

        // Arrivals are never heaped: the validated-sorted trace is its own
        // queue, and a cursor over it merges against the wheel at pop time,
        // keeping the pending set at O(in-flight) instead of O(trace).
        // Arrivals win time ties (`pop_before` is exclusive) and order among
        // themselves by trace index — exactly the order their up-front
        // sequence numbers 0..n-1 produced in the heap-based engine, where
        // every dynamic event's seq was >= n.
        let mut next_arrival: usize = 0;
        // Host-side telemetry tallies, kept in locals and flushed to the
        // obs registry after the loop (plus a periodic flush so a live
        // monitor sees progress). Every touch is gated on the
        // compile-time `obs::ENABLED` const, so the disabled build is
        // bit-for-bit the uninstrumented loop.
        obs::span!("sim_run");
        let mut tel_wheel_pops: u64 = 0;
        let mut tel_wheel_advances: u64 = 0;
        let mut tel_arrivals: u64 = 0;
        loop {
            let (time, kind) = if next_arrival < trace.len() {
                let at = trace[next_arrival].arrival_ns;
                match self.events.pop_before(at) {
                    Some(ev) => {
                        if obs::ENABLED {
                            tel_wheel_pops += 1;
                        }
                        (ev.time, ev.kind)
                    }
                    None => {
                        self.events.advance_to(at);
                        let r = next_arrival as ReqId;
                        next_arrival += 1;
                        if obs::ENABLED {
                            tel_wheel_advances += 1;
                            tel_arrivals += 1;
                        }
                        (at, EventKind::Arrive(r))
                    }
                }
            } else {
                match self.events.pop() {
                    Some(ev) => {
                        if obs::ENABLED {
                            tel_wheel_pops += 1;
                        }
                        (ev.time, ev.kind)
                    }
                    None => break,
                }
            };
            self.events_processed += 1;
            if obs::ENABLED && self.events_processed & 0xFFFF == 0 {
                obs::counter_add!("sim.events", 0x1_0000u64);
            }
            if time >= self.next_realloc_at {
                self.apply_reallocations(time);
            }
            match kind {
                EventKind::Arrive(r) => {
                    let tenant = trace[r as usize].tenant as usize;
                    let qd = self.cfg.host_queue_depth;
                    if qd > 0 && self.in_flight[tenant] >= qd {
                        self.host_enqueue(tenant, r);
                    } else {
                        self.in_flight[tenant] += 1;
                        self.on_arrive(r, trace, time)?;
                    }
                }
                EventKind::Admit(r) => self.on_arrive(r, trace, time)?,
                EventKind::DieOpDone(c) => self.on_die_done(c, time),
                EventKind::BusDone(c) => self.on_bus_done(c, time),
            }
        }

        debug_assert!(self.units.iter().all(|d| !d.busy && d.queue.is_empty()));
        debug_assert!(self.buses.iter().all(|b| !b.busy && b.queue.is_empty()));

        if obs::ENABLED {
            obs::counter_add!("sim.events", self.events_processed & 0xFFFF);
            obs::counter_add!("sim.wheel_pops", tel_wheel_pops);
            obs::counter_add!("sim.wheel_advances", tel_wheel_advances);
            obs::counter_add!("sim.arrivals", tel_arrivals);
            obs::counter_add!("sim.runs", 1u64);
        }

        Ok(SimReport {
            tenants: std::mem::take(&mut self.tenants),
            read: std::mem::take(&mut self.read),
            write: std::mem::take(&mut self.write),
            total: std::mem::take(&mut self.total),
            ftl: self.ftl.stats(),
            wear: wear_summary(&self.ftl),
            makespan_ns: self.makespan_ns,
            events_processed: self.events_processed,
            bus_busy_ns: std::mem::take(&mut self.bus_busy_ns),
            read_breakdown: self.read_breakdown,
            write_breakdown: self.write_breakdown,
            gc_busy_ns: self.gc_busy_ns,
            phases: std::mem::take(&mut *self.phases),
        })
    }

    fn validate_trace(&self, trace: &[IoRequest]) -> Result<(), SimError> {
        validate_trace(trace, self.layout.tenant_count())
    }

    fn apply_reallocations(&mut self, now: u64) {
        while self.next_realloc < self.realloc.len() && self.realloc[self.next_realloc].at_ns <= now
        {
            // The flat span table is read in place — applying an entry
            // only copies channel indices into the tenant's ChannelSet,
            // never clones a per-entry list.
            let realloc = &self.realloc[self.next_realloc];
            let at_ns = realloc.at_ns;
            for (tenant, channels, policy) in realloc.entries() {
                let state = self.layout.tenant_mut(tenant);
                state.channels = ChannelSet::new(channels, self.cfg.channels)
                    .expect("validated in schedule_reallocation");
                if let Some(p) = policy {
                    state.policy = p;
                }
                let mut channel_mask = 0u64;
                for &ch in state.channels.channels() {
                    channel_mask |= 1u64 << ch;
                }
                self.probe.on_realloc(&ReallocApply {
                    at_ns,
                    tenant: tenant as u16,
                    policy: match policy {
                        None => 0,
                        Some(PageAllocPolicy::Static) => 1,
                        Some(PageAllocPolicy::Dynamic) => 2,
                    },
                    channel_mask,
                });
                obs::counter_add!("sim.reallocs_applied", 1u64);
            }
            self.next_realloc += 1;
        }
        self.next_realloc_at = self
            .realloc
            .get(self.next_realloc)
            .map_or(u64::MAX, |r| r.at_ns);
    }

    /// Execution unit of a flat plane index.
    fn unit_of_plane(&self, plane: usize) -> usize {
        if self.cfg.plane_parallelism {
            plane
        } else {
            self.geo.die_of_plane(plane)
        }
    }

    /// Fills `backlog_scratch` with a per-plane view of unit backlogs for
    /// the dynamic allocator.
    fn fill_plane_backlogs(&mut self) {
        if self.cfg.plane_parallelism {
            for (i, u) in self.units.iter().enumerate() {
                self.backlog_scratch[i] = u.backlog;
            }
        } else {
            for plane in 0..self.backlog_scratch.len() {
                self.backlog_scratch[plane] = self.units[self.geo.die_of_plane(plane)].backlog;
            }
        }
    }

    fn on_arrive(&mut self, req: ReqId, trace: &[IoRequest], now: u64) -> Result<(), SimError> {
        let io = trace[req as usize];
        match io.op {
            Op::Read => {
                for lpn in io.pages() {
                    let addr = self.ftl.translate_read(io.tenant, lpn, &self.layout)?;
                    let unit = self.unit_of_plane(self.geo.plane_index(&addr)) as u32;
                    let channel = addr.channel;
                    self.spawn_cmd(
                        req,
                        io.tenant,
                        CmdClass::Read,
                        unit,
                        channel,
                        Phase::ArrayRead,
                        0,
                        now,
                    )?;
                }
            }
            Op::Write => {
                for lpn in io.pages() {
                    let tenant_state = self.layout.tenant(io.tenant as usize);
                    // Reduce into the tenant's logical space once; plane
                    // selection and the FTL write below share the result.
                    let lpn = lpn % tenant_state.lpn_space;
                    let plane = match tenant_state.policy {
                        PageAllocPolicy::Static => {
                            alloc::static_plane(&self.geo, tenant_state, lpn)
                        }
                        PageAllocPolicy::Dynamic => {
                            self.fill_plane_backlogs();
                            let tenant_state = self.layout.tenant(io.tenant as usize);
                            let ftl = &self.ftl;
                            alloc::dynamic_plane(
                                &self.geo,
                                tenant_state,
                                &self.backlog_scratch,
                                |p| ftl.plane_free_pages(p),
                            )
                        }
                    };
                    let outcome = self.ftl.write_in_space(io.tenant, lpn, plane)?;
                    let unit = self.unit_of_plane(self.geo.plane_index(&outcome.addr)) as u32;
                    let channel = outcome.addr.channel;
                    self.spawn_cmd(
                        req,
                        io.tenant,
                        CmdClass::Write,
                        unit,
                        channel,
                        Phase::WaitBusWrite,
                        0,
                        now,
                    )?;
                    if let Some(gc) = outcome.gc {
                        let gc_unit = self.unit_of_plane(gc.plane) as u32;
                        let gc_channel = self.geo.channel_of_plane(gc.plane) as u16;
                        self.probe.on_gc_collect(&GcCollect {
                            at_ns: now,
                            plane: gc.plane as u32,
                            victim_block: gc.victim_block,
                            moved_pages: gc.moved_pages,
                            erased_blocks: gc.erased_blocks,
                            duration_ns: gc.duration_ns,
                        });
                        obs::counter_add!("sim.gc_passes", 1u64);
                        obs::counter_add!("sim.gc_moved_pages", gc.moved_pages as u64);
                        self.spawn_cmd(
                            NO_REQ,
                            io.tenant,
                            CmdClass::Write,
                            gc_unit,
                            gc_channel,
                            Phase::GcExec,
                            gc.duration_ns,
                            now,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Creates a command and enqueues it on its execution unit.
    ///
    /// Slots of retired commands are recycled first; the arena only grows
    /// when the in-flight depth exceeds every depth seen so far, and a
    /// depth beyond `cmd_slot_limit` is a checked error.
    #[allow(clippy::too_many_arguments)]
    fn spawn_cmd(
        &mut self,
        req: ReqId,
        tenant: u16,
        class: CmdClass,
        unit: u32,
        channel: u16,
        initial_phase: Phase,
        gc_duration_ns: u64,
        now: u64,
    ) -> Result<(), SimError> {
        obs::counter_add!("sim.cmds_issued", 1u64);
        let id = self.cmds.alloc(
            CmdMeta {
                unit,
                channel,
                class,
                phase: initial_phase,
            },
            CmdTimes {
                t_spawn: now,
                t_mark: now,
            },
            CmdCold {
                req,
                tenant,
                gc_duration_ns,
            },
        )?;
        let d = &mut self.units[unit as usize];
        d.backlog += 1;
        // Uncontended fast path: an idle unit with an empty queue starts
        // the command without the queue round trip. `push_pop_empty` keeps
        // the scheduler's sequence/bypass state exactly as push + pop
        // would, and the probe/record order below is unchanged.
        let fast_start = !d.busy && d.queue.is_empty();
        if fast_start {
            d.queue.push_pop_empty(id, class, self.cfg.sched_policy);
        } else {
            d.queue.push(id, class);
        }
        let queue_depth = d.backlog;
        self.phases.queue_depth.record(queue_depth as u64);
        self.probe.on_cmd_issue(&CmdIssue {
            at_ns: now,
            cmd: id,
            tenant,
            class,
            gc: req == NO_REQ,
            unit,
            channel,
            queue_depth,
        });
        if fast_start {
            self.start_die_cmd(unit as usize, id, now);
        } else {
            self.try_start_die(unit as usize, now);
        }
        Ok(())
    }

    /// Caps the command arena at `limit` slots (test hook for exercising
    /// [`SimError::CmdIdsExhausted`] without 2^32 live commands).
    #[doc(hidden)]
    #[deprecated(note = "use SimBuilder::cmd_slot_limit")]
    pub fn limit_cmd_slots(&mut self, limit: u32) {
        self.cmds.slot_limit = limit;
    }

    /// If the unit is idle, pops its next command and starts its first
    /// unit-holding phase.
    #[inline]
    fn try_start_die(&mut self, unit: usize, now: u64) {
        if self.units[unit].busy {
            return;
        }
        let Some(cmd_id) = self.units[unit].queue.pop(self.cfg.sched_policy) else {
            return;
        };
        self.start_die_cmd(unit, cmd_id, now);
    }

    /// Marks the unit busy and starts `cmd_id`'s first unit-holding phase.
    /// The command must already be dequeued (or fast-path bypassed).
    #[inline]
    fn start_die_cmd(&mut self, unit: usize, cmd_id: CmdId, now: u64) {
        self.units[unit].busy = true;
        // Close the unit-queue phase and open the next one. GC commands
        // are identified by phase alone — they spawn in `GcExec` and never
        // leave it — so the dispatch below stays off the cold table except
        // for the GC duration itself.
        let meta = self.cmds.meta[cmd_id as usize];
        let waited = {
            let t = &mut self.cmds.times[cmd_id as usize];
            let waited = now - t.t_spawn;
            t.t_mark = now;
            waited
        };
        match meta.phase {
            Phase::ArrayRead => {
                self.breakdown_mut(meta.class).wait_unit_ns += waited;
                self.phases.wait_unit.record(waited);
                self.events
                    .push(now + self.cfg.read_latency_ns, EventKind::DieOpDone(cmd_id));
            }
            Phase::WaitBusWrite => {
                self.breakdown_mut(meta.class).wait_unit_ns += waited;
                self.phases.wait_unit.record(waited);
                self.request_bus(cmd_id, now);
            }
            Phase::GcExec => {
                let gc_ns = self.cmds.cold[cmd_id as usize].gc_duration_ns;
                self.events.push(now + gc_ns, EventKind::DieOpDone(cmd_id));
            }
            other => unreachable!("command started on die in phase {other:?}"),
        }
    }

    #[inline]
    fn breakdown_mut(&mut self, class: CmdClass) -> &mut LatencyBreakdown {
        match class {
            CmdClass::Read => &mut self.read_breakdown,
            CmdClass::Write => &mut self.write_breakdown,
        }
    }

    /// Requests the channel bus for a command that holds its die; starts
    /// the transfer immediately when the bus is idle, otherwise queues.
    fn request_bus(&mut self, cmd_id: CmdId, now: u64) {
        let meta = self.cmds.meta[cmd_id as usize];
        let bus = &mut self.buses[meta.channel as usize];
        if bus.busy {
            bus.queue.push(cmd_id, meta.class);
        } else {
            bus.busy = true;
            self.start_transfer(cmd_id, now);
        }
    }

    #[inline]
    fn start_transfer(&mut self, cmd_id: CmdId, now: u64) {
        let (class, channel) = {
            let meta = &mut self.cmds.meta[cmd_id as usize];
            meta.phase = match meta.phase {
                Phase::WaitBusRead | Phase::ArrayRead => Phase::XferRead,
                Phase::WaitBusWrite => Phase::XferWrite,
                other => unreachable!("transfer started in phase {other:?}"),
            };
            (meta.class, meta.channel)
        };
        let waited_for_bus = {
            let t = &mut self.cmds.times[cmd_id as usize];
            let waited = now - t.t_mark;
            t.t_mark = now;
            waited
        };
        self.bus_busy_ns[channel as usize] += self.transfer_ns;
        {
            let transfer_ns = self.transfer_ns;
            let b = self.breakdown_mut(class);
            b.wait_bus_ns += waited_for_bus;
            b.transfer_ns += transfer_ns;
        }
        self.phases.wait_bus.record(waited_for_bus);
        self.phases.transfer.record(self.transfer_ns);
        self.probe.on_bus_acquire(&BusAcquire {
            at_ns: now,
            cmd: cmd_id,
            channel,
            waited_ns: waited_for_bus,
        });
        obs::counter_add!("sim.bus_transfers", 1u64);
        self.events
            .push(now + self.transfer_ns, EventKind::BusDone(cmd_id));
    }

    #[inline]
    fn on_die_done(&mut self, cmd_id: CmdId, now: u64) {
        obs::counter_add!("sim.die_ops", 1u64);
        let phase = self.cmds.meta[cmd_id as usize].phase;
        match phase {
            Phase::ArrayRead => {
                let elapsed = {
                    let t = &mut self.cmds.times[cmd_id as usize];
                    let elapsed = now - t.t_mark;
                    t.t_mark = now;
                    elapsed
                };
                self.cmds.meta[cmd_id as usize].phase = Phase::WaitBusRead;
                self.read_breakdown.array_ns += elapsed;
                self.read_breakdown.cmds += 1;
                self.phases.array.record(elapsed);
                self.request_bus(cmd_id, now);
            }
            Phase::Program => {
                let elapsed = now - self.cmds.times[cmd_id as usize].t_mark;
                self.write_breakdown.array_ns += elapsed;
                self.write_breakdown.cmds += 1;
                self.phases.array.record(elapsed);
                self.complete_cmd(cmd_id, now);
                let unit = self.cmds.meta[cmd_id as usize].unit as usize;
                self.release_die(unit, now);
                self.cmds.free(cmd_id);
            }
            Phase::GcExec => {
                let gc_ns = self.cmds.cold[cmd_id as usize].gc_duration_ns;
                self.gc_busy_ns += gc_ns;
                self.phases.gc_exec.record(gc_ns);
                self.complete_cmd(cmd_id, now);
                let unit = self.cmds.meta[cmd_id as usize].unit as usize;
                self.release_die(unit, now);
                self.cmds.free(cmd_id);
            }
            other => unreachable!("DieOpDone in phase {other:?}"),
        }
    }

    #[inline]
    fn on_bus_done(&mut self, cmd_id: CmdId, now: u64) {
        // Free the bus and hand it to the next waiter first, so bus
        // utilization is back-to-back.
        let channel = self.cmds.meta[cmd_id as usize].channel as usize;
        self.probe.on_bus_release(&BusRelease {
            at_ns: now,
            cmd: cmd_id,
            channel: channel as u16,
            held_ns: self.transfer_ns,
        });
        self.buses[channel].busy = false;
        if let Some(next) = self.buses[channel].queue.pop(self.cfg.sched_policy) {
            self.buses[channel].busy = true;
            self.start_transfer(next, now);
        }

        let phase = self.cmds.meta[cmd_id as usize].phase;
        match phase {
            Phase::XferRead => {
                self.complete_cmd(cmd_id, now);
                let unit = self.cmds.meta[cmd_id as usize].unit as usize;
                self.release_die(unit, now);
                self.cmds.free(cmd_id);
            }
            Phase::XferWrite => {
                self.cmds.meta[cmd_id as usize].phase = Phase::Program;
                self.cmds.times[cmd_id as usize].t_mark = now;
                self.events.push(
                    now + self.cfg.write_latency_ns,
                    EventKind::DieOpDone(cmd_id),
                );
            }
            other => unreachable!("BusDone in phase {other:?}"),
        }
    }

    fn release_die(&mut self, unit: usize, now: u64) {
        let d = &mut self.units[unit];
        debug_assert!(d.busy);
        d.busy = false;
        debug_assert!(d.backlog > 0);
        d.backlog -= 1;
        self.try_start_die(unit, now);
    }

    #[inline]
    fn complete_cmd(&mut self, cmd_id: CmdId, now: u64) {
        obs::counter_add!("sim.cmds_completed", 1u64);
        self.makespan_ns = self.makespan_ns.max(now);
        let meta = self.cmds.meta[cmd_id as usize];
        let cold = self.cmds.cold[cmd_id as usize];
        let req = cold.req;
        self.probe.on_cmd_complete(&CmdComplete {
            at_ns: now,
            cmd: cmd_id,
            tenant: cold.tenant,
            class: meta.class,
            gc: req == NO_REQ,
            unit: meta.unit,
            channel: meta.channel,
            latency_ns: now - self.cmds.times[cmd_id as usize].t_spawn,
        });
        if req == NO_REQ {
            return; // internal GC op
        }
        let state = &mut self.reqs[req as usize];
        debug_assert!(state.remaining > 0);
        state.remaining -= 1;
        if state.remaining == 0 {
            let latency = now - state.arrival_ns;
            let tenant = state.tenant as usize;
            let op = state.op;
            match op {
                Op::Read => {
                    self.tenants[tenant].read.record(latency);
                    self.read.record(latency);
                }
                Op::Write => {
                    self.tenants[tenant].write.record(latency);
                    self.write.record(latency);
                }
            }
            self.total.record(latency);
            // Free the tenant's queue slot; admit the next host-queued
            // request at the current time (its measured latency still
            // starts at its original arrival).
            if self.cfg.host_queue_depth > 0 {
                debug_assert!(self.in_flight[tenant] > 0);
                self.in_flight[tenant] -= 1;
                if let Some(next) = self.host_dequeue(tenant) {
                    self.in_flight[tenant] += 1;
                    self.events.push(now, EventKind::Admit(next));
                }
            }
        }
    }

    /// Appends `r` to `tenant`'s host-side FIFO. The FIFOs are intrusive
    /// singly-linked lists threaded through `host_next` (one slot per
    /// trace request), so every tenant queues in the same flat buffer.
    #[inline]
    fn host_enqueue(&mut self, tenant: usize, r: ReqId) {
        self.host_next[r as usize] = NO_REQ;
        let tail = self.hq_tail[tenant];
        if tail == NO_REQ {
            self.hq_head[tenant] = r;
        } else {
            self.host_next[tail as usize] = r;
        }
        self.hq_tail[tenant] = r;
    }

    /// Pops the front of `tenant`'s host-side FIFO, if any.
    #[inline]
    fn host_dequeue(&mut self, tenant: usize) -> Option<ReqId> {
        let head = self.hq_head[tenant];
        if head == NO_REQ {
            return None;
        }
        let next = self.host_next[head as usize];
        self.hq_head[tenant] = next;
        if next == NO_REQ {
            self.hq_tail[tenant] = NO_REQ;
        }
        Some(head)
    }
}

/// Rejects layouts whose static logical footprint overflows any plane.
///
/// For each tenant, its `lpn_space` spreads evenly over the planes its
/// channel set covers; each plane must keep at least two spare blocks so GC
/// can make progress.
fn check_capacity(
    cfg: &SsdConfig,
    geo: &Geometry,
    layout: &TenantLayout,
    demand: &mut Vec<u64>,
) -> Result<(), SimError> {
    let pages_per_plane = geo.pages_per_plane() as u64;
    let spare = 2 * cfg.pages_per_block as u64;
    let available = pages_per_plane.saturating_sub(spare);
    // `demand` is caller-provided scratch (see `ArenaParts`) so warm
    // rebuilds validate without allocating.
    demand.clear();
    demand.resize(geo.total_planes(), 0);
    for t in layout.iter() {
        let planes_covered =
            (t.channels.len() * geo.dies_per_channel() * geo.planes_per_die()) as u64;
        let per_plane = t.lpn_space.div_ceil(planes_covered);
        for &ch in t.channels.channels() {
            for die in geo.dies_of_channel(ch as usize) {
                for plane in geo.planes_of_die(die) {
                    demand[plane] += per_plane;
                }
            }
        }
    }
    for (plane, &required) in demand.iter().enumerate() {
        if required > available {
            return Err(SimError::CapacityExceeded {
                plane,
                required,
                available,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::US;

    fn small_cfg() -> SsdConfig {
        SsdConfig {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 16,
            ..SsdConfig::small_test()
        }
    }

    fn one_tenant_sim() -> Simulator {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        Simulator::new(cfg, layout).unwrap()
    }

    #[test]
    fn single_write_latency_is_transfer_plus_program() {
        let sim = one_tenant_sim();
        let trace = vec![IoRequest::new(0, 0, Op::Write, 0, 1, 0)];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.write.count, 1);
        // 16 KB over 800 MB/s = 20480 ns, + 200 µs program.
        assert_eq!(report.write.min_ns, 20_480 + 200 * US);
    }

    #[test]
    fn single_read_latency_is_array_plus_transfer() {
        let sim = one_tenant_sim();
        let trace = vec![IoRequest::new(0, 0, Op::Read, 0, 1, 0)];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.read.count, 1);
        assert_eq!(report.read.min_ns, 20 * US + 20_480);
        assert_eq!(report.ftl.seeded_pages, 1, "read of unwritten LPN seeds");
    }

    #[test]
    fn sequential_multi_page_read_uses_channel_parallelism() {
        // Two pages striped to two different channels: latency should be
        // one array read + one transfer (both channels work concurrently),
        // not two serialized commands.
        let sim = one_tenant_sim();
        let trace = vec![IoRequest::new(0, 0, Op::Read, 0, 2, 0)];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.read.max_ns, 20 * US + 20_480);
    }

    #[test]
    fn same_die_reads_serialize_on_the_array() {
        // Pages 0 and 2 map to channel 0 (stripe 0 and 2 with 2 channels),
        // same die: the second read waits for the first array op.
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Read, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 2, 1, 0),
        ];
        let report = sim.run(&trace).unwrap();
        // First: 20 µs + transfer. Second: waits die until first releases it
        // after transfer (die held through transfer), then its own 20 µs +
        // transfer.
        let t_xfer = 20_480u64;
        let first = 20 * US + t_xfer;
        assert_eq!(report.read.min_ns, first);
        assert_eq!(report.read.max_ns, first + 20 * US + t_xfer);
    }

    #[test]
    fn different_die_reads_overlap() {
        let sim = one_tenant_sim();
        // Pages 0 and 1 stripe to channels 0 and 1 — different dies & buses.
        let trace = vec![
            IoRequest::new(0, 0, Op::Read, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 1, 1, 0),
        ];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.read.min_ns, report.read.max_ns, "fully parallel");
    }

    #[test]
    fn write_blocks_subsequent_read_on_same_die() {
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 0, 1, 1),
        ];
        let report = sim.run(&trace).unwrap();
        let t_xfer = 20_480u64;
        // Write occupies the die for transfer + program; the read then runs.
        let write_done = t_xfer + 200 * US;
        assert_eq!(report.read.max_ns, (write_done - 1) + 20 * US + t_xfer);
    }

    #[test]
    fn read_bypasses_queued_write() {
        // Both target die 0. Write arrives first but read (arriving while
        // die is still busy with an earlier op) is queued ahead of it.
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0), // occupies die
            IoRequest::new(1, 0, Op::Write, 2, 1, 1), // queued write, same die
            IoRequest::new(2, 0, Op::Read, 2, 1, 2),  // queued read, same die
        ];
        let report = sim.run(&trace).unwrap();
        // The read must finish before the second write.
        assert!(report.read.max_ns + 2 < report.write.max_ns + 1);
    }

    #[test]
    fn trace_must_be_sorted() {
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Read, 0, 1, 100),
            IoRequest::new(1, 0, Op::Read, 0, 1, 50),
        ];
        assert_eq!(
            sim.run(&trace).unwrap_err(),
            SimError::TraceNotSorted { index: 1 }
        );
    }

    #[test]
    fn unknown_tenant_rejected() {
        let sim = one_tenant_sim();
        let trace = vec![IoRequest::new(0, 9, Op::Read, 0, 1, 0)];
        assert_eq!(
            sim.run(&trace).unwrap_err(),
            SimError::UnknownTenant {
                index: 0,
                tenant: 9
            }
        );
    }

    #[test]
    fn empty_request_rejected() {
        let sim = one_tenant_sim();
        let trace = vec![IoRequest::new(0, 0, Op::Read, 0, 0, 0)];
        assert_eq!(
            sim.run(&trace).unwrap_err(),
            SimError::EmptyRequest { index: 0 }
        );
    }

    #[test]
    fn empty_trace_gives_empty_report() {
        let sim = one_tenant_sim();
        let report = sim.run(&[]).unwrap();
        assert_eq!(report.total.count, 0);
        assert_eq!(report.makespan_ns, 0);
    }

    #[test]
    fn capacity_check_rejects_oversized_tenants() {
        let cfg = small_cfg(); // 64 blocks * 16 pages = 1024 pages/plane
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(1 << 20);
        match Simulator::new(cfg, layout) {
            Err(SimError::CapacityExceeded { .. }) => {}
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }

    #[test]
    fn determinism_same_trace_same_report() {
        let cfg = small_cfg();
        let mk = || {
            let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(256);
            Simulator::new(cfg.clone(), layout).unwrap()
        };
        let trace: Vec<IoRequest> = (0..200)
            .map(|i| {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                IoRequest::new(
                    i,
                    (i % 2) as u16,
                    op,
                    (i * 7) % 256,
                    1 + (i % 3) as u32,
                    i * 5_000,
                )
            })
            .collect();
        let a = mk().run(&trace).unwrap();
        let b = mk().run(&trace).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_tenants_do_not_interfere() {
        let cfg = small_cfg();
        let layout = TenantLayout::isolated(2, &cfg).with_lpn_space_all(128);
        let sim = Simulator::new(cfg.clone(), layout).unwrap();
        // Tenant 0 writes heavily on its channel; tenant 1 reads on its own.
        let mut trace = Vec::new();
        let mut id = 0;
        for i in 0..50u64 {
            trace.push(IoRequest::new(id, 0, Op::Write, i % 64, 1, i * 100_000));
            id += 1;
            trace.push(IoRequest::new(id, 1, Op::Read, i % 64, 1, i * 100_000));
            id += 1;
        }
        trace.sort_by_key(|r| r.arrival_ns);
        let report = sim.run(&trace).unwrap();
        // Tenant 1's reads are never delayed by tenant 0's writes: at this
        // arrival spacing (100 µs apart vs 40 µs service) every read takes
        // the unloaded latency.
        assert_eq!(report.tenants[1].read.max_ns, 20 * US + 20_480);
    }

    #[test]
    fn shared_tenants_do_interfere() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(128);
        let sim = Simulator::new(cfg.clone(), layout).unwrap();
        let mut trace = Vec::new();
        let mut id = 0;
        for i in 0..50u64 {
            // Bursty arrivals (all at nearly the same time) on shared dies.
            trace.push(IoRequest::new(id, 0, Op::Write, i % 64, 1, i));
            id += 1;
            trace.push(IoRequest::new(id, 1, Op::Read, i % 64, 1, i));
            id += 1;
        }
        trace.sort_by_key(|r| r.arrival_ns);
        let report = sim.run(&trace).unwrap();
        assert!(
            report.tenants[1].read.max_ns > 20 * US + 20_480,
            "shared layout must show read/write conflicts"
        );
    }

    #[test]
    fn reallocation_switches_write_channels() {
        let cfg = small_cfg();
        let layout = TenantLayout::from_channel_lists(&[vec![0]], &cfg)
            .unwrap()
            .with_lpn_space_all(256);
        let mut sim = Simulator::new(cfg.clone(), layout).unwrap();
        sim.schedule_reallocation(Reallocation::new(1_000_000, vec![(0, vec![1], None)]))
            .unwrap();
        // Writes before the switch land on channel 0, after on channel 1.
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0),
            IoRequest::new(1, 0, Op::Write, 1, 1, 2_000_000),
        ];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.write.count, 2);
        // Both writes see an idle device, so identical latency — the switch
        // itself must not add cost.
        assert_eq!(report.write.min_ns, report.write.max_ns);
    }

    #[test]
    fn reallocation_must_be_time_ordered_and_valid() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(64);
        let mut sim = Simulator::new(cfg.clone(), layout).unwrap();
        sim.schedule_reallocation(Reallocation::new(100, vec![(0, vec![0], None)]))
            .unwrap();
        assert!(sim
            .schedule_reallocation(Reallocation::new(50, vec![(0, vec![0], None)]))
            .is_err());
        assert!(sim
            .schedule_reallocation(Reallocation::new(200, vec![(5, vec![0], None)]))
            .is_err());
        assert!(sim
            .schedule_reallocation(Reallocation::new(200, vec![(0, vec![99], None)]))
            .is_err());
    }

    #[test]
    fn reallocation_rows_round_trip_through_the_flat_table() {
        // The flat span table must read back exactly the rows it was
        // built from, including empty lists between non-empty ones.
        let rows: Vec<(usize, Vec<usize>, Option<PageAllocPolicy>)> = vec![
            (0, vec![0, 1], Some(PageAllocPolicy::Static)),
            (3, vec![], None),
            (1, vec![2], Some(PageAllocPolicy::Dynamic)),
        ];
        let realloc = Reallocation::new(42, rows.clone());
        assert_eq!(realloc.at_ns, 42);
        assert_eq!(realloc.entry_count(), rows.len());
        let back: Vec<(usize, Vec<usize>, Option<PageAllocPolicy>)> = realloc
            .entries()
            .map(|(t, ch, p)| (t, ch.to_vec(), p))
            .collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn dynamic_policy_spreads_bursty_writes() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg)
            .with_lpn_space_all(256)
            .with_policy(0, PageAllocPolicy::Dynamic);
        let sim = Simulator::new(cfg.clone(), layout).unwrap();
        // A burst of writes to the SAME lpn region arriving at once: static
        // would serialize some on one die; dynamic spreads over both dies.
        let trace: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest::new(i, 0, Op::Write, i * 2, 1, 0))
            .collect();
        let report = sim.run(&trace).unwrap();
        // 2 dies, 4 writes: worst case two writes per die. The bus is only
        // busy 20 µs per write so programs pipeline; max latency must be
        // below 3 serialized writes on one die.
        let t_xfer = 20_480u64;
        assert!(report.write.max_ns < 3 * (t_xfer + 200 * US));
    }

    #[test]
    fn gc_charge_blocks_the_die() {
        let cfg = SsdConfig {
            channels: 1,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            gc_free_block_threshold: 0.3,
            ..SsdConfig::small_test()
        };
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(16);
        let sim = Simulator::new(cfg.clone(), layout).unwrap();
        // Saturating overwrites force GC; total makespan must exceed the
        // pure write service time because GC holds the die.
        let trace: Vec<IoRequest> = (0..256)
            .map(|i| IoRequest::new(i, 0, Op::Write, i % 16, 1, 0))
            .collect();
        let report = sim.run(&trace).unwrap();
        assert!(report.ftl.gc_invocations > 0);
        let pure_write = 256 * (20_480 + 200 * US);
        assert!(report.makespan_ns > pure_write);
    }

    #[test]
    fn plane_parallelism_overlaps_same_die_arrays() {
        // Same die, different planes: with plane_parallelism the two array
        // reads overlap and only the bus serializes; without it the die
        // serializes them end to end.
        let run = |plane_parallelism: bool| {
            let cfg = SsdConfig {
                plane_parallelism,
                ..small_cfg()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
            let sim = Simulator::new(cfg, layout).unwrap();
            // lpns 0 and 2 -> channel 0, same die, planes 0 and 1.
            let trace = vec![
                IoRequest::new(0, 0, Op::Read, 0, 1, 0),
                IoRequest::new(1, 0, Op::Read, 2, 1, 0),
            ];
            sim.run(&trace).unwrap().read.max_ns
        };
        let t_xfer = 20_480u64;
        let serialized = run(false);
        let overlapped = run(true);
        assert_eq!(serialized, (20 * US + t_xfer) + 20 * US + t_xfer);
        // Overlapped: both arrays run 0..20us; second transfer queues
        // behind the first: 20us + 2 * t_xfer.
        assert_eq!(overlapped, 20 * US + 2 * t_xfer);
        assert!(overlapped < serialized);
    }

    #[test]
    fn plane_parallelism_raises_write_throughput() {
        // A burst of 8 writes to one channel's planes: plane-level
        // programs pipeline, die-level ones serialize.
        let run = |plane_parallelism: bool| {
            let cfg = SsdConfig {
                channels: 1,
                chips_per_channel: 1,
                dies_per_chip: 1,
                planes_per_die: 4,
                blocks_per_plane: 64,
                pages_per_block: 16,
                plane_parallelism,
                ..SsdConfig::small_test()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
            let sim = Simulator::new(cfg, layout).unwrap();
            let trace: Vec<IoRequest> = (0..8)
                .map(|i| IoRequest::new(i, 0, Op::Write, i, 1, 0))
                .collect();
            sim.run(&trace).unwrap().makespan_ns
        };
        let serialized = run(false);
        let pipelined = run(true);
        assert!(
            pipelined * 2 < serialized,
            "plane pipelining should at least halve the makespan: {pipelined} vs {serialized}"
        );
    }

    #[test]
    fn breakdown_accounts_unloaded_commands_exactly() {
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 0, 1, 10_000_000),
        ];
        let report = sim.run(&trace).unwrap();
        let w = report.write_breakdown;
        assert_eq!(w.cmds, 1);
        assert_eq!(w.wait_unit_ns, 0);
        assert_eq!(w.wait_bus_ns, 0);
        assert_eq!(w.transfer_ns, 20_480);
        assert_eq!(w.array_ns, 200 * US);
        assert_eq!(w.total_ns(), 20_480 + 200 * US);
        let r = report.read_breakdown;
        assert_eq!(r.cmds, 1);
        assert_eq!(r.array_ns, 20 * US);
        assert_eq!(r.transfer_ns, 20_480);
        assert_eq!(r.conflict_fraction(), 0.0);
        assert_eq!(report.gc_busy_ns, 0);
    }

    #[test]
    fn breakdown_captures_queueing_under_contention() {
        // Two reads racing for the same die (die-level parallelism in
        // small_cfg): the second one's wait_unit must be positive.
        let sim = one_tenant_sim();
        let trace = vec![
            IoRequest::new(0, 0, Op::Read, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 2, 1, 0),
        ];
        let report = sim.run(&trace).unwrap();
        let r = report.read_breakdown;
        assert_eq!(r.cmds, 2);
        assert!(r.wait_unit_ns > 0, "second read queues for the die");
        assert!(r.conflict_fraction() > 0.0);
        assert!(r.mean_wait_us() > 0.0);
        assert!(r.mean_service_us() > 0.0);
    }

    #[test]
    fn breakdown_sums_are_consistent_with_latencies() {
        // Breakdown totals for single-page requests bound the recorded
        // latencies (latency = sum of phases for each command).
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..100)
            .map(|i| {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                IoRequest::new(i, 0, op, (i * 3) % 256, 1, i * 5_000)
            })
            .collect();
        let report = sim.run(&trace).unwrap();
        assert_eq!(
            report.read_breakdown.cmds + report.write_breakdown.cmds,
            100
        );
        assert_eq!(
            report.read_breakdown.total_ns(),
            report.read.sum_ns,
            "per-phase time must sum to read latency"
        );
        assert_eq!(report.write_breakdown.total_ns(), report.write.sum_ns);
    }

    #[test]
    fn bus_utilization_reflects_channel_confinement() {
        let cfg = small_cfg();
        // Tenant confined to channel 0: all transfers must land there.
        let layout = TenantLayout::from_channel_lists(&[vec![0]], &cfg)
            .unwrap()
            .with_lpn_space_all(128);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..50)
            .map(|i| IoRequest::new(i, 0, Op::Write, i % 128, 1, i * 50_000))
            .collect();
        let report = sim.run(&trace).unwrap();
        let util = report.bus_utilization();
        assert_eq!(util.len(), 2);
        assert!(util[0] > 0.0, "channel 0 must carry traffic");
        assert_eq!(util[1], 0.0, "channel 1 must be silent");
        assert!(report.bus_imbalance().is_infinite());
        // Busy time = transfers * transfer_ns exactly.
        assert_eq!(report.bus_busy_ns[0], 50 * 20_480);
    }

    #[test]
    fn shared_striping_balances_buses() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(128);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..100)
            .map(|i| IoRequest::new(i, 0, Op::Write, i % 128, 1, i * 50_000))
            .collect();
        let report = sim.run(&trace).unwrap();
        assert!(
            report.bus_imbalance() < 1.1,
            "striped writes must balance buses: {:?}",
            report.bus_utilization()
        );
    }

    #[test]
    fn preconditioning_fills_without_costing_time() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let mut sim = Simulator::new(cfg, layout).unwrap();
        sim.precondition(&[0.5]).unwrap();
        // Reads of the preconditioned range need no lazy seeding and cost
        // the same as reads of host-written data.
        let trace = vec![IoRequest::new(0, 0, Op::Read, 10, 1, 0)];
        let report = sim.run(&trace).unwrap();
        assert_eq!(
            report.ftl.seeded_pages, 128,
            "50% of 256 LPNs preconditioned"
        );
        assert_eq!(report.read.max_ns, 20 * US + 20_480);
        assert_eq!(report.ftl.host_pages_written, 0);
    }

    #[test]
    fn preconditioning_brings_gc_forward() {
        // A filled device hits GC with far fewer host writes than a fresh
        // one: compare GC invocations for the same short overwrite burst.
        let run = |fill: f64| {
            let cfg = SsdConfig {
                channels: 1,
                chips_per_channel: 1,
                planes_per_die: 1,
                blocks_per_plane: 16,
                pages_per_block: 8,
                gc_free_block_threshold: 0.2,
                ..small_cfg()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(96);
            let mut sim = Simulator::new(cfg, layout).unwrap();
            sim.precondition(&[fill]).unwrap();
            let trace: Vec<IoRequest> = (0..32)
                .map(|i| IoRequest::new(i, 0, Op::Write, i % 96, 1, i * 500_000))
                .collect();
            sim.run(&trace).unwrap().ftl.gc_invocations
        };
        assert!(run(1.0) > run(0.0), "full device must GC sooner");
    }

    #[test]
    fn host_queue_depth_serializes_per_tenant() {
        // QD=1: the device never sees two of the tenant's requests at
        // once, so same-die writes complete back-to-back even when all
        // arrivals land at t=0.
        let cfg = SsdConfig {
            host_queue_depth: 1,
            ..small_cfg()
        };
        let layout = TenantLayout::from_channel_lists(&[vec![0]], &cfg)
            .unwrap()
            .with_lpn_space_all(64);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest::new(i, 0, Op::Write, i * 2, 1, 0))
            .collect();
        let report = sim.run(&trace).unwrap();
        let service = 20_480 + 200 * US;
        // k-th completion at k*service; latency measured from t=0.
        assert_eq!(report.write.min_ns, service);
        assert_eq!(report.write.max_ns, 4 * service);
        assert_eq!(report.write.count, 4);
    }

    #[test]
    fn host_queue_depth_zero_exploits_channel_parallelism() {
        // QD=1 keeps one request in flight, so the tenant's two channels
        // alternate and the makespan serializes; unbounded QD engages
        // both channels at once and roughly halves it.
        let run = |qd: u32| {
            let cfg = SsdConfig {
                host_queue_depth: qd,
                ..small_cfg()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(64);
            let sim = Simulator::new(cfg, layout).unwrap();
            let trace: Vec<IoRequest> = (0..4)
                .map(|i| IoRequest::new(i, 0, Op::Write, i, 1, 0))
                .collect();
            sim.run(&trace).unwrap().makespan_ns
        };
        let service = 20_480 + 200 * US;
        assert_eq!(run(1), 4 * service, "QD=1 fully serializes");
        assert!(
            run(0) <= 2 * service,
            "unbounded QD must run both channels concurrently"
        );
    }

    #[test]
    fn host_queue_depth_isolates_tenants_slots() {
        // Tenant 0 saturated at QD=1 must not block tenant 1's admission.
        let cfg = SsdConfig {
            host_queue_depth: 1,
            ..small_cfg()
        };
        let layout = TenantLayout::isolated(2, &cfg).with_lpn_space_all(64);
        let sim = Simulator::new(cfg, layout).unwrap();
        let mut trace: Vec<IoRequest> = (0..6)
            .map(|i| IoRequest::new(i, 0, Op::Write, i * 2, 1, 0))
            .collect();
        trace.push(IoRequest::new(6, 1, Op::Read, 0, 1, 0));
        let report = sim.run(&trace).unwrap();
        // Tenant 1's single read is admitted immediately on its own slot.
        assert_eq!(report.tenants[1].read.max_ns, 20 * US + 20_480);
    }

    #[test]
    fn cmd_arena_exhaustion_is_a_typed_error() {
        // One slot, one 2-page read: the fan-out needs two concurrent
        // commands, so the second spawn must fail loudly rather than wrap.
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let sim = Simulator::builder(cfg, layout)
            .cmd_slot_limit(1)
            .build()
            .unwrap();
        let trace = vec![IoRequest::new(0, 0, Op::Read, 0, 2, 0)];
        assert_eq!(
            sim.run(&trace).unwrap_err(),
            SimError::CmdIdsExhausted { limit: 1 }
        );
    }

    #[test]
    fn recycled_slots_keep_arena_at_peak_depth() {
        // 50 writes spaced far beyond the service time: at most one
        // command is ever in flight, so recycling keeps the whole run
        // inside a 2-slot arena (one would also work, but GC on another
        // config could overlap — 2 shows the plateau, not the trace len).
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let sim = Simulator::builder(cfg, layout)
            .cmd_slot_limit(2)
            .build()
            .unwrap();
        let trace: Vec<IoRequest> = (0..50)
            .map(|i| IoRequest::new(i, 0, Op::Write, i % 64, 1, i * 1_000_000))
            .collect();
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.write.count, 50);
    }

    #[test]
    fn builder_precondition_matches_mutating_call() {
        let cfg = small_cfg();
        let layout = || TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let trace = vec![IoRequest::new(0, 0, Op::Read, 10, 1, 0)];
        let built = Simulator::builder(cfg.clone(), layout())
            .precondition(&[0.5])
            .build()
            .unwrap()
            .run(&trace)
            .unwrap();
        let mut sim = Simulator::new(cfg.clone(), layout()).unwrap();
        sim.precondition(&[0.5]).unwrap();
        assert_eq!(built, sim.run(&trace).unwrap());
    }

    #[test]
    fn phases_cover_every_breakdown_nanosecond() {
        // The per-phase histogram sums must equal the breakdown sums the
        // engine already keeps — they record at the same points.
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..100)
            .map(|i| {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                IoRequest::new(i, 0, op, (i * 3) % 256, 1, i * 5_000)
            })
            .collect();
        let report = sim.run(&trace).unwrap();
        let p = &report.phases;
        let b_read = &report.read_breakdown;
        let b_write = &report.write_breakdown;
        assert_eq!(
            p.wait_unit.sum_ns,
            b_read.wait_unit_ns + b_write.wait_unit_ns
        );
        assert_eq!(p.array.sum_ns, b_read.array_ns + b_write.array_ns);
        assert_eq!(p.wait_bus.sum_ns, b_read.wait_bus_ns + b_write.wait_bus_ns);
        assert_eq!(p.transfer.sum_ns, b_read.transfer_ns + b_write.transfer_ns);
        assert_eq!(p.gc_exec.sum_ns, report.gc_busy_ns);
        // Every issued command sampled the queue depth once, at depth >= 1.
        assert_eq!(p.queue_depth.count, p.transfer.count + p.gc_exec.count);
        assert!(p.queue_depth.sum_ns >= p.queue_depth.count);
    }

    #[test]
    fn probe_sees_the_full_command_lifecycle() {
        use crate::probe::{EventRecorder, ProbeEvent};
        let cfg = small_cfg();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
        let mut rec = EventRecorder::with_capacity(1 << 12);
        let sim = Simulator::builder(cfg, layout)
            .probe(&mut rec)
            .build()
            .unwrap();
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0),
            IoRequest::new(1, 0, Op::Read, 0, 1, 10_000_000),
        ];
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.total.count, 2);
        let evs = rec.to_vec();
        let issues = evs
            .iter()
            .filter(|e| matches!(e, ProbeEvent::CmdIssue(_)))
            .count();
        let completes: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                ProbeEvent::CmdComplete(c) => Some(*c),
                _ => None,
            })
            .collect();
        let acquires = evs
            .iter()
            .filter(|e| matches!(e, ProbeEvent::BusAcquire(_)))
            .count();
        let releases = evs
            .iter()
            .filter(|e| matches!(e, ProbeEvent::BusRelease(_)))
            .count();
        assert_eq!(issues, 2);
        assert_eq!(completes.len(), 2);
        assert_eq!(acquires, 2);
        assert_eq!(releases, 2);
        // Unloaded single-page commands: latency = service time exactly.
        assert_eq!(completes[0].latency_ns, 20_480 + 200 * US);
        assert_eq!(completes[1].latency_ns, 20 * US + 20_480);
        // Event times are non-decreasing in emission order.
        for w in evs.windows(2) {
            assert!(w[0].at_ns() <= w[1].at_ns());
        }
    }

    #[test]
    fn probe_observes_reallocation_entries() {
        use crate::probe::{EventRecorder, ProbeEvent};
        let cfg = small_cfg();
        let layout = TenantLayout::from_channel_lists(&[vec![0]], &cfg)
            .unwrap()
            .with_lpn_space_all(256);
        let mut rec = EventRecorder::with_capacity(64);
        let mut sim = Simulator::builder(cfg, layout)
            .probe(&mut rec)
            .build()
            .unwrap();
        sim.schedule_reallocation(Reallocation::new(
            1_000_000,
            vec![(0, vec![1], Some(PageAllocPolicy::Dynamic))],
        ))
        .unwrap();
        let trace = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 0),
            IoRequest::new(1, 0, Op::Write, 1, 1, 2_000_000),
        ];
        sim.run(&trace).unwrap();
        let reallocs: Vec<_> = rec
            .to_vec()
            .into_iter()
            .filter_map(|e| match e {
                ProbeEvent::Realloc(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(reallocs.len(), 1);
        assert_eq!(reallocs[0].at_ns, 1_000_000);
        assert_eq!(reallocs[0].tenant, 0);
        assert_eq!(reallocs[0].channel_mask, 0b10);
        assert_eq!(reallocs[0].policy, 2);
    }

    #[test]
    fn probe_observes_gc_passes() {
        use crate::probe::{EventRecorder, ProbeEvent};
        let cfg = SsdConfig {
            channels: 1,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            gc_free_block_threshold: 0.3,
            ..SsdConfig::small_test()
        };
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(16);
        let mut rec = EventRecorder::with_capacity(1 << 14);
        let sim = Simulator::builder(cfg.clone(), layout)
            .probe(&mut rec)
            .build()
            .unwrap();
        let trace: Vec<IoRequest> = (0..256)
            .map(|i| IoRequest::new(i, 0, Op::Write, i % 16, 1, 0))
            .collect();
        let report = sim.run(&trace).unwrap();
        assert!(report.ftl.gc_invocations > 0);
        let gcs: Vec<_> = rec
            .to_vec()
            .into_iter()
            .filter_map(|e| match e {
                ProbeEvent::GcCollect(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(gcs.len() as u64, report.ftl.gc_invocations);
        for g in &gcs {
            assert_eq!(g.plane, 0, "single-plane device");
            assert!((g.victim_block as usize) < cfg.blocks_per_plane);
            assert!(g.duration_ns > 0);
            assert!(g.erased_blocks >= 1);
        }
        let moved: u64 = gcs.iter().map(|g| g.moved_pages as u64).sum();
        assert_eq!(moved, report.ftl.gc_pages_moved);
    }

    #[test]
    fn report_totals_are_consistent() {
        let cfg = small_cfg();
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(128);
        let sim = Simulator::new(cfg, layout).unwrap();
        let trace: Vec<IoRequest> = (0..100)
            .map(|i| {
                let op = if i % 4 == 0 { Op::Write } else { Op::Read };
                IoRequest::new(i, (i % 2) as u16, op, i % 128, 1, i * 10_000)
            })
            .collect();
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.total.count, 100);
        assert_eq!(report.read.count + report.write.count, 100);
        let per_tenant: u64 = report
            .tenants
            .iter()
            .map(|t| t.read.count + t.write.count)
            .sum();
        assert_eq!(per_tenant, 100);
        assert!(report.makespan_ns > 0);
        assert!(report.events_processed >= 300);
        assert!(report.total_latency_metric_us() > 0.0);
    }
}
