//! Execution backends: the command-execution layer behind one interface.
//!
//! The layer split is event core / *command execution* / policy. A
//! [`Backend`] owns command execution and timing for a run; everything
//! above it — the keeper's policy decisions, the [`Probe`] hook stream,
//! SSDP captures, `ssdtrace` analysis — is backend-agnostic:
//!
//! * [`SimBackend`] wraps the discrete-event [`crate::Simulator`]. It
//!   owns *modeled* time and is fully deterministic: same config, layout,
//!   trace, and reallocations → byte-identical reports and captures.
//! * [`crate::backend::FileBackend`] replays the same commands as real
//!   I/O against a file or raw device and owns *measured* wall-clock
//!   time: the I/O sequence is deterministic, the stamped latencies are
//!   whatever the hardware did.
//!
//! Construct either via [`crate::SimBuilder::build_backend`] with a
//! [`BackendKind`], schedule reallocations, then [`Backend::run`] with a
//! probe. The trait object erases the difference, which is what lets the
//! keeper act as a policy engine over interchangeable execution layers.

mod file;
pub(crate) mod uring;

pub use file::FileBackend;
pub use uring::available as io_uring_available;

use std::path::PathBuf;

use crate::probe::Probe;
use crate::request::IoRequest;
use crate::sim::{validate_device, validate_reallocation, Reallocation, SimArena, SimError};
use crate::stats::SimReport;
use crate::SimBuilder;
use crate::{SsdConfig, TenantLayout};

/// One run's command-execution engine. Implementations are one-shot:
/// [`Backend::run`] consumes the backend, mirroring
/// [`crate::Simulator::run`], so every report corresponds to a fresh
/// device state.
pub trait Backend {
    /// Stable backend identifier (`"sim"` or `"file"`).
    fn name(&self) -> &'static str;

    /// The timing engine in effect (`"sim"`, `"io_uring"`, `"pread"`).
    fn engine(&self) -> &'static str;

    /// Schedules a channel/policy re-allocation, validated eagerly with
    /// the same rules as [`crate::Simulator::schedule_reallocation`]
    /// (non-decreasing times, tenants in range, valid channel lists).
    fn schedule_reallocation(&mut self, realloc: Reallocation) -> Result<(), SimError>;

    /// Replays the trace to completion, emitting every hook to `probe`,
    /// and returns the end-of-run report.
    fn run(
        self: Box<Self>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
    ) -> Result<SimReport, SimError>;

    /// Like [`Backend::run`], but builds the engine out of (and reclaims
    /// it back into) a caller-owned [`SimArena`]. The default simply
    /// ignores the arena — backends whose run state is not arena-shaped
    /// (e.g. real-I/O replay) keep their plain path — while
    /// [`SimBackend`] overrides it to make repeated runs
    /// warm-allocation-free.
    fn run_with_arena(
        self: Box<Self>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
        _arena: &mut SimArena,
    ) -> Result<SimReport, SimError> {
        self.run(trace, probe)
    }
}

/// Which backend a run should execute on. Parses from the CLI surface
/// `sim` / `file:<path>` shared by the `exp` binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Simulated timing (the default).
    #[default]
    Sim,
    /// Real I/O against a file or raw device at `path`.
    File {
        /// Target file or device the replay reads/writes.
        path: PathBuf,
    },
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Sim => write!(f, "sim"),
            BackendKind::File { path } => write!(f, "file:{}", path.display()),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "sim" {
            return Ok(BackendKind::Sim);
        }
        if let Some(path) = s.strip_prefix("file:") {
            if path.is_empty() {
                return Err("file backend needs a path: file:<path>".into());
            }
            return Ok(BackendKind::File {
                path: PathBuf::from(path),
            });
        }
        Err(format!(
            "unknown backend `{s}` (expected sim or file:<path>)"
        ))
    }
}

/// The simulated-timing backend: [`crate::Simulator`] behind the
/// [`Backend`] interface. Construction defers building the simulator to
/// [`Backend::run`] (the probe arrives there), but validates config and
/// capacity eagerly so errors surface at build time, exactly as
/// [`crate::SimBuilder::build`] would.
pub struct SimBackend {
    cfg: SsdConfig,
    layout: TenantLayout,
    fill_fractions: Vec<f64>,
    cmd_slot_limit: Option<u32>,
    reallocs: Vec<Reallocation>,
}

impl SimBackend {
    pub(crate) fn new(
        cfg: SsdConfig,
        layout: TenantLayout,
        fill_fractions: Vec<f64>,
        cmd_slot_limit: Option<u32>,
    ) -> Result<Self, SimError> {
        // Same validation surface as SimBuilder::build, minus the probe:
        // config and capacity are checked eagerly without paying for a
        // throwaway engine build.
        validate_device(&cfg, &layout)?;
        Ok(Self {
            cfg,
            layout,
            fill_fractions,
            cmd_slot_limit,
            reallocs: Vec::new(),
        })
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn engine(&self) -> &'static str {
        "sim"
    }

    fn schedule_reallocation(&mut self, realloc: Reallocation) -> Result<(), SimError> {
        validate_reallocation(
            &realloc,
            self.reallocs.last().map(|r| r.at_ns),
            self.layout.tenant_count(),
            self.cfg.channels,
        )?;
        self.reallocs.push(realloc);
        Ok(())
    }

    fn run(
        self: Box<Self>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
    ) -> Result<SimReport, SimError> {
        self.run_with_arena(trace, probe, &mut SimArena::new())
    }

    fn run_with_arena(
        self: Box<Self>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<SimReport, SimError> {
        // `&mut dyn Probe` is itself a Probe (forwarding impl), so this
        // monomorphizes to exactly the engine the keeper always ran —
        // golden digests and SSDP captures stay byte-identical.
        obs::span!("backend_sim");
        let mut sim = crate::Simulator::with_probe_arena(self.cfg, self.layout, probe, arena)?;
        if let Some(limit) = self.cmd_slot_limit {
            sim.set_cmd_slot_limit(limit);
        }
        if !self.fill_fractions.is_empty() {
            sim.precondition(&self.fill_fractions)?;
        }
        for r in self.reallocs {
            sim.schedule_reallocation(r)?;
        }
        sim.run_reclaim(trace, arena)
    }
}

impl SimBuilder {
    /// Finishes the builder as a boxed [`Backend`] of the given kind
    /// instead of a concrete [`crate::Simulator`]. The probe attaches at
    /// [`Backend::run`] time; this is only available on a builder that
    /// has not taken a probe, so one can't be silently dropped.
    ///
    /// Preconditioning fills and command-slot limits apply to the sim
    /// backend only; the file backend performs real I/O and ignores
    /// them.
    pub fn build_backend(self, kind: &BackendKind) -> Result<Box<dyn Backend>, SimError> {
        let (cfg, layout, fills, limit) = self.into_parts();
        match kind {
            BackendKind::Sim => Ok(Box::new(SimBackend::new(cfg, layout, fills, limit)?)),
            BackendKind::File { path } => {
                Ok(Box::new(FileBackend::new(cfg, layout, path.clone())?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_displays() {
        assert_eq!("sim".parse::<BackendKind>().unwrap(), BackendKind::Sim);
        let f: BackendKind = "file:/tmp/replay.img".parse().unwrap();
        assert_eq!(
            f,
            BackendKind::File {
                path: PathBuf::from("/tmp/replay.img")
            }
        );
        assert_eq!(f.to_string(), "file:/tmp/replay.img");
        assert_eq!(BackendKind::Sim.to_string(), "sim");
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn backend_kind_rejects_garbage() {
        assert!("flash".parse::<BackendKind>().is_err());
        assert!("file:".parse::<BackendKind>().is_err());
        let err = "banana".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("banana"), "{err}");
    }
}
