//! Minimal raw-syscall io_uring rings for the file-replay backend.
//!
//! Hermetic by construction: no `libc`/`io-uring` crates — the three
//! pieces of OS surface we need (`syscall`, `mmap`/`munmap`, `close`)
//! are declared `extern "C"` against the C library std already links,
//! and every structure layout is written out by hand against the
//! kernel ABI (`linux/io_uring.h`), which is frozen the same way our
//! own SSDP codec is.
//!
//! Scope is deliberately tiny: one thread, one ring, `IORING_OP_READ` /
//! `IORING_OP_WRITE` on a plain fd, submit-and-wait batches. No SQPOLL,
//! no registered buffers, no fixed files. [`Uring::new`] failing (old
//! kernel, seccomp policy, container without the syscall) is an
//! expected outcome the caller handles by falling back to
//! `pread`/`pwrite` — see [`available`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

// --- C library surface (linked via std's libc dependency). -----------------

extern "C" {
    fn syscall(num: std::ffi::c_long, ...) -> std::ffi::c_long;
    fn mmap(
        addr: *mut std::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut std::ffi::c_void;
    fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
    fn close(fd: i32) -> i32;
    fn __errno_location() -> *mut i32;
}

fn errno() -> i32 {
    unsafe { *__errno_location() }
}

// --- Kernel ABI constants (linux/io_uring.h, stable). ----------------------

const SYS_IO_URING_SETUP: std::ffi::c_long = 425;
const SYS_IO_URING_ENTER: std::ffi::c_long = 426;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_ENTER_GETEVENTS: u32 = 1;
const IORING_FEAT_SINGLE_MMAP: u32 = 1;

/// `IORING_OP_READ` — positional read on a plain fd (kernel ≥ 5.6).
pub(crate) const OP_READ: u8 = 22;
/// `IORING_OP_WRITE` — positional write on a plain fd (kernel ≥ 5.6).
pub(crate) const OP_WRITE: u8 = 23;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// Submission queue entry, 64 bytes (the classic non-SQE128 layout).
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    _extra: [u64; 3],
}

/// Completion queue entry, 16 bytes.
#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

#[inline]
unsafe fn atomic_at(ptr: *mut u8, off: u32) -> &'static AtomicU32 {
    &*(ptr.add(off as usize) as *const AtomicU32)
}

/// One io_uring instance: setup fd, mapped SQ/CQ rings, mapped SQE array.
pub(crate) struct Uring {
    fd: i32,
    sq_ptr: *mut u8,
    sq_map_len: usize,
    /// Null when `IORING_FEAT_SINGLE_MMAP` folded the CQ ring into the
    /// SQ mapping (every modern kernel); then CQ offsets index `sq_ptr`.
    cq_ptr: *mut u8,
    cq_map_len: usize,
    sqes: *mut Sqe,
    sqes_map_len: usize,
    sq_entries: u32,
    sq_mask: u32,
    sq_array_off: u32,
    sq_khead_off: u32,
    sq_ktail_off: u32,
    cq_mask: u32,
    cq_khead_off: u32,
    cq_ktail_off: u32,
    cq_cqes_off: u32,
    /// Local shadows of the ring cursors (single-threaded producer and
    /// consumer, so only the kernel-shared words need atomics).
    sq_tail: u32,
    cq_head: u32,
    to_submit: u32,
}

// The ring is owned by one thread at a time; raw pointers into the
// kernel-shared mappings are what make it !Send by default.
unsafe impl Send for Uring {}

impl Uring {
    /// Sets up a ring with (at least) `entries` SQEs, mapping all three
    /// regions. Fails with the OS error text when the kernel or the
    /// container's seccomp policy does not provide io_uring.
    pub(crate) fn new(entries: u32) -> Result<Self, String> {
        let mut params = UringParams::default();
        let fd = unsafe {
            syscall(
                SYS_IO_URING_SETUP,
                entries as usize,
                &mut params as *mut UringParams,
            )
        };
        if fd < 0 {
            return Err(format!("io_uring_setup failed (errno {})", errno()));
        }
        let fd = fd as i32;

        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len =
            params.cq_off.cqes as usize + params.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = params.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_map_len = if single { sq_len.max(cq_len) } else { sq_len };

        let map = |len: usize, off: i64| -> Result<*mut u8, String> {
            let p = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED,
                    fd,
                    off,
                )
            };
            if p as isize == -1 {
                Err(format!("io_uring mmap failed (errno {})", errno()))
            } else {
                Ok(p as *mut u8)
            }
        };

        let sq_ptr = match map(sq_map_len, IORING_OFF_SQ_RING) {
            Ok(p) => p,
            Err(e) => {
                unsafe { close(fd) };
                return Err(e);
            }
        };
        let (cq_ptr, cq_map_len) = if single {
            (std::ptr::null_mut(), 0)
        } else {
            match map(cq_len, IORING_OFF_CQ_RING) {
                Ok(p) => (p, cq_len),
                Err(e) => {
                    unsafe {
                        munmap(sq_ptr as *mut _, sq_map_len);
                        close(fd);
                    }
                    return Err(e);
                }
            }
        };
        let sqes_map_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
        let sqes = match map(sqes_map_len, IORING_OFF_SQES) {
            Ok(p) => p as *mut Sqe,
            Err(e) => {
                unsafe {
                    munmap(sq_ptr as *mut _, sq_map_len);
                    if !cq_ptr.is_null() {
                        munmap(cq_ptr as *mut _, cq_map_len);
                    }
                    close(fd);
                }
                return Err(e);
            }
        };

        Ok(Self {
            fd,
            sq_ptr,
            sq_map_len,
            cq_ptr,
            cq_map_len,
            sqes,
            sqes_map_len,
            sq_entries: params.sq_entries,
            sq_mask: params.sq_entries - 1,
            sq_array_off: params.sq_off.array,
            sq_khead_off: params.sq_off.head,
            sq_ktail_off: params.sq_off.tail,
            cq_mask: params.cq_entries - 1,
            cq_khead_off: params.cq_off.head,
            cq_ktail_off: params.cq_off.tail,
            cq_cqes_off: params.cq_off.cqes,
            sq_tail: 0,
            cq_head: 0,
            to_submit: 0,
        })
    }

    #[inline]
    fn cq_base(&self) -> *mut u8 {
        if self.cq_ptr.is_null() {
            self.sq_ptr
        } else {
            self.cq_ptr
        }
    }

    /// SQEs the ring was sized for.
    pub(crate) fn entries(&self) -> u32 {
        self.sq_entries
    }

    /// Queues one positional read/write. Returns `false` when the SQ is
    /// full (caller submits and retries).
    pub(crate) fn push(
        &mut self,
        opcode: u8,
        fd: i32,
        buf: *mut u8,
        len: u32,
        offset: u64,
        user_data: u64,
    ) -> bool {
        let khead = unsafe { atomic_at(self.sq_ptr, self.sq_khead_off) }.load(Ordering::Acquire);
        if self.sq_tail.wrapping_sub(khead) >= self.sq_entries {
            return false;
        }
        let idx = self.sq_tail & self.sq_mask;
        unsafe {
            *self.sqes.add(idx as usize) = Sqe {
                opcode,
                flags: 0,
                ioprio: 0,
                fd,
                off: offset,
                addr: buf as u64,
                len,
                rw_flags: 0,
                user_data,
                _extra: [0; 3],
            };
            let array = self.sq_ptr.add(self.sq_array_off as usize) as *mut u32;
            *array.add(idx as usize) = idx;
        }
        self.sq_tail = self.sq_tail.wrapping_add(1);
        unsafe { atomic_at(self.sq_ptr, self.sq_ktail_off) }.store(self.sq_tail, Ordering::Release);
        self.to_submit += 1;
        true
    }

    /// Submits everything queued and blocks until at least `wait`
    /// completions are available.
    pub(crate) fn submit_and_wait(&mut self, wait: u32) -> Result<(), String> {
        while self.to_submit > 0 || wait > 0 {
            let r = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd as usize,
                    self.to_submit as usize,
                    wait as usize,
                    IORING_ENTER_GETEVENTS as usize,
                    0usize,
                    0usize,
                )
            };
            if r < 0 {
                let e = errno();
                if e == 4 {
                    continue; // EINTR: retry the enter
                }
                return Err(format!("io_uring_enter failed (errno {e})"));
            }
            self.to_submit -= (r as u32).min(self.to_submit);
            return Ok(());
        }
        Ok(())
    }

    /// Pops one completion: `(user_data, res)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, i32)> {
        let base = self.cq_base();
        let ktail = unsafe { atomic_at(base, self.cq_ktail_off) }.load(Ordering::Acquire);
        if self.cq_head == ktail {
            return None;
        }
        let idx = self.cq_head & self.cq_mask;
        let cqe = unsafe { *(base.add(self.cq_cqes_off as usize) as *const Cqe).add(idx as usize) };
        self.cq_head = self.cq_head.wrapping_add(1);
        unsafe { atomic_at(base, self.cq_khead_off) }.store(self.cq_head, Ordering::Release);
        Some((cqe.user_data, cqe.res))
    }
}

impl Drop for Uring {
    fn drop(&mut self) {
        unsafe {
            munmap(self.sqes as *mut _, self.sqes_map_len);
            munmap(self.sq_ptr as *mut _, self.sq_map_len);
            if !self.cq_ptr.is_null() {
                munmap(self.cq_ptr as *mut _, self.cq_map_len);
            }
            close(self.fd);
        }
    }
}

/// Whether this kernel/container provides io_uring at all, probed once
/// per process by setting up (and immediately dropping) a 2-entry ring.
pub fn available() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| Uring::new(2).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// End-to-end ring check against a real temp file; skips (cleanly
    /// passing) where the environment has no io_uring.
    #[test]
    fn ring_reads_back_what_it_wrote() {
        if !available() {
            eprintln!("skipped: io_uring unavailable in this environment");
            return;
        }
        let path = std::env::temp_dir().join(format!("ssdkeeper-uring-{}", std::process::id()));
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0u8; 8192]).unwrap();

        use std::os::unix::io::AsRawFd;
        let mut ring = Uring::new(4).unwrap();
        let mut wbuf = vec![0xABu8; 4096];
        let mut rbuf = vec![0u8; 4096];
        assert!(ring.push(OP_WRITE, f.as_raw_fd(), wbuf.as_mut_ptr(), 4096, 4096, 7));
        ring.submit_and_wait(1).unwrap();
        let (ud, res) = ring.pop().unwrap();
        assert_eq!((ud, res), (7, 4096));
        assert!(ring.push(OP_READ, f.as_raw_fd(), rbuf.as_mut_ptr(), 4096, 4096, 8));
        ring.submit_and_wait(1).unwrap();
        let (ud, res) = ring.pop().unwrap();
        assert_eq!((ud, res), (8, 4096));
        assert_eq!(rbuf, wbuf);
        drop(ring);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn push_reports_full_ring() {
        if !available() {
            eprintln!("skipped: io_uring unavailable in this environment");
            return;
        }
        let mut ring = Uring::new(2).unwrap();
        let mut buf = [0u8; 16];
        // A ring of 2 entries accepts exactly 2 unsubmitted pushes. The
        // fd is never submitted, so an invalid one is fine here.
        assert!(ring.push(OP_READ, -1, buf.as_mut_ptr(), 16, 0, 0));
        assert!(ring.push(OP_READ, -1, buf.as_mut_ptr(), 16, 0, 1));
        assert!(!ring.push(OP_READ, -1, buf.as_mut_ptr(), 16, 0, 2));
    }
}
