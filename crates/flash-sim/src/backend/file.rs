//! Real-I/O replay: executes the trace against a file or raw device.
//!
//! Where [`super::SimBackend`] owns *modeled* time, this backend owns
//! *measured* time: every read/write page command is issued as actual
//! I/O (io_uring where the kernel provides it, `pread`/`pwrite`
//! otherwise) and completions are stamped with wall-clock nanoseconds
//! from a run-local [`Instant`]. The probe hook stream has the same
//! shape as the simulator's — `CmdIssue` → `BusAcquire` → `BusRelease`
//! → `CmdComplete` per page — so `MetricsProbe`, SSDP captures, and
//! `ssdtrace summarize/diff` consume measured runs unchanged.
//!
//! Address mapping: each tenant owns a contiguous byte span of the
//! target sized `lpn_space × page_size`; LPNs wrap into the span the
//! same way the simulator masks them. Channel/unit attribution uses
//! static striping over the tenant's *current* channel set (scheduled
//! reallocations re-shape attribution mid-run, mirroring the keeper's
//! layout changes), so per-channel rollups remain meaningful even
//! though a real device hides its internal parallelism.
//!
//! Replay is closed-loop and as-fast-as-possible: trace arrival times
//! order requests and trigger reallocations but do not pace the I/O.
//! Latencies are therefore pure service times, which is what a
//! simulated-vs-measured distribution diff wants to compare.

use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::time::Instant;

use super::uring::{self, Uring};
use super::Backend;
use crate::config::SsdConfig;
use crate::event::CmdId;
use crate::ftl::alloc::{static_plane, PageAllocPolicy};
use crate::geometry::Geometry;
use crate::probe::{BusAcquire, BusRelease, CmdComplete, CmdIssue, Probe, ReallocApply};
use crate::request::{IoRequest, Op};
use crate::scheduler::CmdClass;
use crate::sim::{validate_reallocation, validate_trace, Reallocation, SimError};
use crate::stats::{LatencyBreakdown, LatencyStats, SimReport, TenantReport};
use crate::tenant::{ChannelSet, TenantLayout};

/// Pages issued per io_uring batch (and ring size). One request's pages
/// are batched together up to this depth, mirroring the simulator's
/// page-parallel fan-out of a request.
const BATCH: u32 = 64;

/// Buffer alignment: covers `O_DIRECT`'s logical-block requirement on
/// every common device (and is harmless for buffered I/O).
const ALIGN: usize = 4096;

/// Which syscall engine executes the page commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    /// io_uring when available, `pread`/`pwrite` otherwise.
    Auto,
    /// io_uring or fail.
    Uring,
    /// `pread`/`pwrite` always.
    Pread,
}

/// A page-aligned, heap-allocated I/O buffer (`O_DIRECT`-compatible).
struct AlignedBuf {
    ptr: *mut u8,
    layout: std::alloc::Layout,
}

impl AlignedBuf {
    fn new(len: usize) -> Self {
        let layout = std::alloc::Layout::from_size_align(len.max(ALIGN), ALIGN)
            .expect("page size fits an aligned layout");
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned I/O buffer allocation failed");
        Self { ptr, layout }
    }

    fn as_mut_ptr(&mut self) -> *mut u8 {
        self.ptr
    }

    fn as_mut_slice(&mut self, len: usize) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, len.min(self.layout.size())) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, self.layout) };
    }
}

/// The real-I/O backend. Construct via
/// [`crate::SimBuilder::build_backend`] with
/// [`super::BackendKind::File`].
pub struct FileBackend {
    cfg: SsdConfig,
    geo: Geometry,
    layout: TenantLayout,
    path: PathBuf,
    reallocs: Vec<Reallocation>,
    engine: EngineChoice,
}

impl FileBackend {
    /// Validates the config and resolves the syscall engine.
    ///
    /// `SSDKEEPER_REPLAY_ENGINE=uring|pread` forces an engine; the
    /// default probes io_uring once and falls back to `pread`/`pwrite`.
    /// Preconditioning fills and command-slot limits from the builder do
    /// not apply to real I/O and are ignored.
    pub(crate) fn new(
        cfg: SsdConfig,
        layout: TenantLayout,
        path: PathBuf,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let engine = match std::env::var("SSDKEEPER_REPLAY_ENGINE").as_deref() {
            Ok("uring") => EngineChoice::Uring,
            Ok("pread") => EngineChoice::Pread,
            Ok(other) => {
                return Err(SimError::Io {
                    op: "engine selection",
                    reason: format!("unknown SSDKEEPER_REPLAY_ENGINE value `{other}`"),
                })
            }
            Err(_) => EngineChoice::Auto,
        };
        let geo = Geometry::new(&cfg);
        Ok(Self {
            cfg,
            geo,
            layout,
            path,
            reallocs: Vec::new(),
            engine,
        })
    }

    /// Byte offset of `lpn` (already reduced into the tenant's space)
    /// within tenant `t`'s span, given per-tenant base offsets.
    fn offset_of(&self, bases: &[u64], t: usize, lpn: u64) -> u64 {
        bases[t] + lpn * self.cfg.page_size as u64
    }
}

/// Per-page issue bookkeeping for one in-flight batch.
#[derive(Clone, Copy)]
struct PageIssue {
    issue_ns: u64,
    unit: u32,
    channel: u16,
    cmd: CmdId,
    class: CmdClass,
    tenant: u16,
}

impl Backend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn engine(&self) -> &'static str {
        match self.engine {
            EngineChoice::Auto => {
                if uring::available() {
                    "io_uring"
                } else {
                    "pread"
                }
            }
            EngineChoice::Uring => "io_uring",
            EngineChoice::Pread => "pread",
        }
    }

    fn schedule_reallocation(&mut self, realloc: Reallocation) -> Result<(), SimError> {
        validate_reallocation(
            &realloc,
            self.reallocs.last().map(|r| r.at_ns),
            self.layout.tenant_count(),
            self.cfg.channels,
        )?;
        self.reallocs.push(realloc);
        Ok(())
    }

    fn run(
        mut self: Box<Self>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
    ) -> Result<SimReport, SimError> {
        obs::span!("backend_file");
        validate_trace(trace, self.layout.tenant_count())?;
        let page = self.cfg.page_size;

        // Per-tenant contiguous spans; the target must hold all of them.
        let mut bases = Vec::with_capacity(self.layout.tenant_count());
        let mut total: u64 = 0;
        for t in 0..self.layout.tenant_count() {
            bases.push(total);
            total += self.layout.tenant(t).lpn_space * page as u64;
        }
        let io_err = |op: &'static str, e: std::io::Error| SimError::Io {
            op,
            reason: e.to_string(),
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)
            .map_err(|e| io_err("open", e))?;
        let meta = file.metadata().map_err(|e| io_err("stat", e))?;
        if meta.file_type().is_file() && meta.len() < total {
            file.set_len(total).map_err(|e| io_err("set_len", e))?;
        }

        let mut ring = match self.engine {
            EngineChoice::Pread => None,
            EngineChoice::Uring => Some(Uring::new(BATCH).map_err(|reason| SimError::Io {
                op: "io_uring setup",
                reason,
            })?),
            EngineChoice::Auto => Uring::new(BATCH).ok(),
        };
        let batch_cap = ring.as_ref().map_or(1, |r| r.entries() as usize);
        let mut bufs: Vec<AlignedBuf> = (0..batch_cap).map(|_| AlignedBuf::new(page)).collect();

        let clock = Instant::now();
        let now_ns = |c: &Instant| c.elapsed().as_nanos() as u64;

        let mut tenants = vec![TenantReport::default(); self.layout.tenant_count()];
        let mut read = LatencyStats::new();
        let mut write = LatencyStats::new();
        let mut total_stats = LatencyStats::new();
        let mut read_breakdown = LatencyBreakdown::default();
        let mut write_breakdown = LatencyBreakdown::default();
        let mut bus_busy_ns = vec![0u64; self.geo.channels()];
        let mut phases = crate::stats::PhaseReport::default();
        let mut commands: u64 = 0;
        let mut next_cmd: u64 = 0;
        let mut next_realloc = 0usize;
        let mut batch: Vec<PageIssue> = Vec::with_capacity(batch_cap);

        for req in trace {
            // Reallocations keyed to trace time re-shape attribution the
            // moment the first request at/after their deadline replays.
            while next_realloc < self.reallocs.len()
                && self.reallocs[next_realloc].at_ns <= req.arrival_ns
            {
                let realloc = &self.reallocs[next_realloc];
                let at_ns = now_ns(&clock);
                for (tenant, channels, policy) in realloc.entries() {
                    let state = self.layout.tenant_mut(tenant);
                    state.channels = ChannelSet::new(channels, self.cfg.channels)
                        .expect("validated in schedule_reallocation");
                    if let Some(p) = policy {
                        state.policy = p;
                    }
                    let mut channel_mask = 0u64;
                    for &ch in state.channels.channels() {
                        channel_mask |= 1u64 << ch;
                    }
                    probe.on_realloc(&ReallocApply {
                        at_ns,
                        tenant: tenant as u16,
                        policy: match policy {
                            None => 0,
                            Some(PageAllocPolicy::Static) => 1,
                            Some(PageAllocPolicy::Dynamic) => 2,
                        },
                        channel_mask,
                    });
                }
                next_realloc += 1;
            }

            let t = req.tenant as usize;
            let state = self.layout.tenant(t);
            let space = state.lpn_space;
            let class = match req.op {
                Op::Read => CmdClass::Read,
                Op::Write => CmdClass::Write,
            };
            let req_start = now_ns(&clock);
            let mut req_done = req_start;

            let mut pages = req.pages().peekable();
            while pages.peek().is_some() {
                batch.clear();
                // Issue one batch of page commands.
                for (slot, lpn) in pages.by_ref().take(batch_cap).enumerate() {
                    let lpn = lpn % space;
                    let offset = self.offset_of(&bases, t, lpn);
                    let plane = static_plane(&self.geo, state, lpn);
                    let unit = if self.cfg.plane_parallelism {
                        plane as u32
                    } else {
                        self.geo.die_of_plane(plane) as u32
                    };
                    let channel = self.geo.channel_of_plane(plane) as u16;
                    let cmd = next_cmd as CmdId;
                    next_cmd = next_cmd.wrapping_add(1);
                    let issue_ns = now_ns(&clock);
                    probe.on_cmd_issue(&CmdIssue {
                        at_ns: issue_ns,
                        cmd,
                        tenant: req.tenant,
                        class,
                        gc: false,
                        unit,
                        channel,
                        queue_depth: (slot + 1) as u32,
                    });
                    probe.on_bus_acquire(&BusAcquire {
                        at_ns: issue_ns,
                        cmd,
                        channel,
                        waited_ns: 0,
                    });
                    batch.push(PageIssue {
                        issue_ns,
                        unit,
                        channel,
                        cmd,
                        class,
                        tenant: req.tenant,
                    });

                    let buf = &mut bufs[slot];
                    if req.op == Op::Write {
                        // Deterministic page image so replays are
                        // reproducible and reads have known content.
                        let tag = (lpn as u8) ^ (req.tenant as u8).wrapping_mul(31);
                        buf.as_mut_slice(page).fill(tag);
                    }
                    match (&mut ring, req.op) {
                        (Some(r), op) => {
                            let opcode = if op == Op::Read {
                                uring::OP_READ
                            } else {
                                uring::OP_WRITE
                            };
                            let pushed = r.push(
                                opcode,
                                file.as_raw_fd(),
                                buf.as_mut_ptr(),
                                page as u32,
                                offset,
                                slot as u64,
                            );
                            debug_assert!(pushed, "batch never exceeds ring entries");
                        }
                        (None, Op::Read) => {
                            file.read_exact_at(buf.as_mut_slice(page), offset)
                                .map_err(|e| io_err("read", e))?;
                        }
                        (None, Op::Write) => {
                            file.write_all_at(buf.as_mut_slice(page), offset)
                                .map_err(|e| io_err("write", e))?;
                        }
                    }
                }

                // Reap the batch. pread/pwrite completed inline above.
                if let Some(r) = &mut ring {
                    let mut pending = batch.len() as u32;
                    r.submit_and_wait(pending).map_err(|reason| SimError::Io {
                        op: "io_uring submit",
                        reason,
                    })?;
                    while pending > 0 {
                        match r.pop() {
                            Some((_slot, res)) if res == page as i32 => pending -= 1,
                            Some((slot, res)) => {
                                return Err(SimError::Io {
                                    op: "io_uring completion",
                                    reason: format!("page {slot} returned {res} (expected {page})"),
                                });
                            }
                            None => {
                                r.submit_and_wait(pending).map_err(|reason| SimError::Io {
                                    op: "io_uring wait",
                                    reason,
                                })?;
                            }
                        }
                    }
                }
                let done_ns = now_ns(&clock);
                req_done = req_done.max(done_ns);
                for p in &batch {
                    let latency = done_ns.saturating_sub(p.issue_ns);
                    probe.on_bus_release(&BusRelease {
                        at_ns: done_ns,
                        cmd: p.cmd,
                        channel: p.channel,
                        held_ns: latency,
                    });
                    probe.on_cmd_complete(&CmdComplete {
                        at_ns: done_ns,
                        cmd: p.cmd,
                        tenant: p.tenant,
                        class: p.class,
                        gc: false,
                        unit: p.unit,
                        channel: p.channel,
                        latency_ns: latency,
                    });
                    bus_busy_ns[p.channel as usize] += latency;
                    phases.transfer.record(latency);
                    phases.queue_depth.record(batch.len() as u64);
                    let breakdown = match p.class {
                        CmdClass::Read => &mut read_breakdown,
                        CmdClass::Write => &mut write_breakdown,
                    };
                    breakdown.transfer_ns += latency;
                    breakdown.cmds += 1;
                    commands += 1;
                }
            }

            let req_latency = req_done.saturating_sub(req_start);
            match req.op {
                Op::Read => {
                    tenants[t].read.record(req_latency);
                    read.record(req_latency);
                }
                Op::Write => {
                    tenants[t].write.record(req_latency);
                    write.record(req_latency);
                }
            }
            total_stats.record(req_latency);
        }

        Ok(SimReport {
            tenants,
            read,
            write,
            total: total_stats,
            ftl: Default::default(),
            wear: Default::default(),
            makespan_ns: now_ns(&clock),
            events_processed: commands,
            bus_busy_ns,
            read_breakdown,
            write_breakdown,
            gc_busy_ns: 0,
            phases,
        })
    }
}
