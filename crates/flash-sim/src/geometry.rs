//! Physical addressing within the SSD hierarchy.
//!
//! The hierarchy is `channel → chip → die → plane → block → page`. Two flat
//! index spaces are used pervasively by the engine:
//!
//! * **die index** — identifies the unit of array-command contention;
//! * **plane index** — identifies the unit of page allocation and GC.
//!
//! Both are plain `usize` row-major flattenings computed by [`Geometry`].

use crate::config::SsdConfig;

/// A fully resolved physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// Channel (bus) index.
    pub channel: u16,
    /// Chip index within the channel.
    pub chip: u16,
    /// Die index within the chip.
    pub die: u16,
    /// Plane index within the die.
    pub plane: u16,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// Exact `u32` division by a runtime-chosen constant via one 64×64→128
/// multiply (Lemire's round-up reciprocal): for `1 < d <= u32::MAX`,
/// `magic = u64::MAX / d + 1` and `n / d == (n * magic) >> 64` for every
/// `n < 2^32`. For powers of two `magic` degenerates to the exact shift
/// reciprocal, so the identity holds there too; `d == 1` is branched.
///
/// The point: dimension arithmetic (`die_of_plane`, `unpack_page`, …) runs
/// on the GC migration path for every moved page, and hardware 64-bit
/// division costs ~20-40 cycles against ~3 for a high multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MagicU32 {
    magic: u64,
    d: u32,
}

impl MagicU32 {
    pub(crate) fn new(d: usize) -> Self {
        debug_assert!(d >= 1 && d <= u32::MAX as usize);
        Self {
            // Wraps to 0 for d == 1; div() never reads it on that path.
            magic: (u64::MAX / d as u64).wrapping_add(1),
            d: d as u32,
        }
    }

    #[inline]
    pub(crate) fn div(self, n: u32) -> u32 {
        if self.d == 1 {
            n
        } else {
            ((n as u128 * self.magic as u128) >> 64) as u32
        }
    }

    /// `(n / d, n % d)` with a single multiply-high and one multiply-back.
    #[inline]
    pub(crate) fn divmod(self, n: u32) -> (u32, u32) {
        let q = self.div(n);
        (q, n - q * self.d)
    }
}

/// Flat-plane coordinates precomputed at construction: everything a hot
/// path needs to turn `(plane, block, page)` into a [`PhysAddr`] or a
/// packed page id without a single divide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlaneCoord {
    channel: u16,
    chip: u16,
    die: u16,
    plane: u16,
    /// Packed id of page 0 of block 0 in this plane.
    page_base: u32,
}

/// Precomputed dimension arithmetic for a fixed [`SsdConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    channels: usize,
    chips_per_channel: usize,
    dies_per_chip: usize,
    planes_per_die: usize,
    blocks_per_plane: usize,
    pages_per_block: usize,
    div_planes_per_die: MagicU32,
    div_dies_per_channel: MagicU32,
    div_pages_per_plane: MagicU32,
    div_pages_per_block: MagicU32,
    coords: Vec<PlaneCoord>,
}

impl Geometry {
    /// Builds the dimension table from a configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        let mut geo = Self {
            channels: cfg.channels,
            chips_per_channel: cfg.chips_per_channel,
            dies_per_chip: cfg.dies_per_chip,
            planes_per_die: cfg.planes_per_die,
            blocks_per_plane: cfg.blocks_per_plane,
            pages_per_block: cfg.pages_per_block,
            div_planes_per_die: MagicU32::new(cfg.planes_per_die),
            div_dies_per_channel: MagicU32::new(cfg.chips_per_channel * cfg.dies_per_chip),
            div_pages_per_plane: MagicU32::new(cfg.blocks_per_plane * cfg.pages_per_block),
            div_pages_per_block: MagicU32::new(cfg.pages_per_block),
            coords: Vec::new(),
        };
        debug_assert!(
            geo.total_pages() <= u32::MAX as u64 + 1,
            "device too large for packed page ids"
        );
        geo.coords = (0..geo.total_planes())
            .map(|p| {
                let die_flat = p / geo.planes_per_die;
                let within_channel = die_flat % geo.dies_per_channel();
                PlaneCoord {
                    channel: (die_flat / geo.dies_per_channel()) as u16,
                    chip: (within_channel / geo.dies_per_chip) as u16,
                    die: (within_channel % geo.dies_per_chip) as u16,
                    plane: (p % geo.planes_per_die) as u16,
                    page_base: (p * geo.pages_per_plane()) as u32,
                }
            })
            .collect();
        geo
    }

    /// Whether this geometry was built from a configuration with the same
    /// six dimensions — everything [`Geometry::new`] derives its tables
    /// from, so a match means the instance can be reused verbatim.
    pub(crate) fn matches(&self, cfg: &SsdConfig) -> bool {
        self.channels == cfg.channels
            && self.chips_per_channel == cfg.chips_per_channel
            && self.dies_per_chip == cfg.dies_per_chip
            && self.planes_per_die == cfg.planes_per_die
            && self.blocks_per_plane == cfg.blocks_per_plane
            && self.pages_per_block == cfg.pages_per_block
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Chips per channel.
    pub fn chips_per_channel(&self) -> usize {
        self.chips_per_channel
    }

    /// Dies per chip.
    pub fn dies_per_chip(&self) -> usize {
        self.dies_per_chip
    }

    /// Dies per channel.
    pub fn dies_per_channel(&self) -> usize {
        self.chips_per_channel * self.dies_per_chip
    }

    /// Total dies in the device.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel()
    }

    /// Planes per die.
    pub fn planes_per_die(&self) -> usize {
        self.planes_per_die
    }

    /// Total planes in the device.
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Blocks per plane.
    pub fn blocks_per_plane(&self) -> usize {
        self.blocks_per_plane
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> usize {
        self.blocks_per_plane * self.pages_per_block
    }

    /// Total physical pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_planes() as u64 * self.pages_per_plane() as u64
    }

    /// Flat die index of an address.
    pub fn die_index(&self, addr: &PhysAddr) -> usize {
        (addr.channel as usize * self.chips_per_channel + addr.chip as usize) * self.dies_per_chip
            + addr.die as usize
    }

    /// Flat die index from `(channel, die-within-channel)` coordinates.
    pub fn die_index_of(&self, channel: usize, die_in_channel: usize) -> usize {
        debug_assert!(channel < self.channels);
        debug_assert!(die_in_channel < self.dies_per_channel());
        channel * self.dies_per_channel() + die_in_channel
    }

    /// Channel that owns a flat die index.
    pub fn channel_of_die(&self, die: usize) -> usize {
        self.div_dies_per_channel.div(die as u32) as usize
    }

    /// Flat plane index of an address.
    pub fn plane_index(&self, addr: &PhysAddr) -> usize {
        self.die_index(addr) * self.planes_per_die + addr.plane as usize
    }

    /// Flat plane index from `(die, plane-within-die)`.
    pub fn plane_index_of(&self, die: usize, plane: usize) -> usize {
        debug_assert!(plane < self.planes_per_die);
        die * self.planes_per_die + plane
    }

    /// Die that owns a flat plane index.
    pub fn die_of_plane(&self, plane: usize) -> usize {
        self.div_planes_per_die.div(plane as u32) as usize
    }

    /// Channel that owns a flat plane index.
    pub fn channel_of_plane(&self, plane: usize) -> usize {
        self.coords[plane].channel as usize
    }

    /// Resolves `(flat plane, block, page)` to a full address from the
    /// precomputed coordinate table — no division, no modulo.
    #[inline]
    pub fn addr_at(&self, plane: usize, block: u32, page: u32) -> PhysAddr {
        let c = self.coords[plane];
        PhysAddr {
            channel: c.channel,
            chip: c.chip,
            die: c.die,
            plane: c.plane,
            block,
            page,
        }
    }

    /// Packed page id of `(flat plane, block, page)`: one multiply off the
    /// plane's precomputed base. Equals `pack_page(&addr_at(...))`.
    #[inline]
    pub fn packed_at(&self, plane: usize, block: u32, page: u32) -> u32 {
        debug_assert!((block as usize) < self.blocks_per_plane);
        debug_assert!((page as usize) < self.pages_per_block);
        self.coords[plane].page_base + block * self.pages_per_block as u32 + page
    }

    /// Splits a packed page id into `(flat plane, block, page)` with two
    /// reciprocal multiplies — the divide-free core of [`Self::unpack_page`].
    #[inline]
    pub fn split_packed(&self, packed: u32) -> (usize, u32, u32) {
        let (plane, within) = self.div_pages_per_plane.divmod(packed);
        let (block, page) = self.div_pages_per_block.divmod(within);
        (plane as usize, block, page)
    }

    /// Packs a physical page into a dense `u32` page id
    /// (`plane * pages_per_plane + block * pages_per_block + page`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is outside the geometry or the
    /// device has more than `u32::MAX` pages (Table I has ~33.5 M).
    pub fn pack_page(&self, addr: &PhysAddr) -> u32 {
        self.packed_at(self.plane_index(addr), addr.block, addr.page)
    }

    /// Inverse of [`Geometry::pack_page`].
    #[inline]
    pub fn unpack_page(&self, packed: u32) -> PhysAddr {
        let (plane, block, page) = self.split_packed(packed);
        self.addr_at(plane, block, page)
    }

    /// Reciprocal dividers for `(dies_per_channel, planes_per_die)`,
    /// consumed by the static-allocation stripe math so the per-page
    /// admit path never issues a hardware divide.
    #[inline]
    pub(crate) fn stripe_divs(&self) -> (MagicU32, MagicU32) {
        (self.div_dies_per_channel, self.div_planes_per_die)
    }

    /// Iterator over the flat die indices belonging to `channel`.
    pub fn dies_of_channel(&self, channel: usize) -> impl Iterator<Item = usize> {
        let d = self.dies_per_channel();
        (channel * d)..(channel * d + d)
    }

    /// Iterator over the flat plane indices belonging to `die`.
    pub fn planes_of_die(&self, die: usize) -> impl Iterator<Item = usize> {
        let p = self.planes_per_die;
        (die * p)..(die * p + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    fn table1() -> Geometry {
        Geometry::new(&SsdConfig::paper_table1())
    }

    #[test]
    fn basic_counts_match_config() {
        let g = table1();
        assert_eq!(g.channels(), 8);
        assert_eq!(g.total_dies(), 16);
        assert_eq!(g.total_planes(), 64);
        assert_eq!(g.pages_per_plane(), 4096 * 128);
        assert_eq!(g.total_pages(), 64 * 4096 * 128);
    }

    #[test]
    fn die_index_round_trips_channel() {
        let g = table1();
        for ch in 0..8 {
            for d in g.dies_of_channel(ch) {
                assert_eq!(g.channel_of_die(d), ch);
            }
        }
    }

    #[test]
    fn plane_iteration_covers_device_exactly_once() {
        let g = table1();
        let mut seen = vec![false; g.total_planes()];
        for die in 0..g.total_dies() {
            for p in g.planes_of_die(die) {
                assert!(!seen[p], "plane {p} visited twice");
                seen[p] = true;
                assert_eq!(g.die_of_plane(p), die);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn channel_of_plane_consistent() {
        let g = table1();
        for p in 0..g.total_planes() {
            assert_eq!(g.channel_of_plane(p), g.channel_of_die(g.die_of_plane(p)));
        }
    }

    #[test]
    fn die_index_of_matches_die_index() {
        let g = table1();
        let addr = PhysAddr {
            channel: 3,
            chip: 1,
            die: 0,
            plane: 2,
            block: 5,
            page: 7,
        };
        assert_eq!(g.die_index(&addr), g.die_index_of(3, 1));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let g = table1();
        let mut rng = SimRng::seed_from_u64(501);
        for _ in 0..1024 {
            let addr = PhysAddr {
                channel: rng.gen_range(0u16..8),
                chip: rng.gen_range(0u16..2),
                die: 0,
                plane: rng.gen_range(0u16..4),
                block: rng.gen_range(0u32..4096),
                page: rng.gen_range(0u32..128),
            };
            let packed = g.pack_page(&addr);
            assert_eq!(g.unpack_page(packed), addr);
        }
    }

    #[test]
    fn packed_ids_are_dense_and_unique() {
        let cfg = SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 8,
            ..SsdConfig::paper_table1()
        };
        let g = Geometry::new(&cfg);
        let mut rng = SimRng::seed_from_u64(502);
        for _ in 0..1024 {
            let a = PhysAddr {
                channel: 1,
                chip: 0,
                die: 0,
                plane: 1,
                block: rng.gen_range(0u32..64),
                page: rng.gen_range(0u32..8),
            };
            let b = PhysAddr {
                channel: 1,
                chip: 0,
                die: 0,
                plane: 1,
                block: rng.gen_range(0u32..64),
                page: rng.gen_range(0u32..8),
            };
            assert_eq!(g.pack_page(&a) == g.pack_page(&b), a == b);
        }
    }

    /// The reciprocal divider must agree with hardware division for every
    /// divisor shape the geometry can produce (1, powers of two, odd
    /// composites, huge) across boundary and random numerators.
    #[test]
    fn magic_division_matches_hardware_division() {
        let divisors = [
            1usize,
            2,
            3,
            4,
            5,
            6,
            7,
            8,
            12,
            16,
            24,
            100,
            128,
            4096 * 128,
            33_554_432,
            u32::MAX as usize,
        ];
        let mut rng = SimRng::seed_from_u64(77);
        for &d in &divisors {
            let m = MagicU32::new(d);
            let d32 = d as u32;
            let check = |n: u32| {
                assert_eq!(m.div(n), n / d32, "div {n} / {d}");
                assert_eq!(m.divmod(n), (n / d32, n % d32), "divmod {n} / {d}");
            };
            for n in 0..1024u32 {
                check(n);
            }
            for k in 0..64u32 {
                check(u32::MAX - k);
                let mult = d32.wrapping_mul(k);
                check(mult);
                check(mult.wrapping_sub(1));
                check(mult.wrapping_add(1));
            }
            for _ in 0..4096 {
                check(rng.gen());
            }
        }
    }

    /// `addr_at`/`packed_at`/`split_packed` agree with the reference
    /// pack/unpack pair over the whole (reduced) device.
    #[test]
    fn coordinate_table_matches_reference_arithmetic() {
        let cfg = SsdConfig {
            blocks_per_plane: 32,
            pages_per_block: 8,
            ..SsdConfig::paper_table1()
        };
        let g = Geometry::new(&cfg);
        for plane in 0..g.total_planes() {
            assert_eq!(
                g.channel_of_plane(plane),
                g.channel_of_die(g.die_of_plane(plane))
            );
            for block in 0..32u32 {
                for page in 0..8u32 {
                    let addr = g.addr_at(plane, block, page);
                    assert_eq!(g.plane_index(&addr), plane);
                    let packed = g.packed_at(plane, block, page);
                    assert_eq!(packed, g.pack_page(&addr));
                    assert_eq!(g.split_packed(packed), (plane, block, page));
                    assert_eq!(g.unpack_page(packed), addr);
                }
            }
        }
    }

    #[test]
    fn unpack_boundary_pages() {
        let g = table1();
        let last = PhysAddr {
            channel: 7,
            chip: 1,
            die: 0,
            plane: 3,
            block: 4095,
            page: 127,
        };
        let packed = g.pack_page(&last);
        assert_eq!(packed as u64, g.total_pages() - 1);
        assert_eq!(g.unpack_page(packed), last);
        let first = PhysAddr {
            channel: 0,
            chip: 0,
            die: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(g.pack_page(&first), 0);
        assert_eq!(g.unpack_page(0), first);
    }
}
