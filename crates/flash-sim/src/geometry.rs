//! Physical addressing within the SSD hierarchy.
//!
//! The hierarchy is `channel → chip → die → plane → block → page`. Two flat
//! index spaces are used pervasively by the engine:
//!
//! * **die index** — identifies the unit of array-command contention;
//! * **plane index** — identifies the unit of page allocation and GC.
//!
//! Both are plain `usize` row-major flattenings computed by [`Geometry`].

use crate::config::SsdConfig;

/// A fully resolved physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// Channel (bus) index.
    pub channel: u16,
    /// Chip index within the channel.
    pub chip: u16,
    /// Die index within the chip.
    pub die: u16,
    /// Plane index within the die.
    pub plane: u16,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// Precomputed dimension arithmetic for a fixed [`SsdConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    channels: usize,
    chips_per_channel: usize,
    dies_per_chip: usize,
    planes_per_die: usize,
    blocks_per_plane: usize,
    pages_per_block: usize,
}

impl Geometry {
    /// Builds the dimension table from a configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        Self {
            channels: cfg.channels,
            chips_per_channel: cfg.chips_per_channel,
            dies_per_chip: cfg.dies_per_chip,
            planes_per_die: cfg.planes_per_die,
            blocks_per_plane: cfg.blocks_per_plane,
            pages_per_block: cfg.pages_per_block,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Chips per channel.
    pub fn chips_per_channel(&self) -> usize {
        self.chips_per_channel
    }

    /// Dies per chip.
    pub fn dies_per_chip(&self) -> usize {
        self.dies_per_chip
    }

    /// Dies per channel.
    pub fn dies_per_channel(&self) -> usize {
        self.chips_per_channel * self.dies_per_chip
    }

    /// Total dies in the device.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel()
    }

    /// Planes per die.
    pub fn planes_per_die(&self) -> usize {
        self.planes_per_die
    }

    /// Total planes in the device.
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Blocks per plane.
    pub fn blocks_per_plane(&self) -> usize {
        self.blocks_per_plane
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> usize {
        self.blocks_per_plane * self.pages_per_block
    }

    /// Total physical pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_planes() as u64 * self.pages_per_plane() as u64
    }

    /// Flat die index of an address.
    pub fn die_index(&self, addr: &PhysAddr) -> usize {
        (addr.channel as usize * self.chips_per_channel + addr.chip as usize) * self.dies_per_chip
            + addr.die as usize
    }

    /// Flat die index from `(channel, die-within-channel)` coordinates.
    pub fn die_index_of(&self, channel: usize, die_in_channel: usize) -> usize {
        debug_assert!(channel < self.channels);
        debug_assert!(die_in_channel < self.dies_per_channel());
        channel * self.dies_per_channel() + die_in_channel
    }

    /// Channel that owns a flat die index.
    pub fn channel_of_die(&self, die: usize) -> usize {
        die / self.dies_per_channel()
    }

    /// Flat plane index of an address.
    pub fn plane_index(&self, addr: &PhysAddr) -> usize {
        self.die_index(addr) * self.planes_per_die + addr.plane as usize
    }

    /// Flat plane index from `(die, plane-within-die)`.
    pub fn plane_index_of(&self, die: usize, plane: usize) -> usize {
        debug_assert!(plane < self.planes_per_die);
        die * self.planes_per_die + plane
    }

    /// Die that owns a flat plane index.
    pub fn die_of_plane(&self, plane: usize) -> usize {
        plane / self.planes_per_die
    }

    /// Channel that owns a flat plane index.
    pub fn channel_of_plane(&self, plane: usize) -> usize {
        self.channel_of_die(self.die_of_plane(plane))
    }

    /// Packs a physical page into a dense `u32` page id
    /// (`plane * pages_per_plane + block * pages_per_block + page`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is outside the geometry or the
    /// device has more than `u32::MAX` pages (Table I has ~33.5 M).
    pub fn pack_page(&self, addr: &PhysAddr) -> u32 {
        debug_assert!((addr.block as usize) < self.blocks_per_plane);
        debug_assert!((addr.page as usize) < self.pages_per_block);
        let plane = self.plane_index(addr) as u64;
        let id = plane * self.pages_per_plane() as u64
            + addr.block as u64 * self.pages_per_block as u64
            + addr.page as u64;
        debug_assert!(
            id <= u32::MAX as u64,
            "device too large for packed page ids"
        );
        id as u32
    }

    /// Inverse of [`Geometry::pack_page`].
    pub fn unpack_page(&self, packed: u32) -> PhysAddr {
        let pages_per_plane = self.pages_per_plane() as u64;
        let packed = packed as u64;
        let plane_flat = (packed / pages_per_plane) as usize;
        let within = packed % pages_per_plane;
        let block = (within as usize / self.pages_per_block) as u32;
        let page = (within as usize % self.pages_per_block) as u32;

        let die_flat = plane_flat / self.planes_per_die;
        let plane = (plane_flat % self.planes_per_die) as u16;
        let dies_per_channel = self.dies_per_channel();
        let channel = (die_flat / dies_per_channel) as u16;
        let within_channel = die_flat % dies_per_channel;
        let chip = (within_channel / self.dies_per_chip) as u16;
        let die = (within_channel % self.dies_per_chip) as u16;
        PhysAddr {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        }
    }

    /// Iterator over the flat die indices belonging to `channel`.
    pub fn dies_of_channel(&self, channel: usize) -> impl Iterator<Item = usize> {
        let d = self.dies_per_channel();
        (channel * d)..(channel * d + d)
    }

    /// Iterator over the flat plane indices belonging to `die`.
    pub fn planes_of_die(&self, die: usize) -> impl Iterator<Item = usize> {
        let p = self.planes_per_die;
        (die * p)..(die * p + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    fn table1() -> Geometry {
        Geometry::new(&SsdConfig::paper_table1())
    }

    #[test]
    fn basic_counts_match_config() {
        let g = table1();
        assert_eq!(g.channels(), 8);
        assert_eq!(g.total_dies(), 16);
        assert_eq!(g.total_planes(), 64);
        assert_eq!(g.pages_per_plane(), 4096 * 128);
        assert_eq!(g.total_pages(), 64 * 4096 * 128);
    }

    #[test]
    fn die_index_round_trips_channel() {
        let g = table1();
        for ch in 0..8 {
            for d in g.dies_of_channel(ch) {
                assert_eq!(g.channel_of_die(d), ch);
            }
        }
    }

    #[test]
    fn plane_iteration_covers_device_exactly_once() {
        let g = table1();
        let mut seen = vec![false; g.total_planes()];
        for die in 0..g.total_dies() {
            for p in g.planes_of_die(die) {
                assert!(!seen[p], "plane {p} visited twice");
                seen[p] = true;
                assert_eq!(g.die_of_plane(p), die);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn channel_of_plane_consistent() {
        let g = table1();
        for p in 0..g.total_planes() {
            assert_eq!(g.channel_of_plane(p), g.channel_of_die(g.die_of_plane(p)));
        }
    }

    #[test]
    fn die_index_of_matches_die_index() {
        let g = table1();
        let addr = PhysAddr {
            channel: 3,
            chip: 1,
            die: 0,
            plane: 2,
            block: 5,
            page: 7,
        };
        assert_eq!(g.die_index(&addr), g.die_index_of(3, 1));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let g = table1();
        let mut rng = SimRng::seed_from_u64(501);
        for _ in 0..1024 {
            let addr = PhysAddr {
                channel: rng.gen_range(0u16..8),
                chip: rng.gen_range(0u16..2),
                die: 0,
                plane: rng.gen_range(0u16..4),
                block: rng.gen_range(0u32..4096),
                page: rng.gen_range(0u32..128),
            };
            let packed = g.pack_page(&addr);
            assert_eq!(g.unpack_page(packed), addr);
        }
    }

    #[test]
    fn packed_ids_are_dense_and_unique() {
        let cfg = SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 8,
            ..SsdConfig::paper_table1()
        };
        let g = Geometry::new(&cfg);
        let mut rng = SimRng::seed_from_u64(502);
        for _ in 0..1024 {
            let a = PhysAddr {
                channel: 1,
                chip: 0,
                die: 0,
                plane: 1,
                block: rng.gen_range(0u32..64),
                page: rng.gen_range(0u32..8),
            };
            let b = PhysAddr {
                channel: 1,
                chip: 0,
                die: 0,
                plane: 1,
                block: rng.gen_range(0u32..64),
                page: rng.gen_range(0u32..8),
            };
            assert_eq!(g.pack_page(&a) == g.pack_page(&b), a == b);
        }
    }

    #[test]
    fn unpack_boundary_pages() {
        let g = table1();
        let last = PhysAddr {
            channel: 7,
            chip: 1,
            die: 0,
            plane: 3,
            block: 4095,
            page: 127,
        };
        let packed = g.pack_page(&last);
        assert_eq!(packed as u64, g.total_pages() - 1);
        assert_eq!(g.unpack_page(packed), last);
        let first = PhysAddr {
            channel: 0,
            chip: 0,
            die: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(g.pack_page(&first), 0);
        assert_eq!(g.unpack_page(0), first);
    }
}
