//! Command scheduling for dies and channel buses.
//!
//! Two policies are provided:
//!
//! * [`SchedPolicy::Fifo`] — strict arrival order across classes. This is
//!   SSDSim's behaviour and the paper-faithful default: reads "have
//!   priority to respond" only in the sense that their service time is
//!   short, so in a shared SSD they still queue behind 200 µs programs —
//!   the access conflicts the paper's motivation measures.
//! * [`SchedPolicy::ReadPriority`] — reads overtake queued writes with a
//!   bounded bypass count so writes cannot starve. Provided as the
//!   scheduling ablation: it blunts read/write conflicts and visibly
//!   shrinks the benefit of channel isolation.
//!
//! Garbage-collection operations ride the write class — they are internal
//! writes and must not preempt host reads.

use crate::event::CmdId;
use std::collections::VecDeque;

/// Scheduling class of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdClass {
    /// Host read.
    Read,
    /// Host write or GC.
    Write,
}

/// Queueing discipline applied at every die and bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict arrival order (SSDSim-faithful default).
    #[default]
    Fifo,
    /// Reads first, with at most `max_bypass` consecutive reads
    /// overtaking a waiting write.
    ReadPriority {
        /// Bypass bound (anti-starvation).
        max_bypass: u32,
    },
}

/// A two-class queue supporting both disciplines.
///
/// Entries carry a queue-local sequence number so FIFO order across
/// classes is recoverable in O(1).
#[derive(Debug, Clone, Default)]
pub struct PriorityQueue {
    reads: VecDeque<(u64, CmdId)>,
    writes: VecDeque<(u64, CmdId)>,
    next_seq: u64,
    bypass: u32,
}

impl PriorityQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a command in its class.
    pub fn push(&mut self, cmd: CmdId, class: CmdClass) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match class {
            CmdClass::Read => self.reads.push_back((seq, cmd)),
            CmdClass::Write => self.writes.push_back((seq, cmd)),
        }
    }

    /// Dequeues the next command under `policy`.
    pub fn pop(&mut self, policy: SchedPolicy) -> Option<CmdId> {
        match policy {
            SchedPolicy::Fifo => {
                let r = self.reads.front().map(|&(s, _)| s);
                let w = self.writes.front().map(|&(s, _)| s);
                match (r, w) {
                    (Some(rs), Some(ws)) if rs < ws => self.reads.pop_front().map(|(_, c)| c),
                    (Some(_), Some(_)) => self.writes.pop_front().map(|(_, c)| c),
                    (Some(_), None) => self.reads.pop_front().map(|(_, c)| c),
                    (None, _) => self.writes.pop_front().map(|(_, c)| c),
                }
            }
            SchedPolicy::ReadPriority { max_bypass } => {
                let write_waiting = !self.writes.is_empty();
                if !self.reads.is_empty() && (!write_waiting || self.bypass < max_bypass) {
                    if write_waiting {
                        self.bypass += 1;
                    }
                    return self.reads.pop_front().map(|(_, c)| c);
                }
                if let Some((_, w)) = self.writes.pop_front() {
                    self.bypass = 0;
                    return Some(w);
                }
                self.reads.pop_front().map(|(_, c)| c)
            }
        }
    }

    /// Combined `push` + `pop` on an **empty** queue — the uncontended
    /// fast path taken when a command lands on an idle unit. Semantically
    /// exact: the sequence counter still advances, and a write popped
    /// under [`SchedPolicy::ReadPriority`] still resets the bypass budget
    /// (a read finding no waiting write leaves it untouched, as `pop`
    /// does). Returns the command for symmetry with `pop`.
    #[inline]
    pub fn push_pop_empty(&mut self, cmd: CmdId, class: CmdClass, policy: SchedPolicy) -> CmdId {
        debug_assert!(self.is_empty(), "push_pop_empty on a non-empty queue");
        self.next_seq += 1;
        if matches!(policy, SchedPolicy::ReadPriority { .. }) && class == CmdClass::Write {
            self.bypass = 0;
        }
        cmd
    }

    /// Empties the queue and rewinds the sequence and bypass counters to
    /// the freshly-constructed state, keeping both deque allocations.
    pub fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.next_seq = 0;
        self.bypass = 0;
    }

    /// Total queued commands.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Scheduling state of one execution unit (plane or die).
#[derive(Debug, Clone, Default)]
pub struct DieSched {
    /// Whether the unit is reserved by an in-flight command (including
    /// the phases where it idles waiting for the bus).
    pub busy: bool,
    /// Commands waiting for the unit.
    pub queue: PriorityQueue,
    /// Queued plus in-flight commands — the load signal consumed by
    /// dynamic page allocation.
    pub backlog: u32,
}

impl DieSched {
    /// Restores the idle freshly-constructed state, keeping the queue
    /// allocations.
    pub fn reset(&mut self) {
        self.busy = false;
        self.queue.reset();
        self.backlog = 0;
    }
}

/// Scheduling state of one channel bus.
#[derive(Debug, Clone, Default)]
pub struct BusSched {
    /// Whether a transfer is in progress.
    pub busy: bool,
    /// Commands (holding their units) waiting for the bus.
    pub queue: PriorityQueue,
}

impl BusSched {
    /// Restores the idle freshly-constructed state, keeping the queue
    /// allocations.
    pub fn reset(&mut self) {
        self.busy = false;
        self.queue.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    const RP4: SchedPolicy = SchedPolicy::ReadPriority { max_bypass: 4 };
    const RP8: SchedPolicy = SchedPolicy::ReadPriority { max_bypass: 8 };

    #[test]
    fn empty_queue_pops_none() {
        let mut q = PriorityQueue::new();
        assert!(q.pop(RP4).is_none());
        assert!(q.pop(SchedPolicy::Fifo).is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn fifo_preserves_arrival_order_across_classes() {
        let mut q = PriorityQueue::new();
        q.push(1, CmdClass::Write);
        q.push(2, CmdClass::Read);
        q.push(3, CmdClass::Write);
        q.push(4, CmdClass::Read);
        let order: Vec<CmdId> = (0..4).map(|_| q.pop(SchedPolicy::Fifo).unwrap()).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn read_priority_reads_win_over_writes() {
        let mut q = PriorityQueue::new();
        q.push(1, CmdClass::Write);
        q.push(2, CmdClass::Read);
        assert_eq!(q.pop(RP4), Some(2));
        assert_eq!(q.pop(RP4), Some(1));
    }

    #[test]
    fn fifo_within_class_under_read_priority() {
        let mut q = PriorityQueue::new();
        q.push(1, CmdClass::Read);
        q.push(2, CmdClass::Read);
        q.push(3, CmdClass::Write);
        q.push(4, CmdClass::Write);
        assert_eq!(q.pop(RP8), Some(1));
        assert_eq!(q.pop(RP8), Some(2));
        assert_eq!(q.pop(RP8), Some(3));
        assert_eq!(q.pop(RP8), Some(4));
    }

    #[test]
    fn bypass_bound_prevents_write_starvation() {
        let mut q = PriorityQueue::new();
        q.push(100, CmdClass::Write);
        for i in 0..10 {
            q.push(i, CmdClass::Read);
        }
        let rp3 = SchedPolicy::ReadPriority { max_bypass: 3 };
        let order: Vec<CmdId> = (0..4).map(|_| q.pop(rp3).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 100]);
    }

    #[test]
    fn bypass_counter_resets_after_write() {
        let mut q = PriorityQueue::new();
        q.push(100, CmdClass::Write);
        q.push(101, CmdClass::Write);
        for i in 0..10 {
            q.push(i, CmdClass::Read);
        }
        let rp2 = SchedPolicy::ReadPriority { max_bypass: 2 };
        let order: Vec<CmdId> = (0..8).map(|_| q.pop(rp2).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 100, 2, 3, 101, 4, 5]);
    }

    #[test]
    fn zero_bypass_serves_waiting_writes_first() {
        let mut q = PriorityQueue::new();
        q.push(1, CmdClass::Write);
        q.push(2, CmdClass::Read);
        assert_eq!(q.pop(SchedPolicy::ReadPriority { max_bypass: 0 }), Some(1));
    }

    #[test]
    fn reads_do_not_consume_bypass_without_waiting_writes() {
        let mut q = PriorityQueue::new();
        for i in 0..5 {
            q.push(i, CmdClass::Read);
        }
        let rp2 = SchedPolicy::ReadPriority { max_bypass: 2 };
        for _ in 0..3 {
            q.pop(rp2);
        }
        q.push(100, CmdClass::Write);
        q.push(10, CmdClass::Read);
        q.push(11, CmdClass::Read);
        assert_eq!(q.pop(rp2), Some(3));
        assert_eq!(q.pop(rp2), Some(4));
        assert_eq!(
            q.pop(rp2),
            Some(100),
            "budget of 2 exhausted by reads 3 and 4"
        );
    }

    #[test]
    fn default_policy_is_fifo() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }

    /// Every pushed command is popped exactly once under either policy,
    /// over seeded random class mixes.
    #[test]
    fn conservation() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let classes: Vec<bool> = (0..rng.gen_range(0usize..100)).map(|_| rng.gen()).collect();
            let policy = if rng.gen() {
                SchedPolicy::Fifo
            } else {
                SchedPolicy::ReadPriority {
                    max_bypass: rng.gen_range(0u32..8),
                }
            };
            let mut q = PriorityQueue::new();
            for (i, &is_read) in classes.iter().enumerate() {
                q.push(
                    i as CmdId,
                    if is_read {
                        CmdClass::Read
                    } else {
                        CmdClass::Write
                    },
                );
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(c) = q.pop(policy) {
                assert!(seen.insert(c), "command {} popped twice (seed {seed})", c);
            }
            assert_eq!(seen.len(), classes.len(), "seed {seed}");
        }
    }

    /// FIFO pops are globally ordered by arrival.
    #[test]
    fn fifo_is_sorted() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(1000 + seed);
            let classes: Vec<bool> = (0..rng.gen_range(0usize..100)).map(|_| rng.gen()).collect();
            let mut q = PriorityQueue::new();
            for (i, &is_read) in classes.iter().enumerate() {
                q.push(
                    i as CmdId,
                    if is_read {
                        CmdClass::Read
                    } else {
                        CmdClass::Write
                    },
                );
            }
            let mut prev = None;
            while let Some(c) = q.pop(SchedPolicy::Fifo) {
                if let Some(p) = prev {
                    assert!(c > p, "{c} after {p} (seed {seed})");
                }
                prev = Some(c);
            }
        }
    }

    /// A waiting write is served after at most `bound` subsequent pops
    /// under read priority.
    #[test]
    fn bounded_wait() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(2000 + seed);
            let bound = rng.gen_range(1u32..6);
            let reads_before = rng.gen_range(0usize..4);
            let policy = SchedPolicy::ReadPriority { max_bypass: bound };
            let mut q = PriorityQueue::new();
            for i in 0..reads_before {
                q.push(i as CmdId, CmdClass::Read);
            }
            q.push(999, CmdClass::Write);
            for i in 0..20 {
                q.push(100 + i, CmdClass::Read);
            }
            let mut pops = 0;
            loop {
                let c = q.pop(policy).expect("write must eventually surface");
                pops += 1;
                if c == 999 {
                    break;
                }
                assert!(pops <= bound as usize + reads_before + 1, "seed {seed}");
            }
        }
    }
}
