//! Zero-cost observability probes for the simulation engine.
//!
//! The engine is generic over a [`Probe`] — a set of typed hook points it
//! calls at the interesting moments of a run: command issue/completion,
//! channel-bus acquire/release, GC victim collection, mid-run channel
//! re-allocation, and (fired by the `ssdkeeper` layer) each keeper
//! strategy decision with its feature vector and class probabilities.
//!
//! # Overhead discipline
//!
//! The default probe is [`NullProbe`], whose hooks are empty `#[inline]`
//! bodies: after monomorphization the optimizer erases both the calls and
//! the construction of their argument records, so the un-probed hot path
//! stays allocation-free and bit-identical to an engine without hooks.
//! Concretely:
//!
//! * hooks take `&self`-style *record structs* of plain `Copy` fields —
//!   never anything that needs allocation or formatting to build;
//! * hooks are called at points where every field is already computed for
//!   the engine's own accounting (latency breakdowns, bus busy time), so
//!   an active probe adds stores, not new computation;
//! * probes must not influence the simulation: the engine hands out data
//!   and ignores the probe's state entirely, which keeps golden-digest
//!   determinism independent of the probe attached.
//!
//! The `sim_throughput` bench enforces the ≤2 % no-probe overhead budget
//! and (via `SSDKEEPER_BENCH_PROBE=1`) reports the cost of an attached
//! [`EventRecorder`].
//!
//! # Recording and persistence
//!
//! [`EventRecorder`] is a bounded ring buffer of [`ProbeEvent`]s: when
//! full, the oldest event is dropped and a monotone drop counter advances,
//! so a recorder can stay attached to an arbitrarily long run with bounded
//! memory. [`encode_events`]/[`decode_events`] persist a recording in the
//! same pinned little-endian codec style as [`crate::trace`] (SSDP v1,
//! golden-bytes tested), which is what the `exp` binaries' `--trace-out`
//! flag writes.

use crate::event::CmdId;
use crate::scheduler::CmdClass;
use std::collections::VecDeque;

/// Width of the keeper's feature vector (mirrors `ssdkeeper::features`).
pub const DECISION_FEATURES: usize = 9;
/// Number of strategy classes the keeper decides over.
pub const DECISION_CLASSES: usize = 42;

/// A page command entered its execution-unit queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdIssue {
    /// Simulated time of the issue.
    pub at_ns: u64,
    /// Arena id of the command (recycled between commands).
    pub cmd: CmdId,
    /// Tenant the command serves; GC commands carry the tenant whose
    /// write triggered the pass, so internal work is attributable.
    pub tenant: u16,
    /// Scheduling class.
    pub class: CmdClass,
    /// Whether this is an internal GC command.
    pub gc: bool,
    /// Execution unit (plane or die) the command queued on.
    pub unit: u32,
    /// Channel the command will transfer on.
    pub channel: u16,
    /// Unit backlog (queued + in flight) including this command.
    pub queue_depth: u32,
}

/// A page command finished its last phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdComplete {
    /// Simulated time of completion.
    pub at_ns: u64,
    /// Arena id of the command.
    pub cmd: CmdId,
    /// Tenant the command served; GC commands carry the tenant whose
    /// write triggered the pass.
    pub tenant: u16,
    /// Scheduling class.
    pub class: CmdClass,
    /// Whether this was an internal GC command.
    pub gc: bool,
    /// Execution unit it ran on.
    pub unit: u32,
    /// Channel it transferred on.
    pub channel: u16,
    /// Queueing plus service time, issue to completion.
    pub latency_ns: u64,
}

/// A command acquired its channel bus and started transferring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusAcquire {
    /// Simulated time the transfer started.
    pub at_ns: u64,
    /// Arena id of the command.
    pub cmd: CmdId,
    /// Channel whose bus was acquired.
    pub channel: u16,
    /// Time spent holding the unit while waiting for the bus.
    pub waited_ns: u64,
}

/// A command released its channel bus after transferring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRelease {
    /// Simulated time the transfer ended.
    pub at_ns: u64,
    /// Arena id of the command.
    pub cmd: CmdId,
    /// Channel whose bus was released.
    pub channel: u16,
    /// Transfer duration the bus was held for.
    pub held_ns: u64,
}

/// One GC pass: victim picked, live pages moved, block erased.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcCollect {
    /// Simulated time the pass was charged (the triggering write).
    pub at_ns: u64,
    /// Flat plane index that collected.
    pub plane: u32,
    /// Block index of the chosen victim within the plane.
    pub victim_block: u32,
    /// Live pages migrated out of the victim.
    pub moved_pages: u32,
    /// Blocks erased by the pass.
    pub erased_blocks: u32,
    /// Die-blocking composite duration of the pass.
    pub duration_ns: u64,
}

/// One tenant's entry of an applied channel re-allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReallocApply {
    /// Simulated time the new layout took effect.
    pub at_ns: u64,
    /// Tenant whose channel set changed.
    pub tenant: u16,
    /// New page-allocation policy: 0 = unchanged, 1 = static, 2 = dynamic.
    pub policy: u8,
    /// Bitmask of the tenant's new channels (bit `c` = channel `c`).
    pub channel_mask: u64,
}

/// A keeper strategy decision (fired by the `ssdkeeper` layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeeperDecision {
    /// Simulated time the decision takes effect.
    pub at_ns: u64,
    /// Index of the chosen strategy in the 4-tenant space.
    pub strategy: u16,
    /// The feature vector the decision was made on (network input order).
    pub features: [f32; DECISION_FEATURES],
    /// Predicted class probabilities over the strategy space.
    pub proba: [f32; DECISION_CLASSES],
}

/// Typed hook points called by the engine (and the keeper) during a run.
///
/// Every hook has an empty default body, so a probe implements only the
/// events it cares about. Hooks receive records by reference and must not
/// assume any global ordering beyond emission order; in particular the
/// keeper emits its decision events before the simulated run replays the
/// trace. See the module docs for the overhead contract.
pub trait Probe {
    /// A command entered its unit queue.
    #[inline]
    fn on_cmd_issue(&mut self, _ev: &CmdIssue) {}
    /// A command completed.
    #[inline]
    fn on_cmd_complete(&mut self, _ev: &CmdComplete) {}
    /// A command acquired its channel bus.
    #[inline]
    fn on_bus_acquire(&mut self, _ev: &BusAcquire) {}
    /// A command released its channel bus.
    #[inline]
    fn on_bus_release(&mut self, _ev: &BusRelease) {}
    /// A GC pass picked a victim and moved its live pages.
    #[inline]
    fn on_gc_collect(&mut self, _ev: &GcCollect) {}
    /// A scheduled re-allocation entry was applied.
    #[inline]
    fn on_realloc(&mut self, _ev: &ReallocApply) {}
    /// The keeper committed a strategy decision.
    #[inline]
    fn on_keeper_decision(&mut self, _ev: &KeeperDecision) {}
}

/// The default probe: every hook is a no-op the optimizer erases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Forwarding impl so callers can attach `&mut recorder` and keep the
/// recorder after [`crate::Simulator::run`] consumes the simulator; also
/// makes `&mut dyn Probe` itself a probe.
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn on_cmd_issue(&mut self, ev: &CmdIssue) {
        (**self).on_cmd_issue(ev);
    }
    #[inline]
    fn on_cmd_complete(&mut self, ev: &CmdComplete) {
        (**self).on_cmd_complete(ev);
    }
    #[inline]
    fn on_bus_acquire(&mut self, ev: &BusAcquire) {
        (**self).on_bus_acquire(ev);
    }
    #[inline]
    fn on_bus_release(&mut self, ev: &BusRelease) {
        (**self).on_bus_release(ev);
    }
    #[inline]
    fn on_gc_collect(&mut self, ev: &GcCollect) {
        (**self).on_gc_collect(ev);
    }
    #[inline]
    fn on_realloc(&mut self, ev: &ReallocApply) {
        (**self).on_realloc(ev);
    }
    #[inline]
    fn on_keeper_decision(&mut self, ev: &KeeperDecision) {
        (**self).on_keeper_decision(ev);
    }
}

/// Fans every hook out to two probes, `a` first. Lets a caller attach an
/// ad-hoc sink (say an [`EventRecorder`]) *and* a streaming aggregator
/// (say [`crate::metrics::MetricsProbe`]) to the same run; with both
/// sides [`NullProbe`] the whole thing still optimizes to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tee<A, B> {
    /// First receiver of every hook.
    pub a: A,
    /// Second receiver of every hook.
    pub b: B,
}

impl<A: Probe, B: Probe> Tee<A, B> {
    /// Combines two probes into one.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    #[inline]
    fn on_cmd_issue(&mut self, ev: &CmdIssue) {
        self.a.on_cmd_issue(ev);
        self.b.on_cmd_issue(ev);
    }
    #[inline]
    fn on_cmd_complete(&mut self, ev: &CmdComplete) {
        self.a.on_cmd_complete(ev);
        self.b.on_cmd_complete(ev);
    }
    #[inline]
    fn on_bus_acquire(&mut self, ev: &BusAcquire) {
        self.a.on_bus_acquire(ev);
        self.b.on_bus_acquire(ev);
    }
    #[inline]
    fn on_bus_release(&mut self, ev: &BusRelease) {
        self.a.on_bus_release(ev);
        self.b.on_bus_release(ev);
    }
    #[inline]
    fn on_gc_collect(&mut self, ev: &GcCollect) {
        self.a.on_gc_collect(ev);
        self.b.on_gc_collect(ev);
    }
    #[inline]
    fn on_realloc(&mut self, ev: &ReallocApply) {
        self.a.on_realloc(ev);
        self.b.on_realloc(ev);
    }
    #[inline]
    fn on_keeper_decision(&mut self, ev: &KeeperDecision) {
        self.a.on_keeper_decision(ev);
        self.b.on_keeper_decision(ev);
    }
}

/// Replays recorded events into a probe, in order. This is how offline
/// consumers (`ssdtrace`) drive the same streaming aggregators a live
/// run would: capture → [`decode_events`] → `replay` into a
/// [`crate::metrics::MetricsProbe`].
pub fn replay<'a, I, P>(events: I, probe: &mut P)
where
    I: IntoIterator<Item = &'a ProbeEvent>,
    P: Probe + ?Sized,
{
    for ev in events {
        match ev {
            ProbeEvent::CmdIssue(e) => probe.on_cmd_issue(e),
            ProbeEvent::CmdComplete(e) => probe.on_cmd_complete(e),
            ProbeEvent::BusAcquire(e) => probe.on_bus_acquire(e),
            ProbeEvent::BusRelease(e) => probe.on_bus_release(e),
            ProbeEvent::GcCollect(e) => probe.on_gc_collect(e),
            ProbeEvent::Realloc(e) => probe.on_realloc(e),
            ProbeEvent::Decision(e) => probe.on_keeper_decision(e),
        }
    }
}

/// One recorded hook invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeEvent {
    /// Command issue.
    CmdIssue(CmdIssue),
    /// Command completion.
    CmdComplete(CmdComplete),
    /// Bus acquisition.
    BusAcquire(BusAcquire),
    /// Bus release.
    BusRelease(BusRelease),
    /// GC pass.
    GcCollect(GcCollect),
    /// Re-allocation entry applied.
    Realloc(ReallocApply),
    /// Keeper decision.
    Decision(KeeperDecision),
}

impl ProbeEvent {
    /// Simulated time the event carries.
    pub fn at_ns(&self) -> u64 {
        match self {
            ProbeEvent::CmdIssue(e) => e.at_ns,
            ProbeEvent::CmdComplete(e) => e.at_ns,
            ProbeEvent::BusAcquire(e) => e.at_ns,
            ProbeEvent::BusRelease(e) => e.at_ns,
            ProbeEvent::GcCollect(e) => e.at_ns,
            ProbeEvent::Realloc(e) => e.at_ns,
            ProbeEvent::Decision(e) => e.at_ns,
        }
    }
}

/// Bounded ring-buffer sink: keeps the newest `capacity` events, drops the
/// oldest on overflow, and counts every drop in a monotone counter.
#[derive(Debug, Clone)]
pub struct EventRecorder {
    buf: VecDeque<ProbeEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRecorder {
    /// A recorder keeping at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: ProbeEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            obs::counter_add!("probe.recorder_drops", 1u64);
        }
        self.buf.push_back(ev);
    }

    /// Retained events, **oldest first** — this holds across any number
    /// of overflow/wraparound cycles: after the ring evicts, iteration
    /// still starts at the oldest *surviving* event and walks forward in
    /// emission order. [`EventRecorder::dropped`] tells how many events
    /// preceded the first one yielded here.
    pub fn events(&self) -> impl Iterator<Item = &ProbeEvent> {
        self.buf.iter()
    }

    /// Retained events as an owned, oldest-first vector.
    pub fn to_vec(&self) -> Vec<ProbeEvent> {
        self.buf.iter().copied().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events evicted since construction. Monotone: it never
    /// resets or decreases, across any number of overflow cycles, so two
    /// snapshots of the same recorder can be diffed for loss.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the recording as SSDP, taking the retained events and
    /// the drop counter from the *same* snapshot, so the header's
    /// `dropped` field can never disagree with the body. Prefer this over
    /// calling [`encode_events`] with a hand-carried counter: a decode of
    /// the result always yields exactly [`EventRecorder::to_vec`] and
    /// [`EventRecorder::dropped`], and replaying those decoded events is
    /// byte-equivalent to replaying the live ring.
    pub fn encode(&self) -> Vec<u8> {
        encode_events(self.events(), self.dropped)
    }
}

impl Probe for EventRecorder {
    fn on_cmd_issue(&mut self, ev: &CmdIssue) {
        self.push(ProbeEvent::CmdIssue(*ev));
    }
    fn on_cmd_complete(&mut self, ev: &CmdComplete) {
        self.push(ProbeEvent::CmdComplete(*ev));
    }
    fn on_bus_acquire(&mut self, ev: &BusAcquire) {
        self.push(ProbeEvent::BusAcquire(*ev));
    }
    fn on_bus_release(&mut self, ev: &BusRelease) {
        self.push(ProbeEvent::BusRelease(*ev));
    }
    fn on_gc_collect(&mut self, ev: &GcCollect) {
        self.push(ProbeEvent::GcCollect(*ev));
    }
    fn on_realloc(&mut self, ev: &ReallocApply) {
        self.push(ProbeEvent::Realloc(*ev));
    }
    fn on_keeper_decision(&mut self, ev: &KeeperDecision) {
        self.push(ProbeEvent::Decision(*ev));
    }
}

// ---------------------------------------------------------------------------
// SSDP v2: the persisted form of a recording.
//
// Format (little-endian, hand-rolled, layout frozen like SSDT v1):
//
//   magic   u32 = 0x53534450 ("SSDP")
//   version u32 = 2
//   count   u64   retained events
//   dropped u64   recorder drop counter at write time
//   count × { kind u8, payload (fixed size per kind) }
//
// v2 added a `tenant` u16 to CmdIssue and CmdComplete (after `cmd`) so
// offline analysis can attribute latency and GC work per tenant; v1
// streams are rejected with `BadVersion` — re-capture, the producer and
// consumer ship in the same workspace.
//
// Payloads (field order = struct order above; CmdClass as u8 0=read
// 1=write; bool as u8):
//   kind 0 CmdIssue    at u64, cmd u32, tenant u16, class u8, gc u8,
//                      unit u32, channel u16, queue_depth u32 (26 bytes)
//   kind 1 CmdComplete at u64, cmd u32, tenant u16, class u8, gc u8,
//                      unit u32, channel u16, latency u64    (30 bytes)
//   kind 2 BusAcquire  at u64, cmd u32, channel u16, waited u64 (22)
//   kind 3 BusRelease  at u64, cmd u32, channel u16, held u64   (22)
//   kind 4 GcCollect   at u64, plane u32, victim u32, moved u32,
//                      erased u32, duration u64              (32 bytes)
//   kind 5 Realloc     at u64, tenant u16, policy u8, pad u8 (= 0),
//                      mask u64                              (20 bytes)
//   kind 6 Decision    at u64, strategy u16, 9 × f32, 42 × f32 (214)
// ---------------------------------------------------------------------------

const MAGIC: u32 = 0x5353_4450;
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// Errors from [`decode_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeCodecError {
    /// The buffer does not start with the SSDP magic.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ends before the header's event count is satisfied.
    Truncated {
        /// Events expected from the header.
        expected: u64,
        /// Events fully decoded before the buffer ran out.
        got: u64,
    },
    /// An event kind byte outside the defined range.
    BadKind(u8),
    /// A class or policy byte outside its enum range.
    BadField {
        /// Name of the offending field.
        field: &'static str,
        /// The byte it carried.
        value: u8,
    },
}

impl std::fmt::Display for ProbeCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeCodecError::BadMagic(m) => write!(f, "bad probe-event magic {m:#x}"),
            ProbeCodecError::BadVersion(v) => write!(f, "unsupported probe-event version {v}"),
            ProbeCodecError::Truncated { expected, got } => {
                write!(
                    f,
                    "event stream truncated: header says {expected}, found {got}"
                )
            }
            ProbeCodecError::BadKind(k) => write!(f, "invalid event kind {k}"),
            ProbeCodecError::BadField { field, value } => {
                write!(f, "invalid {field} byte {value}")
            }
        }
    }
}

impl std::error::Error for ProbeCodecError {}

fn class_byte(c: CmdClass) -> u8 {
    match c {
        CmdClass::Read => 0,
        CmdClass::Write => 1,
    }
}

fn class_of(b: u8) -> Result<CmdClass, ProbeCodecError> {
    match b {
        0 => Ok(CmdClass::Read),
        1 => Ok(CmdClass::Write),
        value => Err(ProbeCodecError::BadField {
            field: "class",
            value,
        }),
    }
}

/// Serializes a recording (retained events + drop counter) as SSDP v1.
pub fn encode_events<'a, I>(events: I, dropped: u64) -> Vec<u8>
where
    I: IntoIterator<Item = &'a ProbeEvent>,
{
    let mut body = Vec::new();
    let mut count = 0u64;
    for ev in events {
        count += 1;
        match ev {
            ProbeEvent::CmdIssue(e) => {
                body.push(0);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.cmd.to_le_bytes());
                body.extend_from_slice(&e.tenant.to_le_bytes());
                body.push(class_byte(e.class));
                body.push(e.gc as u8);
                body.extend_from_slice(&e.unit.to_le_bytes());
                body.extend_from_slice(&e.channel.to_le_bytes());
                body.extend_from_slice(&e.queue_depth.to_le_bytes());
            }
            ProbeEvent::CmdComplete(e) => {
                body.push(1);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.cmd.to_le_bytes());
                body.extend_from_slice(&e.tenant.to_le_bytes());
                body.push(class_byte(e.class));
                body.push(e.gc as u8);
                body.extend_from_slice(&e.unit.to_le_bytes());
                body.extend_from_slice(&e.channel.to_le_bytes());
                body.extend_from_slice(&e.latency_ns.to_le_bytes());
            }
            ProbeEvent::BusAcquire(e) => {
                body.push(2);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.cmd.to_le_bytes());
                body.extend_from_slice(&e.channel.to_le_bytes());
                body.extend_from_slice(&e.waited_ns.to_le_bytes());
            }
            ProbeEvent::BusRelease(e) => {
                body.push(3);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.cmd.to_le_bytes());
                body.extend_from_slice(&e.channel.to_le_bytes());
                body.extend_from_slice(&e.held_ns.to_le_bytes());
            }
            ProbeEvent::GcCollect(e) => {
                body.push(4);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.plane.to_le_bytes());
                body.extend_from_slice(&e.victim_block.to_le_bytes());
                body.extend_from_slice(&e.moved_pages.to_le_bytes());
                body.extend_from_slice(&e.erased_blocks.to_le_bytes());
                body.extend_from_slice(&e.duration_ns.to_le_bytes());
            }
            ProbeEvent::Realloc(e) => {
                body.push(5);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.tenant.to_le_bytes());
                body.push(e.policy);
                body.push(0); // _pad
                body.extend_from_slice(&e.channel_mask.to_le_bytes());
            }
            ProbeEvent::Decision(e) => {
                body.push(6);
                body.extend_from_slice(&e.at_ns.to_le_bytes());
                body.extend_from_slice(&e.strategy.to_le_bytes());
                for v in e.features {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                for v in e.proba {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES + body.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    buf.extend_from_slice(&dropped.to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Little-endian cursor (same shape as the trace codec's).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let bytes: [u8; N] = self.buf[self.pos..self.pos + N]
            .try_into()
            .expect("slice length equals N");
        self.pos += N;
        bytes
    }

    fn u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn f32(&mut self) -> f32 {
        f32::from_le_bytes(self.take::<4>())
    }
}

/// Payload size in bytes for each event kind.
fn payload_bytes(kind: u8) -> Result<usize, ProbeCodecError> {
    Ok(match kind {
        0 => 26,
        1 => 30,
        2 | 3 => 22,
        4 => 32,
        5 => 20,
        6 => 10 + 4 * (DECISION_FEATURES + DECISION_CLASSES),
        k => return Err(ProbeCodecError::BadKind(k)),
    })
}

/// Deserializes an SSDP v1 stream back into `(events, dropped)`.
pub fn decode_events(buf: &[u8]) -> Result<(Vec<ProbeEvent>, u64), ProbeCodecError> {
    let mut r = Reader::new(buf);
    if r.remaining() < HEADER_BYTES {
        return Err(ProbeCodecError::Truncated {
            expected: 0,
            got: 0,
        });
    }
    let magic = r.u32();
    if magic != MAGIC {
        return Err(ProbeCodecError::BadMagic(magic));
    }
    let version = r.u32();
    if version != VERSION {
        return Err(ProbeCodecError::BadVersion(version));
    }
    let count = r.u64();
    let dropped = r.u64();
    let mut out = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        let truncated = ProbeCodecError::Truncated {
            expected: count,
            got: i,
        };
        if r.remaining() < 1 {
            return Err(truncated);
        }
        let kind = r.u8();
        if r.remaining() < payload_bytes(kind)? {
            return Err(truncated);
        }
        out.push(match kind {
            0 => ProbeEvent::CmdIssue(CmdIssue {
                at_ns: r.u64(),
                cmd: r.u32(),
                tenant: r.u16(),
                class: class_of(r.u8())?,
                gc: r.u8() != 0,
                unit: r.u32(),
                channel: r.u16(),
                queue_depth: r.u32(),
            }),
            1 => ProbeEvent::CmdComplete(CmdComplete {
                at_ns: r.u64(),
                cmd: r.u32(),
                tenant: r.u16(),
                class: class_of(r.u8())?,
                gc: r.u8() != 0,
                unit: r.u32(),
                channel: r.u16(),
                latency_ns: r.u64(),
            }),
            2 => ProbeEvent::BusAcquire(BusAcquire {
                at_ns: r.u64(),
                cmd: r.u32(),
                channel: r.u16(),
                waited_ns: r.u64(),
            }),
            3 => ProbeEvent::BusRelease(BusRelease {
                at_ns: r.u64(),
                cmd: r.u32(),
                channel: r.u16(),
                held_ns: r.u64(),
            }),
            4 => ProbeEvent::GcCollect(GcCollect {
                at_ns: r.u64(),
                plane: r.u32(),
                victim_block: r.u32(),
                moved_pages: r.u32(),
                erased_blocks: r.u32(),
                duration_ns: r.u64(),
            }),
            5 => {
                let at_ns = r.u64();
                let tenant = r.u16();
                let policy = r.u8();
                if policy > 2 {
                    return Err(ProbeCodecError::BadField {
                        field: "policy",
                        value: policy,
                    });
                }
                let _pad = r.u8();
                ProbeEvent::Realloc(ReallocApply {
                    at_ns,
                    tenant,
                    policy,
                    channel_mask: r.u64(),
                })
            }
            6 => {
                let at_ns = r.u64();
                let strategy = r.u16();
                let mut features = [0.0f32; DECISION_FEATURES];
                for v in features.iter_mut() {
                    *v = r.f32();
                }
                let mut proba = [0.0f32; DECISION_CLASSES];
                for v in proba.iter_mut() {
                    *v = r.f32();
                }
                ProbeEvent::Decision(KeeperDecision {
                    at_ns,
                    strategy,
                    features,
                    proba,
                })
            }
            k => return Err(ProbeCodecError::BadKind(k)),
        });
    }
    Ok((out, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ProbeEvent> {
        let mut features = [0.0f32; DECISION_FEATURES];
        features[0] = 0.5;
        let mut proba = [0.0f32; DECISION_CLASSES];
        proba[41] = 1.0;
        vec![
            ProbeEvent::CmdIssue(CmdIssue {
                at_ns: 10,
                cmd: 1,
                tenant: 2,
                class: CmdClass::Read,
                gc: false,
                unit: 3,
                channel: 2,
                queue_depth: 5,
            }),
            ProbeEvent::BusAcquire(BusAcquire {
                at_ns: 20,
                cmd: 1,
                channel: 2,
                waited_ns: 7,
            }),
            ProbeEvent::BusRelease(BusRelease {
                at_ns: 30,
                cmd: 1,
                channel: 2,
                held_ns: 10,
            }),
            ProbeEvent::CmdComplete(CmdComplete {
                at_ns: 30,
                cmd: 1,
                tenant: 2,
                class: CmdClass::Read,
                gc: false,
                unit: 3,
                channel: 2,
                latency_ns: 20,
            }),
            ProbeEvent::GcCollect(GcCollect {
                at_ns: 40,
                plane: 1,
                victim_block: 9,
                moved_pages: 4,
                erased_blocks: 1,
                duration_ns: 2_380_000,
            }),
            ProbeEvent::Realloc(ReallocApply {
                at_ns: 50,
                tenant: 3,
                policy: 2,
                channel_mask: 0b1111_0000,
            }),
            ProbeEvent::Decision(KeeperDecision {
                at_ns: 60,
                strategy: 41,
                features,
                proba,
            }),
        ]
    }

    #[test]
    fn recorder_retains_everything_under_capacity() {
        let mut rec = EventRecorder::with_capacity(16);
        for ev in sample_events() {
            rec.push(ev);
        }
        assert_eq!(rec.len(), 7);
        assert_eq!(rec.dropped(), 0);
        assert!(!rec.is_empty());
        assert_eq!(rec.to_vec(), sample_events());
    }

    #[test]
    fn recorder_overflow_drops_oldest_and_counts_monotonically() {
        let mut rec = EventRecorder::with_capacity(3);
        let evs = sample_events();
        let mut last_dropped = 0;
        for (i, ev) in evs.iter().enumerate() {
            rec.push(*ev);
            assert!(
                rec.dropped() >= last_dropped,
                "drop counter must be monotone"
            );
            last_dropped = rec.dropped();
            assert_eq!(rec.len(), (i + 1).min(3));
        }
        assert_eq!(rec.dropped(), 4);
        // The three newest survive, oldest first.
        assert_eq!(rec.to_vec(), evs[4..].to_vec());
    }

    /// Satellite contract: after any number of full overflow cycles the
    /// ring still iterates oldest-first and the drop counter is the exact
    /// monotone count of evictions.
    #[test]
    fn wraparound_keeps_oldest_first_order_across_many_cycles() {
        let capacity = 5;
        let mut rec = EventRecorder::with_capacity(capacity);
        let total = 4 * capacity + 3; // several complete wrap cycles
        let mut last_dropped = 0;
        for i in 0..total as u64 {
            rec.push(ProbeEvent::BusAcquire(BusAcquire {
                at_ns: i,
                cmd: i as u32,
                channel: 0,
                waited_ns: 0,
            }));
            assert!(rec.dropped() >= last_dropped, "dropped must be monotone");
            assert!(
                rec.dropped() - last_dropped <= 1,
                "each push evicts at most one event"
            );
            last_dropped = rec.dropped();
            // Invariant after every push: events() is oldest-first and
            // contiguous — at_ns values are consecutive and end at i.
            let ats: Vec<u64> = rec.events().map(|e| e.at_ns()).collect();
            for (k, &at) in ats.iter().enumerate() {
                assert_eq!(at, i + 1 - ats.len() as u64 + k as u64);
            }
        }
        assert_eq!(rec.dropped(), (total - capacity) as u64);
        assert_eq!(rec.len(), capacity);
    }

    /// Satellite contract: a capture taken *after* the ring overflowed
    /// must stay self-consistent end to end — the SSDP header's `dropped`
    /// equals the recorder's counter, the decoded body equals the
    /// retained ring, and replaying the decoded events produces the same
    /// metrics as replaying the live ring.
    #[test]
    fn overflowed_recorder_capture_replays_consistently() {
        let mut rec = EventRecorder::with_capacity(4);
        // Three passes of the 7-event sample stream: 21 pushes through a
        // 4-slot ring leave 17 dropped.
        for _ in 0..3 {
            replay(&sample_events(), &mut rec);
        }
        assert!(rec.dropped() > 0, "fixture must actually overflow");
        assert_eq!(rec.dropped(), 17);

        let bytes = rec.encode();
        let (decoded, dropped) = decode_events(&bytes).unwrap();
        assert_eq!(dropped, rec.dropped(), "header drop count must match ring");
        assert_eq!(decoded, rec.to_vec(), "body must be the retained events");

        // Replay parity: live ring vs decoded capture feed a MetricsProbe
        // to identical summaries (Debug rendering covers every field).
        let mut live = crate::metrics::MetricsProbe::new(1_000_000);
        replay(rec.events(), &mut live);
        let mut offline = crate::metrics::MetricsProbe::new(1_000_000);
        replay(&decoded, &mut offline);
        assert_eq!(
            format!("{:?}", live.summary()),
            format!("{:?}", offline.summary())
        );
    }

    #[test]
    fn tee_forwards_every_hook_to_both_probes() {
        let mut tee = Tee::new(
            EventRecorder::with_capacity(16),
            EventRecorder::with_capacity(16),
        );
        replay(&sample_events(), &mut tee);
        assert_eq!(tee.a.to_vec(), sample_events());
        assert_eq!(tee.b.to_vec(), sample_events());
    }

    #[test]
    fn replay_reconstructs_a_recording() {
        // decode → replay into a fresh recorder == the original recording.
        let evs = sample_events();
        let bytes = encode_events(&evs, 0);
        let (decoded, _) = decode_events(&bytes).unwrap();
        let mut rec = EventRecorder::with_capacity(decoded.len());
        replay(&decoded, &mut rec);
        assert_eq!(rec.to_vec(), evs);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut rec = EventRecorder::with_capacity(0);
        assert_eq!(rec.capacity(), 1);
        for ev in sample_events() {
            rec.push(ev);
        }
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn probe_hooks_feed_the_recorder() {
        let mut rec = EventRecorder::with_capacity(8);
        rec.on_cmd_issue(&CmdIssue {
            at_ns: 1,
            cmd: 0,
            tenant: 0,
            class: CmdClass::Write,
            gc: true,
            unit: 0,
            channel: 0,
            queue_depth: 1,
        });
        rec.on_keeper_decision(&KeeperDecision {
            at_ns: 2,
            strategy: 0,
            features: [0.0; DECISION_FEATURES],
            proba: [0.0; DECISION_CLASSES],
        });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.to_vec()[0].at_ns(), 1);
        assert_eq!(rec.to_vec()[1].at_ns(), 2);
    }

    #[test]
    fn forwarding_impl_reaches_the_recorder() {
        let mut rec = EventRecorder::with_capacity(4);
        {
            let fwd: &mut dyn Probe = &mut rec;
            fwd.on_bus_acquire(&BusAcquire {
                at_ns: 5,
                cmd: 2,
                channel: 1,
                waited_ns: 0,
            });
        }
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn round_trip_preserves_events_and_drop_counter() {
        let evs = sample_events();
        let bytes = encode_events(&evs, 123);
        let (decoded, dropped) = decode_events(&bytes).unwrap();
        assert_eq!(decoded, evs);
        assert_eq!(dropped, 123);
    }

    #[test]
    fn empty_stream_round_trips() {
        let bytes = encode_events([], 0);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let (decoded, dropped) = decode_events(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(dropped, 0);
    }

    /// Golden bytes: the exact on-disk image of one small recording. Pins
    /// the SSDP v2 layout — byte order, field order, per-kind payloads —
    /// so codec refactors cannot silently orphan persisted recordings.
    #[test]
    fn golden_bytes_are_stable() {
        let evs = vec![
            ProbeEvent::BusAcquire(BusAcquire {
                at_ns: 0x0102,
                cmd: 7,
                channel: 3,
                waited_ns: 9,
            }),
            ProbeEvent::CmdIssue(CmdIssue {
                at_ns: 0x04,
                cmd: 6,
                tenant: 2,
                class: CmdClass::Write,
                gc: true,
                unit: 8,
                channel: 1,
                queue_depth: 0x0B,
            }),
            ProbeEvent::Realloc(ReallocApply {
                at_ns: 0x0A,
                tenant: 1,
                policy: 2,
                channel_mask: 0xF0,
            }),
        ];
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            // header
            0x50, 0x44, 0x53, 0x53,                         // magic "SSDP" LE
            0x02, 0x00, 0x00, 0x00,                         // version 2
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count 3
            0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // dropped 5
            // record 0: BusAcquire at=0x102 cmd=7 channel=3 waited=9
            0x02,
            0x02, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x07, 0x00, 0x00, 0x00,
            0x03, 0x00,
            0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            // record 1: CmdIssue at=4 cmd=6 tenant=2 class=W gc=1 unit=8
            //           channel=1 queue_depth=11
            0x00,
            0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x06, 0x00, 0x00, 0x00,
            0x02, 0x00,
            0x01,
            0x01,
            0x08, 0x00, 0x00, 0x00,
            0x01, 0x00,
            0x0B, 0x00, 0x00, 0x00,
            // record 2: Realloc at=10 tenant=1 policy=2 pad mask=0xF0
            0x05,
            0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x01, 0x00,
            0x02,
            0x00,
            0xF0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        assert_eq!(encode_events(&evs, 5), expected);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = encode_events([], 0);
        buf[0] ^= 0xFF;
        assert!(matches!(
            decode_events(&buf).unwrap_err(),
            ProbeCodecError::BadMagic(_)
        ));
        let mut buf = encode_events([], 0);
        buf[4] = 9;
        assert_eq!(
            decode_events(&buf).unwrap_err(),
            ProbeCodecError::BadVersion(9)
        );
    }

    #[test]
    fn rejects_bad_kind_and_class() {
        let evs = sample_events();
        let mut bytes = encode_events(&evs[..1], 0);
        bytes[HEADER_BYTES] = 99; // kind byte of record 0
        assert_eq!(
            decode_events(&bytes).unwrap_err(),
            ProbeCodecError::BadKind(99)
        );
        let mut bytes = encode_events(&evs[..1], 0);
        // CmdIssue class byte: kind(1) + at(8) + cmd(4) + tenant(2) = 15.
        bytes[HEADER_BYTES + 15] = 7;
        assert_eq!(
            decode_events(&bytes).unwrap_err(),
            ProbeCodecError::BadField {
                field: "class",
                value: 7
            }
        );
    }

    /// Every truncation point yields a clean error, never a panic.
    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = encode_events(&sample_events(), 1);
        for cut in 0..bytes.len() {
            assert!(
                decode_events(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn error_display_messages() {
        assert!(ProbeCodecError::BadMagic(1).to_string().contains("magic"));
        assert!(ProbeCodecError::BadVersion(2)
            .to_string()
            .contains("version"));
        assert!(ProbeCodecError::BadKind(3).to_string().contains("kind"));
        assert!(ProbeCodecError::Truncated {
            expected: 4,
            got: 0
        }
        .to_string()
        .contains("truncated"));
        assert!(ProbeCodecError::BadField {
            field: "class",
            value: 9
        }
        .to_string()
        .contains("class"));
    }
}
