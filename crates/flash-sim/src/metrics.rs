//! Streaming metric aggregation over probe hook streams.
//!
//! [`MetricsProbe`] is the consumption side of the probe layer: it
//! implements [`Probe`] and folds every hook into fixed-size online
//! accumulators — per-tenant and per-channel log₂ latency histograms,
//! channel busy time from bus acquire/release pairs, GC work counters,
//! and a windowed throughput/queue-depth timeline — without retaining
//! events. The same aggregator serves two paths:
//!
//! * **live**: attach a `MetricsProbe` (possibly [`crate::probe::Tee`]'d
//!   with an [`crate::EventRecorder`]) to a run;
//! * **offline**: decode a persisted `.ssdp` capture and
//!   [`crate::probe::replay`] it into a fresh probe — `ssdtrace` does
//!   exactly this, so a summary computed live and one computed from the
//!   full capture of the same run are identical.
//!
//! Memory is bounded by (tenants + channels) histograms plus one
//! [`WindowSample`] per elapsed window; only the timeline grows with
//! simulated time, at `makespan / window_ns` entries.

use crate::probe::{BusAcquire, BusRelease, CmdComplete, CmdIssue, GcCollect, Probe};
use crate::scheduler::CmdClass;
use crate::stats::LatencyStats;

/// Latency and GC-attribution accumulators for one tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantMetrics {
    /// Host read page-command latencies (issue to completion).
    pub read: LatencyStats,
    /// Host write page-command latencies (GC excluded).
    pub write: LatencyStats,
    /// Internal GC commands attributed to this tenant (its writes
    /// triggered the passes).
    pub gc_cmds: u64,
    /// Summed latency of those GC commands.
    pub gc_ns: u64,
}

impl TenantMetrics {
    /// Folds another tenant's accumulators in (histograms bucket-wise).
    pub fn merge(&mut self, other: &TenantMetrics) {
        self.read.merge(&other.read);
        self.write.merge(&other.write);
        self.gc_cmds += other.gc_cmds;
        self.gc_ns += other.gc_ns;
    }
}

/// Bus-level accumulators for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelMetrics {
    /// Total time the channel bus was held (sum of release `held_ns`).
    pub busy_ns: u64,
    /// Bus acquisitions observed.
    pub acquires: u64,
    /// Total time commands held their unit waiting for this bus.
    pub bus_wait_ns: u64,
    /// Commands issued to units on this channel.
    pub issues: u64,
}

impl ChannelMetrics {
    /// Folds another channel's counters in.
    pub fn merge(&mut self, other: &ChannelMetrics) {
        self.busy_ns += other.busy_ns;
        self.acquires += other.acquires;
        self.bus_wait_ns += other.bus_wait_ns;
        self.issues += other.issues;
    }
}

/// Device-wide GC work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcMetrics {
    /// GC passes (victim collections) observed.
    pub passes: u64,
    /// Live pages migrated by GC.
    pub moved_pages: u64,
    /// Blocks erased by GC.
    pub erased_blocks: u64,
    /// Die time consumed by GC composite operations.
    pub busy_ns: u64,
}

impl GcMetrics {
    /// Folds another device's GC counters in.
    pub fn merge(&mut self, other: &GcMetrics) {
        self.passes += other.passes;
        self.moved_pages += other.moved_pages;
        self.erased_blocks += other.erased_blocks;
        self.busy_ns += other.busy_ns;
    }
}

/// One fixed-width timeline window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Window start, in simulated ns (`index * window_ns`).
    pub start_ns: u64,
    /// Host commands completed in the window.
    pub completes: u64,
    /// GC commands completed in the window.
    pub gc_completes: u64,
    /// GC passes charged in the window.
    pub gc_passes: u64,
    /// Sum of unit queue depths sampled at each issue in the window.
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples (= commands issued) in the window.
    pub queue_depth_samples: u64,
}

impl WindowSample {
    /// Mean unit backlog over the window's issues (0 when idle).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }
}

/// Immutable snapshot of everything a [`MetricsProbe`] aggregated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// Per-tenant accumulators, indexed by tenant id.
    pub tenants: Vec<TenantMetrics>,
    /// Per-channel accumulators, indexed by channel.
    pub channels: Vec<ChannelMetrics>,
    /// Device-wide GC counters.
    pub gc: GcMetrics,
    /// Timeline windows, oldest first (empty when windowing is off).
    pub timeline: Vec<WindowSample>,
    /// Timeline window width in ns (0 = windowing disabled).
    pub window_ns: u64,
    /// Timestamp of the first observed event.
    pub first_event_ns: u64,
    /// Timestamp of the last observed event.
    pub last_event_ns: u64,
    /// Hook invocations folded in (all kinds).
    pub events_observed: u64,
}

impl MetricsSummary {
    /// Observed simulated span: last event minus first event.
    pub fn span_ns(&self) -> u64 {
        self.last_event_ns.saturating_sub(self.first_event_ns)
    }

    /// Per-channel bus utilization over the observed span, in `[0, 1]`
    /// (all zeros when the span is empty).
    pub fn channel_utilization(&self) -> Vec<f64> {
        let span = self.span_ns();
        self.channels
            .iter()
            .map(|c| {
                if span == 0 {
                    0.0
                } else {
                    c.busy_ns as f64 / span as f64
                }
            })
            .collect()
    }

    /// Host write page-commands across all tenants.
    pub fn host_writes(&self) -> u64 {
        self.tenants.iter().map(|t| t.write.count).sum()
    }

    /// Host read page-commands across all tenants.
    pub fn host_reads(&self) -> u64 {
        self.tenants.iter().map(|t| t.read.count).sum()
    }

    /// Write amplification: (host writes + GC page moves) / host writes.
    /// 1.0 means GC moved nothing; 0 host writes reports 1.0.
    pub fn write_amplification(&self) -> f64 {
        let host = self.host_writes();
        if host == 0 {
            1.0
        } else {
            (host + self.gc.moved_pages) as f64 / host as f64
        }
    }

    /// Folds another summary into this one. Histograms and counters merge
    /// bucket-wise; `first_event_ns`/`last_event_ns` take the min/max of
    /// the two observed spans; timelines with the same window width merge
    /// window-by-window (simulated clocks are aligned: both start at 0).
    /// If the window widths differ the merged timeline is dropped and
    /// windowing marked disabled — the counters would be incomparable.
    ///
    /// Equivalent to [`MetricsSummary::merge_offset`] with zero offsets:
    /// tenant `i` of `other` folds into tenant `i` of `self`.
    pub fn merge(&mut self, other: &MetricsSummary) {
        self.merge_offset(other, 0, 0);
    }

    /// [`MetricsSummary::merge`] with re-indexing: tenant `i` of `other`
    /// folds into tenant `tenant_base + i` of `self`, channel `c` into
    /// `channel_base + c`. This is how a fleet of per-device summaries
    /// merges into one device-spanning summary — each shard's local
    /// tenant/channel ids land in a disjoint global range, so no shard's
    /// histogram is conflated with another's.
    pub fn merge_offset(
        &mut self,
        other: &MetricsSummary,
        tenant_base: usize,
        channel_base: usize,
    ) {
        if tenant_base + other.tenants.len() > self.tenants.len() {
            self.tenants
                .resize(tenant_base + other.tenants.len(), TenantMetrics::default());
        }
        for (i, t) in other.tenants.iter().enumerate() {
            self.tenants[tenant_base + i].merge(t);
        }
        if channel_base + other.channels.len() > self.channels.len() {
            self.channels.resize(
                channel_base + other.channels.len(),
                ChannelMetrics::default(),
            );
        }
        for (i, c) in other.channels.iter().enumerate() {
            self.channels[channel_base + i].merge(c);
        }
        self.gc.merge(&other.gc);

        if self.events_observed == 0 {
            self.window_ns = other.window_ns;
            self.first_event_ns = other.first_event_ns;
            self.last_event_ns = other.last_event_ns;
        } else if other.events_observed > 0 {
            self.first_event_ns = self.first_event_ns.min(other.first_event_ns);
            self.last_event_ns = self.last_event_ns.max(other.last_event_ns);
        }
        self.events_observed += other.events_observed;

        if self.window_ns == other.window_ns {
            if self.timeline.len() < other.timeline.len() {
                for idx in self.timeline.len()..other.timeline.len() {
                    self.timeline.push(WindowSample {
                        start_ns: idx as u64 * self.window_ns,
                        ..WindowSample::default()
                    });
                }
            }
            for (w, o) in self.timeline.iter_mut().zip(other.timeline.iter()) {
                w.completes += o.completes;
                w.gc_completes += o.gc_completes;
                w.gc_passes += o.gc_passes;
                w.queue_depth_sum += o.queue_depth_sum;
                w.queue_depth_samples += o.queue_depth_samples;
            }
        } else if other.events_observed > 0 {
            self.timeline.clear();
            self.window_ns = 0;
        }
    }
}

/// A [`Probe`] that aggregates metrics online. See the module docs.
///
/// Construction picks the timeline window width; everything else sizes
/// itself on demand from the tenant/channel ids that flow past.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsProbe {
    window_ns: u64,
    tenants: Vec<TenantMetrics>,
    channels: Vec<ChannelMetrics>,
    gc: GcMetrics,
    timeline: Vec<WindowSample>,
    first_event_ns: u64,
    last_event_ns: u64,
    events_observed: u64,
}

impl MetricsProbe {
    /// An aggregator with a timeline of `window_ns`-wide buckets.
    /// `window_ns == 0` disables the timeline (histograms and counters
    /// still accumulate). Timeline memory is `makespan / window_ns`
    /// entries, so pick a width proportionate to the run.
    pub fn new(window_ns: u64) -> Self {
        Self {
            window_ns,
            ..Self::default()
        }
    }

    /// Snapshot of everything aggregated so far.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            tenants: self.tenants.clone(),
            channels: self.channels.clone(),
            gc: self.gc,
            timeline: self.timeline.clone(),
            window_ns: self.window_ns,
            first_event_ns: self.first_event_ns,
            last_event_ns: self.last_event_ns,
            events_observed: self.events_observed,
        }
    }

    /// Consumes the probe, yielding its summary without cloning.
    pub fn into_summary(self) -> MetricsSummary {
        MetricsSummary {
            tenants: self.tenants,
            channels: self.channels,
            gc: self.gc,
            timeline: self.timeline,
            window_ns: self.window_ns,
            first_event_ns: self.first_event_ns,
            last_event_ns: self.last_event_ns,
            events_observed: self.events_observed,
        }
    }

    #[inline]
    fn touch(&mut self, at_ns: u64) {
        if self.events_observed == 0 {
            self.first_event_ns = at_ns;
        }
        self.last_event_ns = self.last_event_ns.max(at_ns);
        self.events_observed += 1;
    }

    #[inline]
    fn tenant_mut(&mut self, tenant: u16) -> &mut TenantMetrics {
        let idx = tenant as usize;
        if idx >= self.tenants.len() {
            self.tenants.resize(idx + 1, TenantMetrics::default());
        }
        &mut self.tenants[idx]
    }

    #[inline]
    fn channel_mut(&mut self, channel: u16) -> &mut ChannelMetrics {
        let idx = channel as usize;
        if idx >= self.channels.len() {
            self.channels.resize(idx + 1, ChannelMetrics::default());
        }
        &mut self.channels[idx]
    }

    #[inline]
    fn window_mut(&mut self, at_ns: u64) -> Option<&mut WindowSample> {
        if self.window_ns == 0 {
            return None;
        }
        let idx = (at_ns / self.window_ns) as usize;
        while self.timeline.len() <= idx {
            let start_ns = self.timeline.len() as u64 * self.window_ns;
            self.timeline.push(WindowSample {
                start_ns,
                ..WindowSample::default()
            });
        }
        Some(&mut self.timeline[idx])
    }
}

impl Probe for MetricsProbe {
    #[inline]
    fn on_cmd_issue(&mut self, ev: &CmdIssue) {
        self.touch(ev.at_ns);
        self.channel_mut(ev.channel).issues += 1;
        if let Some(w) = self.window_mut(ev.at_ns) {
            w.queue_depth_sum += ev.queue_depth as u64;
            w.queue_depth_samples += 1;
        }
    }

    #[inline]
    fn on_cmd_complete(&mut self, ev: &CmdComplete) {
        self.touch(ev.at_ns);
        let t = self.tenant_mut(ev.tenant);
        if ev.gc {
            t.gc_cmds += 1;
            t.gc_ns += ev.latency_ns;
        } else {
            match ev.class {
                CmdClass::Read => t.read.record(ev.latency_ns),
                CmdClass::Write => t.write.record(ev.latency_ns),
            }
        }
        if let Some(w) = self.window_mut(ev.at_ns) {
            if ev.gc {
                w.gc_completes += 1;
            } else {
                w.completes += 1;
            }
        }
    }

    #[inline]
    fn on_bus_acquire(&mut self, ev: &BusAcquire) {
        self.touch(ev.at_ns);
        let c = self.channel_mut(ev.channel);
        c.acquires += 1;
        c.bus_wait_ns += ev.waited_ns;
    }

    #[inline]
    fn on_bus_release(&mut self, ev: &BusRelease) {
        self.touch(ev.at_ns);
        self.channel_mut(ev.channel).busy_ns += ev.held_ns;
    }

    #[inline]
    fn on_gc_collect(&mut self, ev: &GcCollect) {
        self.touch(ev.at_ns);
        self.gc.passes += 1;
        self.gc.moved_pages += ev.moved_pages as u64;
        self.gc.erased_blocks += ev.erased_blocks as u64;
        self.gc.busy_ns += ev.duration_ns;
        if let Some(w) = self.window_mut(ev.at_ns) {
            w.gc_passes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{replay, BusRelease, CmdComplete, CmdIssue, ProbeEvent};
    use crate::scheduler::CmdClass;

    fn issue(at_ns: u64, tenant: u16, channel: u16, queue_depth: u32) -> ProbeEvent {
        ProbeEvent::CmdIssue(CmdIssue {
            at_ns,
            cmd: 1,
            tenant,
            class: CmdClass::Write,
            gc: false,
            unit: 0,
            channel,
            queue_depth,
        })
    }

    fn complete(at_ns: u64, tenant: u16, class: CmdClass, gc: bool, latency_ns: u64) -> ProbeEvent {
        ProbeEvent::CmdComplete(CmdComplete {
            at_ns,
            cmd: 1,
            tenant,
            class,
            gc,
            unit: 0,
            channel: 0,
            latency_ns,
        })
    }

    #[test]
    fn aggregates_latency_per_tenant_and_class() {
        let mut p = MetricsProbe::new(0);
        replay(
            [
                complete(10, 0, CmdClass::Read, false, 100),
                complete(20, 0, CmdClass::Write, false, 200),
                complete(30, 1, CmdClass::Write, false, 400),
                complete(40, 1, CmdClass::Write, true, 5_000), // GC, attributed
            ]
            .iter(),
            &mut p,
        );
        let s = p.summary();
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].read.count, 1);
        assert_eq!(s.tenants[0].read.sum_ns, 100);
        assert_eq!(s.tenants[0].write.count, 1);
        assert_eq!(s.tenants[1].write.count, 1);
        assert_eq!(s.tenants[1].gc_cmds, 1);
        assert_eq!(s.tenants[1].gc_ns, 5_000);
        assert_eq!(s.host_reads(), 1);
        assert_eq!(s.host_writes(), 2);
        assert_eq!(s.first_event_ns, 10);
        assert_eq!(s.last_event_ns, 40);
        assert_eq!(s.events_observed, 4);
    }

    #[test]
    fn bus_pairs_accumulate_channel_busy_time() {
        let mut p = MetricsProbe::new(0);
        p.on_bus_acquire(&BusAcquire {
            at_ns: 100,
            cmd: 1,
            channel: 2,
            waited_ns: 30,
        });
        p.on_bus_release(&BusRelease {
            at_ns: 150,
            cmd: 1,
            channel: 2,
            held_ns: 50,
        });
        p.on_bus_release(&BusRelease {
            at_ns: 300,
            cmd: 2,
            channel: 0,
            held_ns: 70,
        });
        let s = p.summary();
        assert_eq!(s.channels.len(), 3);
        assert_eq!(s.channels[2].busy_ns, 50);
        assert_eq!(s.channels[2].acquires, 1);
        assert_eq!(s.channels[2].bus_wait_ns, 30);
        assert_eq!(s.channels[0].busy_ns, 70);
        assert_eq!(s.channels[1], ChannelMetrics::default());
        // span = 300 - 100; utilization = busy / span.
        let util = s.channel_utilization();
        assert!((util[2] - 50.0 / 200.0).abs() < 1e-12);
        assert!((util[0] - 70.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn gc_counters_and_write_amplification() {
        let mut p = MetricsProbe::new(0);
        p.on_gc_collect(&GcCollect {
            at_ns: 5,
            plane: 0,
            victim_block: 3,
            moved_pages: 6,
            erased_blocks: 1,
            duration_ns: 1_000,
        });
        p.on_gc_collect(&GcCollect {
            at_ns: 9,
            plane: 1,
            victim_block: 7,
            moved_pages: 2,
            erased_blocks: 1,
            duration_ns: 500,
        });
        replay(
            [
                complete(10, 0, CmdClass::Write, false, 10),
                complete(11, 0, CmdClass::Write, false, 10),
            ]
            .iter(),
            &mut p,
        );
        let s = p.summary();
        assert_eq!(s.gc.passes, 2);
        assert_eq!(s.gc.moved_pages, 8);
        assert_eq!(s.gc.erased_blocks, 2);
        assert_eq!(s.gc.busy_ns, 1_500);
        // WA = (2 host + 8 moved) / 2 host = 5.
        assert!((s.write_amplification() - 5.0).abs() < 1e-12);
        assert_eq!(MetricsSummary::default().write_amplification(), 1.0);
    }

    #[test]
    fn timeline_buckets_by_window() {
        let mut p = MetricsProbe::new(100);
        replay(
            [
                issue(10, 0, 0, 3),
                complete(50, 0, CmdClass::Write, false, 40),
                issue(120, 0, 0, 5),
                complete(260, 0, CmdClass::Write, true, 140),
            ]
            .iter(),
            &mut p,
        );
        let s = p.summary();
        assert_eq!(s.timeline.len(), 3);
        assert_eq!(s.timeline[0].start_ns, 0);
        assert_eq!(s.timeline[0].completes, 1);
        assert_eq!(s.timeline[0].queue_depth_samples, 1);
        assert!((s.timeline[0].mean_queue_depth() - 3.0).abs() < 1e-12);
        assert_eq!(s.timeline[1].start_ns, 100);
        assert_eq!(s.timeline[1].queue_depth_samples, 1);
        assert_eq!(s.timeline[2].gc_completes, 1);
        assert_eq!(s.timeline[2].completes, 0);
        // Window 0 disables the timeline entirely.
        let mut off = MetricsProbe::new(0);
        replay([issue(10, 0, 0, 3)].iter(), &mut off);
        assert!(off.summary().timeline.is_empty());
    }

    /// Splitting one event stream across two probes and merging their
    /// summaries equals one probe observing the whole stream.
    #[test]
    fn merge_equals_union_of_streams() {
        let events = [
            issue(10, 0, 0, 3),
            complete(50, 0, CmdClass::Write, false, 40),
            issue(120, 1, 1, 5),
            complete(260, 1, CmdClass::Read, false, 140),
            complete(300, 0, CmdClass::Write, true, 900),
        ];
        let mut whole = MetricsProbe::new(100);
        replay(events.iter(), &mut whole);

        let mut a = MetricsProbe::new(100);
        replay(events[..2].iter(), &mut a);
        let mut b = MetricsProbe::new(100);
        replay(events[2..].iter(), &mut b);
        let mut merged = a.into_summary();
        merged.merge(&b.into_summary());
        assert_eq!(merged, whole.into_summary());

        // Merging into an empty default adopts the other side wholesale.
        let mut empty = MetricsSummary::default();
        empty.merge(&merged);
        assert_eq!(empty, merged);
    }

    /// Offsets re-index shard-local tenants/channels into disjoint global
    /// ranges: two identical one-tenant shards merge into two distinct
    /// global tenants, not one doubled tenant.
    #[test]
    fn merge_offset_keeps_shards_disjoint() {
        let shard = || {
            let mut p = MetricsProbe::new(0);
            replay(
                [
                    issue(10, 0, 0, 1),
                    complete(60, 0, CmdClass::Write, false, 50),
                ]
                .iter(),
                &mut p,
            );
            p.into_summary()
        };
        let mut fleet = MetricsSummary::default();
        fleet.merge_offset(&shard(), 0, 0);
        fleet.merge_offset(&shard(), 4, 8);
        assert_eq!(fleet.tenants.len(), 5);
        assert_eq!(fleet.channels.len(), 9);
        assert_eq!(fleet.tenants[0].write.count, 1);
        assert_eq!(fleet.tenants[4].write.count, 1);
        assert!(fleet.tenants[1..4].iter().all(|t| t.write.count == 0));
        assert_eq!(fleet.channels[0].issues, 1);
        assert_eq!(fleet.channels[8].issues, 1);
        assert_eq!(fleet.events_observed, 4);
        assert_eq!(fleet.host_writes(), 2);
    }

    /// Timelines with mismatched window widths cannot be summed
    /// window-by-window; the merge drops the timeline rather than lie.
    #[test]
    fn merge_with_mismatched_windows_disables_timeline() {
        let probe_with_window = |w: u64| {
            let mut p = MetricsProbe::new(w);
            replay([issue(10, 0, 0, 1)].iter(), &mut p);
            p.into_summary()
        };
        let mut a = probe_with_window(100);
        a.merge(&probe_with_window(200));
        assert_eq!(a.window_ns, 0);
        assert!(a.timeline.is_empty());
        assert_eq!(a.events_observed, 2, "histograms still merged");
    }

    #[test]
    fn into_summary_matches_summary() {
        let mut p = MetricsProbe::new(50);
        replay(
            [
                issue(10, 3, 1, 2),
                complete(70, 3, CmdClass::Read, false, 60),
            ]
            .iter(),
            &mut p,
        );
        assert_eq!(p.summary(), p.clone().into_summary());
        assert_eq!(p.summary().tenants.len(), 4);
    }
}
