//! Latency accounting and end-of-run reports.
//!
//! Latencies are accumulated exactly (count/sum/min/max) and approximately
//! (log₂-bucketed histogram) so reports can print both means — the metric
//! the paper's figures use — and tail percentiles for the extended
//! analyses.

use crate::ftl::wear::WearSummary;
use crate::ftl::FtlStats;

/// Number of log₂ latency buckets (covers 1 ns .. ~584 years).
const BUCKETS: usize = 64;

/// Streaming latency statistics for one class of I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of latencies in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    hist: [u64; BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist: [0; BUCKETS],
        }
    }
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_ns: u64) {
        self.count += 1;
        self.sum_ns += latency_ns;
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
        let bucket = (64 - latency_ns.leading_zeros()) as usize; // ceil(log2)+1, 0 maps to 0
        self.hist[bucket.min(BUCKETS - 1)] += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }

    /// Approximate percentile (0.0..=1.0) from the log₂ histogram; the
    /// upper edge of the bucket containing the quantile is returned, so the
    /// estimate errs high by at most 2×.
    ///
    /// Edge-case contract (shared with [`PhaseHist::percentile`]): an
    /// empty histogram reports 0 for every `q`; out-of-range `q` clamps
    /// into `[0, 1]` (`q < 0` behaves like 0, `q > 1` like 1); a NaN `q`
    /// is treated as 0. No input can panic or index past the last bucket.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_ns
    }
}

/// Decomposition of page-command time into its four phases, summed over
/// commands of one class. This is the quantitative form of the paper's
/// "access conflicts": waiting time at the die/plane and at the channel
/// bus is exactly the interference other requests impose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time spent queued for the execution unit (plane/die).
    pub wait_unit_ns: u64,
    /// Time executing array operations (read/program).
    pub array_ns: u64,
    /// Time holding the unit while queued for the channel bus.
    pub wait_bus_ns: u64,
    /// Time transferring on the bus.
    pub transfer_ns: u64,
    /// Page commands accounted.
    pub cmds: u64,
}

impl LatencyBreakdown {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.wait_unit_ns + self.array_ns + self.wait_bus_ns + self.transfer_ns
    }

    /// Mean per-command waiting time (unit + bus queues), µs.
    pub fn mean_wait_us(&self) -> f64 {
        if self.cmds == 0 {
            0.0
        } else {
            (self.wait_unit_ns + self.wait_bus_ns) as f64 / self.cmds as f64 / 1_000.0
        }
    }

    /// Mean per-command service time (array + transfer), µs.
    pub fn mean_service_us(&self) -> f64 {
        if self.cmds == 0 {
            0.0
        } else {
            (self.array_ns + self.transfer_ns) as f64 / self.cmds as f64 / 1_000.0
        }
    }

    /// Fraction of command time spent waiting — the conflict share.
    pub fn conflict_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            (self.wait_unit_ns + self.wait_bus_ns) as f64 / total as f64
        }
    }
}

/// Number of log₂ buckets in a [`PhaseHist`] (covers 1 ns .. ~2 s, with
/// everything larger clamped into the last bucket). Narrower than
/// [`LatencyStats`] so the always-on per-phase histograms stay small.
pub const PHASE_BUCKETS: usize = 32;

/// Fixed-bucket log₂ histogram for one simulation phase. Unlike
/// [`LatencyStats`] this carries no min/max and a smaller bucket array:
/// it is recorded on the hot path for every page command, so the record
/// cost must be a handful of stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseHist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum_ns: u64,
    /// Log₂ buckets: sample `v` lands in `min(bits(v), 31)` where
    /// `bits(0) = 0`.
    pub buckets: [u64; PHASE_BUCKETS],
}

impl Default for PhaseHist {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            buckets: [0; PHASE_BUCKETS],
        }
    }
}

impl PhaseHist {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum_ns += v;
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket.min(PHASE_BUCKETS - 1)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &PhaseHist) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate percentile (0.0..=1.0) from the log₂ buckets, using the
    /// same convention as [`LatencyStats::percentile_ns`]: the upper edge
    /// `1 << i` of the bucket containing the quantile, so the estimate errs
    /// high by at most 2×. Bucket 0 (samples equal to 0) reports 0, and an
    /// empty histogram reports 0 for every quantile. Samples clamped into
    /// the last bucket report its edge `1 << 31`. Out-of-range and NaN `q`
    /// follow the same contract as [`LatencyStats::percentile_ns`]: clamp
    /// into `[0, 1]`, NaN behaves like 0, never panic.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (PHASE_BUCKETS - 1)
    }
}

/// Where simulated time goes, histogrammed per phase — the report-level
/// aggregation of the probe layer's hook points (see `probe` module docs).
/// Recorded unconditionally: the entries update at the same places the
/// [`LatencyBreakdown`] sums do, reusing already-computed durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Per-command time queued for the execution unit (plane/die).
    pub wait_unit: PhaseHist,
    /// Per-command array operation time (read sense / program).
    pub array: PhaseHist,
    /// Per-command time holding the unit while waiting for the bus.
    pub wait_bus: PhaseHist,
    /// Per-command bus transfer time.
    pub transfer: PhaseHist,
    /// Per-pass GC composite duration.
    pub gc_exec: PhaseHist,
    /// Unit backlog sampled at each command issue (samples, not ns).
    pub queue_depth: PhaseHist,
}

impl PhaseReport {
    /// Merges another phase report into this one.
    pub fn merge(&mut self, other: &PhaseReport) {
        self.wait_unit.merge(&other.wait_unit);
        self.array.merge(&other.array);
        self.wait_bus.merge(&other.wait_bus);
        self.transfer.merge(&other.transfer);
        self.gc_exec.merge(&other.gc_exec);
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// Per-tenant latency breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantReport {
    /// Read-request latencies.
    pub read: LatencyStats,
    /// Write-request latencies.
    pub write: LatencyStats,
}

impl TenantReport {
    /// Reads + writes combined.
    pub fn combined(&self) -> LatencyStats {
        let mut all = self.read.clone();
        all.merge(&self.write);
        all
    }
}

/// End-of-run report for one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-tenant breakdown, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// All read requests across tenants.
    pub read: LatencyStats,
    /// All write requests across tenants.
    pub write: LatencyStats,
    /// All requests.
    pub total: LatencyStats,
    /// FTL counters (GC, write amplification, seeding).
    pub ftl: FtlStats,
    /// Device wear summary.
    pub wear: WearSummary,
    /// Simulated time at which the last command completed.
    pub makespan_ns: u64,
    /// Number of discrete events processed.
    pub events_processed: u64,
    /// Per-channel bus busy time in nanoseconds (index = channel).
    pub bus_busy_ns: Vec<u64>,
    /// Phase decomposition of read page-commands.
    pub read_breakdown: LatencyBreakdown,
    /// Phase decomposition of host write page-commands (GC excluded).
    pub write_breakdown: LatencyBreakdown,
    /// Total die time consumed by GC composite operations.
    pub gc_busy_ns: u64,
    /// Per-phase latency and queue-depth histograms (always collected).
    pub phases: PhaseReport,
}

impl SimReport {
    /// The paper's overall performance metric: mean read latency plus mean
    /// write latency (µs). Lower is better; §III-B sums the two series and
    /// Figure 5(c) reports exactly this as "total response latency".
    pub fn total_latency_metric_us(&self) -> f64 {
        self.read.mean_us() + self.write.mean_us()
    }

    /// Simulation throughput for a run that took `wall` of host time:
    /// discrete events processed per wall-clock second. This is the
    /// tracked perf metric of the `sim_throughput` bench; zero-duration
    /// walls report 0 rather than dividing by zero.
    pub fn events_per_sec(&self, wall: std::time::Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events_processed as f64 / secs
        }
    }

    /// Per-channel bus utilization over the makespan, in `[0, 1]`.
    /// Empty runs report all zeros.
    pub fn bus_utilization(&self) -> Vec<f64> {
        if self.makespan_ns == 0 {
            return vec![0.0; self.bus_busy_ns.len()];
        }
        self.bus_busy_ns
            .iter()
            .map(|&b| b as f64 / self.makespan_ns as f64)
            .collect()
    }

    /// Highest-to-lowest channel utilization ratio; 1.0 means perfectly
    /// balanced buses (∞-free: returns `f64::INFINITY` when some channel
    /// idles completely while another works).
    pub fn bus_imbalance(&self) -> f64 {
        let util = self.bus_utilization();
        let max = util.iter().copied().fold(0.0f64, f64::max);
        let min = util.iter().copied().fold(f64::INFINITY, f64::min);
        if max == 0.0 {
            1.0
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn empty_stats_are_neutral() {
        let s = LatencyStats::new();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.percentile_ns(0.99), 0);
    }

    #[test]
    fn events_per_sec_divides_by_wall_time() {
        let report = SimReport {
            tenants: Vec::new(),
            read: LatencyStats::new(),
            write: LatencyStats::new(),
            total: LatencyStats::new(),
            ftl: Default::default(),
            wear: Default::default(),
            makespan_ns: 0,
            events_processed: 1_000,
            bus_busy_ns: Vec::new(),
            read_breakdown: Default::default(),
            write_breakdown: Default::default(),
            gc_busy_ns: 0,
            phases: Default::default(),
        };
        let rate = report.events_per_sec(std::time::Duration::from_millis(500));
        assert_eq!(rate, 2_000.0);
        assert_eq!(report.events_per_sec(std::time::Duration::ZERO), 0.0);
    }

    #[test]
    fn record_updates_all_fields() {
        let mut s = LatencyStats::new();
        s.record(100);
        s.record(300);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_ns, 400);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert!((s.mean_ns() - 200.0).abs() < 1e-9);
        assert!((s.mean_us() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_accumulators() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(30);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum_ns, 90);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 50);
    }

    #[test]
    fn percentile_brackets_true_value() {
        let mut s = LatencyStats::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            s.record(v);
        }
        let p50 = s.percentile_ns(0.5);
        // True median is 400; bucketed estimate must be within 2x above.
        assert!((400..=800).contains(&p50), "p50 = {p50}");
        let p100 = s.percentile_ns(1.0);
        assert!(p100 >= 100_000);
    }

    #[test]
    fn zero_latency_sample_is_representable() {
        let mut s = LatencyStats::new();
        s.record(0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.percentile_ns(1.0), 0);
    }

    #[test]
    fn tenant_report_combines_classes() {
        let mut t = TenantReport::default();
        t.read.record(10);
        t.write.record(30);
        let c = t.combined();
        assert_eq!(c.count, 2);
        assert_eq!(c.sum_ns, 40);
    }

    /// Percentile is monotone in q and bounded by [min-ish, 2*max].
    #[test]
    fn percentile_monotone() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let samples: Vec<u64> = (0..rng.gen_range(1usize..200))
                .map(|_| rng.gen_range(1u64..1_000_000))
                .collect();
            let mut s = LatencyStats::new();
            for &v in &samples {
                s.record(v);
            }
            let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let ps: Vec<u64> = qs.iter().map(|&q| s.percentile_ns(q)).collect();
            for w in ps.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}");
            }
            assert!(
                ps[ps.len() - 1] <= s.max_ns.next_power_of_two().max(s.max_ns),
                "seed {seed}"
            );
        }
    }

    /// Regression for the percentile edge-case contract: empty histograms
    /// report 0, out-of-range q clamps, NaN q behaves like q = 0, and no
    /// input indexes past the last bucket — for both histogram types.
    #[test]
    fn percentile_edge_cases_never_panic() {
        let empty = LatencyStats::new();
        for q in [f64::NAN, -1.0, -0.0, 0.0, 0.5, 1.0, 2.0, f64::INFINITY] {
            assert_eq!(empty.percentile_ns(q), 0, "empty hist, q = {q}");
            assert_eq!(
                PhaseHist::default().percentile(q),
                0,
                "empty phase, q = {q}"
            );
        }

        let mut s = LatencyStats::new();
        let mut h = PhaseHist::default();
        for v in [100u64, 200, 400, 800] {
            s.record(v);
            h.record(v);
        }
        // q < 0 and NaN clamp to 0; q > 1 (and +inf) clamp to 1.
        assert_eq!(s.percentile_ns(-3.0), s.percentile_ns(0.0));
        assert_eq!(s.percentile_ns(f64::NAN), s.percentile_ns(0.0));
        assert_eq!(s.percentile_ns(7.5), s.percentile_ns(1.0));
        assert_eq!(s.percentile_ns(f64::INFINITY), s.percentile_ns(1.0));
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        assert_eq!(h.percentile(7.5), h.percentile(1.0));

        // Samples in the very last bucket with q past 1 still resolve to
        // the final edge, not an out-of-bounds index.
        let mut top = LatencyStats::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile_ns(99.0), 1u64 << 63);
        let mut ptop = PhaseHist::default();
        ptop.record(u64::MAX);
        assert_eq!(ptop.percentile(99.0), 1u64 << (PHASE_BUCKETS - 1));
    }

    #[test]
    fn phase_hist_records_and_merges() {
        let mut a = PhaseHist::default();
        a.record(0);
        a.record(100);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum_ns, 100);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[7], 1); // 100 needs 7 bits
        assert!((a.mean() - 50.0).abs() < 1e-9);

        // Out-of-range samples clamp into the last bucket.
        a.record(1 << 60);
        assert_eq!(a.buckets[PHASE_BUCKETS - 1], 1);

        let mut b = PhaseHist::default();
        b.record(100);
        b.merge(&a);
        assert_eq!(b.count, 4);
        assert_eq!(b.buckets[7], 2);
        assert_eq!(PhaseHist::default().mean(), 0.0);
    }

    /// Exact percentile values on a hand-built histogram where every
    /// bucket boundary is known.
    #[test]
    fn phase_percentile_exact_on_hand_built_histogram() {
        let mut h = PhaseHist::default();
        // 10 samples of 0 (bucket 0), 10 of 3 (bucket 2, edge 4),
        // 10 of 1000 (bucket 10, edge 1024).
        for _ in 0..10 {
            h.record(0);
            h.record(3);
            h.record(1000);
        }
        assert_eq!(h.percentile(0.0), 0); // target clamps to first sample
        assert_eq!(h.percentile(0.10), 0);
        assert_eq!(h.percentile(1.0 / 3.0), 0); // exactly the 10th sample
        assert_eq!(h.percentile(0.34), 4);
        assert_eq!(h.percentile(2.0 / 3.0), 4);
        assert_eq!(h.percentile(0.67), 1024);
        assert_eq!(h.percentile(1.0), 1024);
        assert_eq!(PhaseHist::default().percentile(0.5), 0);

        // A sample clamped into the last bucket reports its edge.
        let mut big = PhaseHist::default();
        big.record(u64::MAX);
        assert_eq!(big.percentile(1.0), 1u64 << (PHASE_BUCKETS - 1));
    }

    /// Percentile is monotone in q for arbitrary seeded histograms.
    #[test]
    fn phase_percentile_monotone_in_q() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(7_000 + seed);
            let mut h = PhaseHist::default();
            for _ in 0..rng.gen_range(1usize..300) {
                h.record(rng.gen_range(0u64..5_000_000_000));
            }
            let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
            let ps: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
            for w in ps.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: {ps:?}");
            }
        }
    }

    /// The bucketed estimate agrees with a sorted-sample reference to
    /// within one log₂ bucket: true_value <= estimate < 2 * true_value
    /// (with the zero bucket handled exactly).
    #[test]
    fn phase_percentile_within_one_bucket_of_sorted_reference() {
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from_u64(9_000 + seed);
            let samples: Vec<u64> = (0..rng.gen_range(50usize..400))
                .map(|_| rng.gen_range(0u64..2_000_000))
                .collect();
            let mut h = PhaseHist::default();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
                let target = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
                let truth = sorted[target - 1];
                let est = h.percentile(q);
                if truth == 0 {
                    assert_eq!(est, 0, "seed {seed} q {q}");
                } else {
                    assert!(
                        est >= truth && est <= truth.saturating_mul(2),
                        "seed {seed} q {q}: truth {truth}, estimate {est}"
                    );
                }
            }
        }
    }

    #[test]
    fn phase_report_merge_combines_all_phases() {
        let mut a = PhaseReport::default();
        a.wait_unit.record(1);
        a.gc_exec.record(2);
        let mut b = PhaseReport::default();
        b.wait_unit.record(3);
        b.queue_depth.record(4);
        a.merge(&b);
        assert_eq!(a.wait_unit.count, 2);
        assert_eq!(a.gc_exec.count, 1);
        assert_eq!(a.queue_depth.count, 1);
    }

    /// merge(a, b) equals recording the union.
    #[test]
    fn merge_equals_union() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(1000 + seed);
            let xs: Vec<u64> = (0..rng.gen_range(0usize..50))
                .map(|_| rng.gen_range(0u64..1_000_000))
                .collect();
            let ys: Vec<u64> = (0..rng.gen_range(0usize..50))
                .map(|_| rng.gen_range(0u64..1_000_000))
                .collect();
            let mut a = LatencyStats::new();
            for &v in &xs {
                a.record(v);
            }
            let mut b = LatencyStats::new();
            for &v in &ys {
                b.record(v);
            }
            a.merge(&b);
            let mut u = LatencyStats::new();
            for &v in xs.iter().chain(ys.iter()) {
                u.record(v);
            }
            assert_eq!(a, u, "seed {seed}");
        }
    }
}
