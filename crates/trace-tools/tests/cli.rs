//! End-to-end `ssdtrace` CLI contract tests, pinned at the process
//! boundary: exit codes and stderr messages, not library behavior.
//!
//! The contract under test (documented in the binary's header):
//! 0 = success, 1 = regressions found by `diff`, 2 = usage / I/O /
//! decode errors. In particular a missing or unreadable baseline for
//! `diff` must exit 2 with a message naming the offending path — never
//! exit 0 ("no regressions") or panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ssdtrace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ssdtrace"))
        .args(args)
        .output()
        .expect("spawn ssdtrace")
}

/// A scratch path unique to this test process; created fresh per name.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssdtrace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn diff_with_missing_old_report_exits_2_and_names_the_path() {
    let new = scratch("new.json");
    std::fs::write(&new, "{}").unwrap();
    let out = ssdtrace(&["diff", "/no/such/baseline.json", new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("ssdtrace:"), "unprefixed error: {err}");
    assert!(
        err.contains("/no/such/baseline.json"),
        "error must name the missing path: {err}"
    );
}

#[test]
fn diff_with_missing_new_report_exits_2_and_names_the_path() {
    let old = scratch("old.json");
    std::fs::write(&old, "{}").unwrap();
    let out = ssdtrace(&["diff", old.to_str().unwrap(), "/no/such/current.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("/no/such/current.json"));
}

#[test]
fn diff_of_identical_reports_exits_0() {
    // Build a real report through the CLI itself: sample -> summarize --json.
    let cap = scratch("sample.ssdp");
    let gen = ssdtrace(&["sample", cap.to_str().unwrap()]);
    assert_eq!(gen.status.code(), Some(0));
    let summarized = ssdtrace(&["summarize", cap.to_str().unwrap(), "--json"]);
    assert_eq!(summarized.status.code(), Some(0));
    let report = scratch("report.json");
    std::fs::write(&report, &summarized.stdout).unwrap();
    let out = ssdtrace(&["diff", report.to_str().unwrap(), report.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}

#[test]
fn summarize_of_truncated_capture_exits_2_with_decode_error() {
    let cap = scratch("whole.ssdp");
    assert_eq!(
        ssdtrace(&["sample", cap.to_str().unwrap()]).status.code(),
        Some(0)
    );
    let bytes = std::fs::read(&cap).unwrap();
    let cut = scratch("truncated.ssdp");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
    let out = ssdtrace(&["summarize", cut.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("ssdtrace:"));
}

#[test]
fn timeline_of_missing_capture_exits_2() {
    let out = ssdtrace(&["timeline", "/no/such/capture.ssdp"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("/no/such/capture.ssdp"));
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = ssdtrace(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("USAGE"));
}

#[test]
fn live_validates_a_stream_and_extracts_counters() {
    let tel = scratch("tel.ndjson");
    std::fs::write(
        &tel,
        concat!(
            "{\"ssdkeeper_telemetry\":1,\"seq\":0,\"elapsed_ms\":0.5,\"final\":false,\"counters\":{\"sim.events\":100},\"gauges\":{},\"rates\":{\"sim.events\":0.0}}\n",
            "{\"ssdkeeper_telemetry\":1,\"seq\":1,\"elapsed_ms\":9.5,\"final\":true,\"counters\":{\"sim.events\":1234},\"gauges\":{},\"rates\":{\"sim.events\":126000.0}}\n",
        ),
    )
    .unwrap();
    let out = ssdtrace(&["live", tel.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("2 snapshots"), "{text}");
    let val = ssdtrace(&["live", tel.to_str().unwrap(), "--counter", "sim.events"]);
    assert_eq!(val.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&val.stdout).trim(), "1234");
}

#[test]
fn live_rejects_malformed_stream_naming_the_line() {
    let tel = scratch("tel_bad.ndjson");
    std::fs::write(
        &tel,
        "{\"ssdkeeper_telemetry\":1,\"seq\":0,\"elapsed_ms\":0.5,\"final\":true,\"counters\":{},\"gauges\":{},\"rates\":{}}\nnot json\n",
    )
    .unwrap();
    let out = ssdtrace(&["live", tel.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    // Line 1's early final and line 2's garbage are both reportable;
    // either way the error must carry a line number.
    assert!(err.contains("line "), "{err}");
}

#[test]
fn live_of_missing_stream_exits_2() {
    let out = ssdtrace(&["live", "/no/such/telemetry.ndjson"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("/no/such/telemetry.ndjson"));
}

#[test]
fn flame_ranks_and_reemits_folded() {
    let folded = scratch("spans.folded");
    std::fs::write(&folded, "main 1000\nmain;work 900\nmain;work 100\n").unwrap();
    let out = ssdtrace(&["flame", folded.to_str().unwrap(), "--top", "1"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("main;work"), "{text}");
    let re = ssdtrace(&["flame", folded.to_str().unwrap(), "--folded"]);
    assert_eq!(re.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&re.stdout),
        "main 1000\nmain;work 1000\n"
    );
}

#[test]
fn flame_of_empty_input_exits_2() {
    let folded = scratch("empty.folded");
    std::fs::write(&folded, "").unwrap();
    let out = ssdtrace(&["flame", folded.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("empty folded input"));
}
