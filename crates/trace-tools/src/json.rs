//! Minimal JSON reader for `ssdtrace diff`.
//!
//! The workspace is std-only, so this is a small recursive-descent parser
//! covering exactly what the diff inputs need: objects, arrays, strings
//! with the common escapes, numbers, booleans, and null. Numbers are read
//! as `f64` — every metric the diff compares is one. Not a general JSON
//! library: no streaming, no serde-style mapping, input must fit in
//! memory.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Flattens every numeric leaf into `(dotted.path, value)` pairs, arrays
/// indexed numerically (`tenants.0.read.p99_ns`). Order is document
/// order, so output built from the same schema diffs stably.
pub fn flatten_numbers(v: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &Json, path: String, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((path, *n)),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, join(&path, &i.to_string()), out);
            }
        }
        Json::Obj(members) => {
            for (k, item) in members {
                walk(item, join(&path, k), out);
            }
        }
        _ => {}
    }
}

fn join(path: &str, seg: &str) -> String {
    if path.is_empty() {
        seg.to_string()
    } else {
        format!("{path}.{seg}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any diff
                            // input; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            pos: start,
            msg: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema() {
        let doc = r#"{
            "bench": "sim_throughput",
            "baseline": { "events": 90000, "events_per_sec": 567132.1 },
            "phases": { "wait_unit_mean_ns": 1.15e10, "neg": -3 },
            "flags": [true, false, null]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("baseline").unwrap().get("events_per_sec"),
            Some(&Json::Num(567132.1))
        );
        assert_eq!(
            v.get("phases").unwrap().get("neg").unwrap().as_num(),
            Some(-3.0)
        );
        let flat = flatten_numbers(&v);
        assert!(flat.contains(&("baseline.events".to_string(), 90000.0)));
        assert!(flat.contains(&("phases.wait_unit_mean_ns".to_string(), 1.15e10)));
    }

    #[test]
    fn flatten_indexes_arrays() {
        let v = parse(r#"{"tenants": [{"p99_ns": 7}, {"p99_ns": 9}]}"#).unwrap();
        assert_eq!(
            flatten_numbers(&v),
            vec![
                ("tenants.0.p99_ns".to_string(), 7.0),
                ("tenants.1.p99_ns".to_string(), 9.0),
            ]
        );
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        // Quote/backslash/control escapes, a \u escape, and a raw
        // multi-byte UTF-8 character.
        let input = "\"a\\\"b\\\\c\\nd\\u0041é\"";
        let v = parse(input).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndAé".to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{\"a\":1} x",
            "\"unterminated",
            "{\"a\":}",
            "[,]",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn nested_empty_containers() {
        let v = parse(r#"{"a": [], "b": {}, "c": [[]]}"#).unwrap();
        assert_eq!(flatten_numbers(&v), vec![]);
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![])));
    }
}
