//! Offline analysis of probe captures — the library behind `ssdtrace`.
//!
//! A `.ssdp` capture (written by `fig5 --trace-out` or any
//! [`flash_sim::EventRecorder`] user) is decoded and replayed into the
//! same streaming [`MetricsProbe`] a live run would attach, so a summary
//! computed offline from a full capture is identical to one computed
//! online. On top of that this crate provides the three renderers the
//! CLI exposes:
//!
//! * [`render_text`] / [`render_json`] / [`render_csv`] — per-tenant
//!   latency percentiles, per-channel utilization, GC amplification;
//! * [`timeline_csv`] — time-bucketed throughput / queue depth / GC
//!   activity for plotting;
//! * [`diff_docs`] — compare the numeric leaves of two reports (either
//!   two `summarize --json` outputs or two `BENCH_sim.json`), flagging
//!   regressions past a threshold so CI can hold the line;
//! * [`live`] — validate/summarize the NDJSON telemetry streamed by the
//!   obs sampler (`--telemetry` on exp binaries);
//! * [`flame`] — fold, merge, and rank the host-side span stacks the
//!   obs layer exports (`--spans`), flamegraph.pl-compatible.
//!
//! JSON output is byte-deterministic for a given capture: field order is
//! fixed and floats print with pinned precision, which is what lets
//! `scripts/verify.sh` keep a golden summary under `tests/golden/`.

pub mod flame;
pub mod json;
pub mod live;

use flash_sim::metrics::{MetricsProbe, MetricsSummary};
use flash_sim::probe::{decode_events, replay, ProbeCodecError, ProbeEvent};
use flash_sim::{EventRecorder, SimBuilder, SsdConfig, TenantLayout};
use json::{flatten_numbers, Json};
use std::fmt::Write as _;
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// A decoded `.ssdp` capture.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Events, oldest first.
    pub events: Vec<ProbeEvent>,
    /// Events the recorder's ring dropped before the first one here.
    pub dropped: u64,
}

/// Decodes a `.ssdp` byte buffer.
pub fn decode_capture(bytes: &[u8]) -> Result<Capture, ProbeCodecError> {
    decode_events(bytes).map(|(events, dropped)| Capture { events, dropped })
}

/// Replays a capture into a fresh [`MetricsProbe`] and snapshots it.
/// `window_ns == 0` skips the timeline (summaries don't need one).
pub fn summarize(events: &[ProbeEvent], window_ns: u64) -> MetricsSummary {
    let mut probe = MetricsProbe::new(window_ns);
    replay(events, &mut probe);
    probe.into_summary()
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Human-readable summary: percentile table, channel table, GC line.
pub fn render_text(s: &MetricsSummary, dropped: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "capture: {} events ({} dropped before retention), span {:.3} ms",
        s.events_observed,
        dropped,
        s.span_ns() as f64 / 1e6
    );
    if dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: recorder dropped {dropped} events — percentiles and counts below \
             reflect only the retained window"
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:>8} {:>11} {:>10} {:>10} {:>10} {:>11}",
        "tenant", "class", "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"
    );
    for (t, tm) in s.tenants.iter().enumerate() {
        for (class, stats) in [("read", &tm.read), ("write", &tm.write)] {
            if stats.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "t{:<7} {:<6} {:>8} {:>11.1} {:>10.1} {:>10.1} {:>10.1} {:>11.1}",
                t,
                class,
                stats.count,
                stats.mean_us(),
                us(stats.percentile_ns(0.50)),
                us(stats.percentile_ns(0.95)),
                us(stats.percentile_ns(0.99)),
                us(stats.max_ns),
            );
        }
        if tm.gc_cmds > 0 {
            let _ = writeln!(
                out,
                "t{:<7} {:<6} {:>8} {:>11.1}",
                t,
                "gc",
                tm.gc_cmds,
                tm.gc_ns as f64 / tm.gc_cmds as f64 / 1_000.0,
            );
        }
    }
    let _ = writeln!(out);
    let util = s.channel_utilization();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>9} {:>12} {:>8}",
        "channel", "busy_ms", "util", "acquires", "bus_wait_ms", "issues"
    );
    for (c, cm) in s.channels.iter().enumerate() {
        let _ = writeln!(
            out,
            "ch{:<6} {:>10.3} {:>7.1}% {:>9} {:>12.3} {:>8}",
            c,
            cm.busy_ns as f64 / 1e6,
            util[c] * 100.0,
            cm.acquires,
            cm.bus_wait_ns as f64 / 1e6,
            cm.issues,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "gc: {} passes, {} pages moved, {} blocks erased, {:.3} ms busy, write amplification {:.4}",
        s.gc.passes,
        s.gc.moved_pages,
        s.gc.erased_blocks,
        s.gc.busy_ns as f64 / 1e6,
        s.write_amplification(),
    );
    out
}

fn latency_json(out: &mut String, stats: &flash_sim::LatencyStats) {
    let max = if stats.count == 0 { 0 } else { stats.max_ns };
    let _ = write!(
        out,
        "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
        stats.count,
        stats.mean_ns(),
        stats.percentile_ns(0.50),
        stats.percentile_ns(0.95),
        stats.percentile_ns(0.99),
        stats.percentile_ns(0.999),
        max,
    );
}

/// Machine-readable summary with a pinned schema and pinned float
/// precision — byte-deterministic for a given capture.
pub fn render_json(s: &MetricsSummary, dropped: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"ssdtrace\": 1,");
    let _ = writeln!(out, "  \"events\": {},", s.events_observed);
    let _ = writeln!(out, "  \"dropped\": {dropped},");
    let _ = writeln!(out, "  \"span_ns\": {},", s.span_ns());
    let _ = writeln!(out, "  \"tenants\": [");
    for (t, tm) in s.tenants.iter().enumerate() {
        let _ = write!(out, "    {{\"tenant\": {t}, \"read\": ");
        latency_json(&mut out, &tm.read);
        let _ = write!(out, ", \"write\": ");
        latency_json(&mut out, &tm.write);
        let _ = write!(
            out,
            ", \"gc_cmds\": {}, \"gc_ns\": {}}}",
            tm.gc_cmds, tm.gc_ns
        );
        let _ = writeln!(out, "{}", if t + 1 < s.tenants.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"channels\": [");
    let util = s.channel_utilization();
    for (c, cm) in s.channels.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"channel\": {c}, \"busy_ns\": {}, \"utilization\": {:.6}, \"acquires\": {}, \"bus_wait_ns\": {}, \"issues\": {}}}",
            cm.busy_ns, util[c], cm.acquires, cm.bus_wait_ns, cm.issues,
        );
        let _ = writeln!(out, "{}", if c + 1 < s.channels.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"gc\": {{\"passes\": {}, \"moved_pages\": {}, \"erased_blocks\": {}, \"busy_ns\": {}, \"write_amplification\": {:.4}}}",
        s.gc.passes,
        s.gc.moved_pages,
        s.gc.erased_blocks,
        s.gc.busy_ns,
        s.write_amplification(),
    );
    let _ = writeln!(out, "}}");
    out
}

/// Per-tenant latency table as CSV (one row per tenant × class).
pub fn render_csv(s: &MetricsSummary) -> String {
    let mut out = String::from("tenant,class,count,mean_ns,p50_ns,p95_ns,p99_ns,p999_ns,max_ns\n");
    for (t, tm) in s.tenants.iter().enumerate() {
        for (class, stats) in [("read", &tm.read), ("write", &tm.write)] {
            let max = if stats.count == 0 { 0 } else { stats.max_ns };
            let _ = writeln!(
                out,
                "{t},{class},{},{:.1},{},{},{},{},{}",
                stats.count,
                stats.mean_ns(),
                stats.percentile_ns(0.50),
                stats.percentile_ns(0.95),
                stats.percentile_ns(0.99),
                stats.percentile_ns(0.999),
                max,
            );
        }
    }
    out
}

/// Timeline as CSV, one row per window: completions, GC activity, and
/// mean queue depth, plus a completions-per-second rate column.
pub fn timeline_csv(s: &MetricsSummary) -> String {
    let mut out = String::from(
        "window_start_ns,completes,completes_per_sec,gc_completes,gc_passes,mean_queue_depth\n",
    );
    let window_s = s.window_ns as f64 / 1e9;
    for w in &s.timeline {
        let rate = if window_s == 0.0 {
            0.0
        } else {
            w.completes as f64 / window_s
        };
        let _ = writeln!(
            out,
            "{},{},{:.1},{},{},{:.2}",
            w.start_ns,
            w.completes,
            rate,
            w.gc_completes,
            w.gc_passes,
            w.mean_queue_depth(),
        );
    }
    out
}

/// A deterministic miniature capture: two tenants with opposite
/// read/write mixes on a preconditioned 2-channel device small enough to
/// trigger GC within a few hundred requests. `scripts/verify.sh` pipes
/// this through `summarize --json` and byte-compares against the golden
/// in `tests/golden/` — regenerate that file (`ssdtrace sample` +
/// `summarize --json`) whenever the simulator's timing or the probe
/// stream intentionally changes.
pub fn sample_capture() -> Vec<u8> {
    let cfg = SsdConfig {
        blocks_per_plane: 16,
        pages_per_block: 16,
        host_queue_depth: 8,
        ..SsdConfig::small_test()
    };
    let streams: Vec<_> = [(0u16, 0.85, 41u64), (1u16, 0.15, 42u64)]
        .iter()
        .map(|&(tenant, write_ratio, seed)| {
            generate_tenant_stream(
                &TenantSpec::synthetic(format!("t{tenant}"), write_ratio, 30_000.0, 384),
                tenant,
                400,
                seed,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 700);
    let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(384);
    let mut rec = EventRecorder::with_capacity(1 << 16);
    let sim = SimBuilder::new(cfg, layout)
        .precondition(&[0.6, 0.6])
        .probe(&mut rec)
        .build()
        .expect("sample config is valid");
    sim.run(&trace).expect("sample trace runs");
    rec.encode()
}

/// Which direction is "better" for a compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: regressions are increases.
    LowerBetter,
    /// Throughput-like: regressions are decreases.
    HigherBetter,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted path of the metric in both documents.
    pub key: String,
    /// Value in the old document.
    pub old: f64,
    /// Value in the new document.
    pub new: f64,
    /// Relative change, `(new - old) / old` (0 when `old == 0`).
    pub delta: f64,
    /// Better-direction classification.
    pub direction: Direction,
    /// Whether the change is a regression past the threshold.
    pub regressed: bool,
}

/// Result of diffing two reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diff {
    /// Compared metrics, in old-document order.
    pub rows: Vec<DiffRow>,
    /// Keys present in one document but not the other (informational).
    pub unmatched: Vec<String>,
}

impl Diff {
    /// Rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// Human-readable table, regressions marked.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.rows.iter().map(|r| r.key.len()).max().unwrap_or(6);
        let _ = writeln!(
            out,
            "{:<width$} {:>16} {:>16} {:>9}",
            "metric", "old", "new", "delta"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$} {:>16.1} {:>16.1} {:>8.1}%{}",
                r.key,
                r.old,
                r.new,
                r.delta * 100.0,
                if r.regressed { "  << REGRESSION" } else { "" },
            );
        }
        for key in &self.unmatched {
            let _ = writeln!(out, "{key}: present in only one report (skipped)");
        }
        out
    }
}

/// Classifies a flattened metric path, `None` when it is not compared.
/// Latency-like metrics (`*p50*_ns` … `*mean*_ns`, `median_ns`) regress
/// upward; any throughput rate (`*_per_sec` — events, decisions,
/// labels) regresses downward. Everything else — counts, raw busy
/// times, config echoes — is ignored.
pub fn metric_direction(key: &str) -> Option<Direction> {
    if key.ends_with("_per_sec") {
        return Some(Direction::HigherBetter);
    }
    if key.ends_with("_ns")
        && ["p50", "p95", "p99", "p999", "mean", "median"]
            .iter()
            .any(|tag| key.contains(tag))
    {
        return Some(Direction::LowerBetter);
    }
    None
}

/// Diffs the comparable numeric leaves of two parsed reports. A metric
/// regresses when it moves past `threshold` (relative) in its bad
/// direction; a metric whose old value is 0 is compared absolutely
/// (any increase of a latency metric from 0 regresses).
pub fn diff_docs(old: &Json, new: &Json, threshold: f64) -> Diff {
    let old_flat = flatten_numbers(old);
    let new_flat: Vec<(String, f64)> = flatten_numbers(new);
    let mut diff = Diff::default();
    for (key, old_val) in &old_flat {
        let Some(direction) = metric_direction(key) else {
            continue;
        };
        let Some((_, new_val)) = new_flat.iter().find(|(k, _)| k == key) else {
            diff.unmatched.push(key.clone());
            continue;
        };
        let delta = if *old_val == 0.0 {
            0.0
        } else {
            (new_val - old_val) / old_val
        };
        let regressed = match direction {
            Direction::LowerBetter => {
                if *old_val == 0.0 {
                    *new_val > 0.0
                } else {
                    delta > threshold
                }
            }
            Direction::HigherBetter => {
                if *old_val == 0.0 {
                    false
                } else {
                    delta < -threshold
                }
            }
        };
        diff.rows.push(DiffRow {
            key: key.clone(),
            old: *old_val,
            new: *new_val,
            delta,
            direction,
            regressed,
        });
    }
    for (key, _) in &new_flat {
        if metric_direction(key).is_some() && !old_flat.iter().any(|(k, _)| k == key) {
            diff.unmatched.push(key.clone());
        }
    }
    diff
}

/// Parses and diffs two report texts (summary JSON or `BENCH_sim.json`).
pub fn diff_texts(old: &str, new: &str, threshold: f64) -> Result<Diff, json::JsonError> {
    Ok(diff_docs(&json::parse(old)?, &json::parse(new)?, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> (MetricsSummary, u64) {
        let bytes = sample_capture();
        let cap = decode_capture(&bytes).unwrap();
        (summarize(&cap.events, 0), cap.dropped)
    }

    #[test]
    fn sample_capture_summarizes_with_activity_on_every_surface() {
        let (s, dropped) = sample_summary();
        assert_eq!(dropped, 0, "sample recorder must not overflow");
        assert_eq!(s.tenants.len(), 2);
        for (t, tm) in s.tenants.iter().enumerate() {
            assert!(tm.read.count > 0, "tenant {t} saw no reads");
            assert!(tm.write.count > 0, "tenant {t} saw no writes");
        }
        assert!(s.tenants[0].gc_cmds > 0, "write-heavy tenant triggers GC");
        assert_eq!(s.channels.len(), 2);
        assert!(s.channels.iter().all(|c| c.busy_ns > 0));
        assert!(s.gc.passes > 0);
        assert!(s.write_amplification() > 1.0);
        let util = s.channel_utilization();
        assert!(util.iter().all(|&u| u > 0.0 && u <= 1.0), "{util:?}");
    }

    #[test]
    fn sample_capture_is_deterministic() {
        assert_eq!(sample_capture(), sample_capture());
    }

    #[test]
    fn offline_summary_equals_live_aggregation() {
        // Replaying the capture must reproduce exactly what a live
        // MetricsProbe attached to the same run would have aggregated.
        let bytes = sample_capture();
        let cap = decode_capture(&bytes).unwrap();
        let mut live = MetricsProbe::new(1_000_000);
        replay(&cap.events, &mut live);
        let offline = summarize(&cap.events, 1_000_000);
        assert_eq!(live.into_summary(), offline);
        assert!(!offline.timeline.is_empty());
    }

    #[test]
    fn json_rendering_is_valid_and_deterministic() {
        let (s, dropped) = sample_summary();
        let a = render_json(&s, dropped);
        let b = render_json(&s, dropped);
        assert_eq!(a, b);
        let doc = json::parse(&a).expect("render_json emits valid JSON");
        assert_eq!(
            doc.get("events").unwrap().as_num(),
            Some(s.events_observed as f64)
        );
        let tenants = match doc.get("tenants").unwrap() {
            json::Json::Arr(items) => items.clone(),
            other => panic!("tenants not an array: {other:?}"),
        };
        assert_eq!(tenants.len(), 2);
        assert_eq!(
            tenants[0]
                .get("read")
                .unwrap()
                .get("count")
                .unwrap()
                .as_num(),
            Some(s.tenants[0].read.count as f64)
        );
    }

    #[test]
    fn text_and_csv_renderings_cover_all_tenants() {
        let (s, dropped) = sample_summary();
        let text = render_text(&s, dropped);
        assert!(text.contains("t0"));
        assert!(text.contains("ch1"));
        assert!(text.contains("write amplification"));
        let csv = render_csv(&s);
        assert_eq!(csv.lines().count(), 1 + 2 * s.tenants.len());
        assert!(csv.starts_with("tenant,class,count"));
    }

    #[test]
    fn summarize_warns_when_recorder_dropped_events() {
        let (s, _) = sample_summary();
        let clean = render_text(&s, 0);
        assert!(
            !clean.contains("WARNING"),
            "no warning without drops:\n{clean}"
        );
        let lossy = render_text(&s, 37);
        assert!(
            lossy.contains("WARNING: recorder dropped 37 events"),
            "{lossy}"
        );
        // The JSON schema is unchanged either way — drops surface in the
        // existing "dropped" field the golden summary pins.
        assert!(render_json(&s, 37).contains("\"dropped\": 37"));
    }

    #[test]
    fn timeline_csv_has_one_row_per_window() {
        let bytes = sample_capture();
        let cap = decode_capture(&bytes).unwrap();
        let s = summarize(&cap.events, 5_000_000);
        let csv = timeline_csv(&s);
        assert_eq!(csv.lines().count(), 1 + s.timeline.len());
        assert!(s.timeline.len() > 1, "sample spans multiple 5ms windows");
        let total: u64 = s.timeline.iter().map(|w| w.completes).sum();
        assert_eq!(total, s.host_reads() + s.host_writes());
    }

    const OLD_BENCH: &str = r#"{
        "current": { "events": 90000, "median_ns": 15848533, "events_per_sec": 5678759.0 },
        "phases": { "wait_unit_p99_ns": 250000.0, "array_mean_ns": 155000.0, "wait_bus_mean_ns": 0.0 }
    }"#;

    #[test]
    fn diff_passes_when_metrics_hold() {
        let new = r#"{
            "current": { "events": 90000, "median_ns": 15900000, "events_per_sec": 5600000.0 },
            "phases": { "wait_unit_p99_ns": 251000.0, "array_mean_ns": 155000.0, "wait_bus_mean_ns": 0.0 }
        }"#;
        let diff = diff_texts(OLD_BENCH, new, 0.10).unwrap();
        assert_eq!(diff.regressions().count(), 0, "{}", diff.render());
        // Counts like "events" are not compared.
        assert!(!diff.rows.iter().any(|r| r.key == "current.events"));
        // wait_bus has a zero baseline and an unchanged zero value: ok.
        assert!(diff.rows.iter().any(|r| r.key == "phases.wait_bus_mean_ns"));
    }

    #[test]
    fn diff_flags_throughput_and_latency_regressions() {
        let regressed = r#"{
            "current": { "events": 90000, "median_ns": 15848533, "events_per_sec": 4000000.0 },
            "phases": { "wait_unit_p99_ns": 400000.0, "array_mean_ns": 155000.0, "wait_bus_mean_ns": 5000.0 }
        }"#;
        let diff = diff_texts(OLD_BENCH, regressed, 0.10).unwrap();
        let keys: Vec<_> = diff.regressions().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"current.events_per_sec"), "{keys:?}");
        assert!(keys.contains(&"phases.wait_unit_p99_ns"), "{keys:?}");
        // Zero-baseline latency that became nonzero also regresses.
        assert!(keys.contains(&"phases.wait_bus_mean_ns"), "{keys:?}");
        assert!(diff.render().contains("REGRESSION"));
    }

    /// Every `*_per_sec` rate is a gated throughput metric — the
    /// decision and label-farm rows ride the same strict diff as
    /// `events_per_sec` — while counts and config echoes stay ignored.
    #[test]
    fn every_per_sec_rate_is_gated_higher_better() {
        for key in [
            "current.events_per_sec",
            "current.decisions_per_sec",
            "baseline.labels_per_sec",
        ] {
            assert_eq!(
                metric_direction(key),
                Some(Direction::HigherBetter),
                "{key}"
            );
        }
        assert_eq!(metric_direction("current.events"), None);
        assert_eq!(metric_direction("config.batch"), None);
        assert_eq!(
            metric_direction("current.median_ns"),
            Some(Direction::LowerBetter)
        );
    }

    #[test]
    fn diff_improvements_and_thresholds_do_not_flag() {
        let improved = r#"{
            "current": { "events": 90000, "median_ns": 14000000, "events_per_sec": 9000000.0 },
            "phases": { "wait_unit_p99_ns": 100000.0, "array_mean_ns": 155000.0, "wait_bus_mean_ns": 0.0 }
        }"#;
        let diff = diff_texts(OLD_BENCH, improved, 0.10).unwrap();
        assert_eq!(diff.regressions().count(), 0, "{}", diff.render());
        // A 9% slip under a 10% threshold is noise, not a regression …
        let slip = r#"{
            "current": { "events": 90000, "median_ns": 15848533, "events_per_sec": 5200000.0 },
            "phases": { "wait_unit_p99_ns": 250000.0, "array_mean_ns": 155000.0, "wait_bus_mean_ns": 0.0 }
        }"#;
        assert_eq!(
            diff_texts(OLD_BENCH, slip, 0.10)
                .unwrap()
                .regressions()
                .count(),
            0
        );
        // … but past a tighter threshold it is.
        assert_eq!(
            diff_texts(OLD_BENCH, slip, 0.05)
                .unwrap()
                .regressions()
                .count(),
            1
        );
    }

    #[test]
    fn diff_of_two_summaries_compares_tenant_percentiles() {
        let (s, dropped) = sample_summary();
        let base = render_json(&s, dropped);
        let self_diff = diff_texts(&base, &base, 0.10).unwrap();
        assert!(self_diff.rows.len() >= 4, "per-tenant p50/p99 compared");
        assert_eq!(self_diff.regressions().count(), 0);
        assert!(self_diff.unmatched.is_empty());
        // Inject a 3x p99 on tenant 0's reads and expect a flag.
        let p99 = s.tenants[0].read.percentile_ns(0.99);
        let worse = base.replace(
            &format!("\"p99_ns\": {p99}"),
            &format!("\"p99_ns\": {}", p99 * 3),
        );
        assert_ne!(base, worse, "substitution must hit");
        let diff = diff_texts(&base, &worse, 0.10).unwrap();
        assert!(
            diff.regressions().any(|r| r.key.contains("p99_ns")),
            "{}",
            diff.render()
        );
    }

    #[test]
    fn unmatched_keys_are_reported_not_compared() {
        let old = r#"{"a": {"p99_ns": 5}}"#;
        let new = r#"{"b": {"p99_ns": 5}}"#;
        let diff = diff_texts(old, new, 0.10).unwrap();
        assert!(diff.rows.is_empty());
        assert_eq!(diff.unmatched.len(), 2);
    }
}
