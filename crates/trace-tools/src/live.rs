//! `ssdtrace live` — validate and summarize a telemetry NDJSON stream.
//!
//! The stream is produced by the obs sampler (`--telemetry` on the exp
//! binaries): one JSON object per line, `"seq"` increasing from 0,
//! exactly one `"final":true` line at the end. [`parse_stream`] is
//! strict — any unparseable or schema-violating line is an error naming
//! the 1-based line number — because verify.sh uses it as the "every
//! NDJSON line parses" gate.

use crate::json::{self, Json};

/// A validated telemetry stream, summarized.
#[derive(Debug, Clone, Default)]
pub struct LiveSummary {
    /// Number of snapshot lines.
    pub lines: usize,
    /// Whether the stream ends with a `"final":true` snapshot.
    pub final_present: bool,
    /// `elapsed_ms` of the last snapshot.
    pub elapsed_ms: f64,
    /// Counter values from the last snapshot, name-sorted.
    pub counters: Vec<(String, f64)>,
    /// Gauge values from the last snapshot, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Per-counter maximum instantaneous rate (from the stream's
    /// `rates` objects), name-sorted.
    pub max_rates: Vec<(String, f64)>,
}

impl LiveSummary {
    /// The final value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

fn numbers_of(obj: &Json, key: &str, line_no: usize) -> Result<Vec<(String, f64)>, String> {
    let inner = obj
        .get(key)
        .ok_or_else(|| format!("line {line_no}: missing \"{key}\""))?;
    let Json::Obj(members) = inner else {
        return Err(format!("line {line_no}: \"{key}\" is not an object"));
    };
    let mut out = Vec::with_capacity(members.len());
    for (name, v) in members {
        let n = v
            .as_num()
            .ok_or_else(|| format!("line {line_no}: \"{key}.{name}\" is not a number"))?;
        out.push((name.clone(), n));
    }
    Ok(out)
}

/// Parses and validates a whole telemetry stream. Errors name the
/// offending 1-based line.
pub fn parse_stream(text: &str) -> Result<LiveSummary, String> {
    let mut summary = LiveSummary::default();
    let mut max_rates: Vec<(String, f64)> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err("empty stream: no snapshots".into());
    }
    for (i, line) in lines.iter().enumerate() {
        let line_no = i + 1;
        let expected_seq = i as u64;
        let obj = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let version = obj
            .get("ssdkeeper_telemetry")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("line {line_no}: missing \"ssdkeeper_telemetry\""))?;
        if version != 1.0 {
            return Err(format!(
                "line {line_no}: unsupported telemetry version {version}"
            ));
        }
        let seq = obj
            .get("seq")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("line {line_no}: missing \"seq\""))? as u64;
        if seq != expected_seq {
            return Err(format!(
                "line {line_no}: seq {seq}, expected {expected_seq}"
            ));
        }
        let elapsed_ms = obj
            .get("elapsed_ms")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("line {line_no}: missing \"elapsed_ms\""))?;
        let is_final = match obj.get("final") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("line {line_no}: missing \"final\" bool")),
        };
        if is_final && line_no != lines.len() {
            return Err(format!(
                "line {line_no}: \"final\":true before end of stream"
            ));
        }
        let counters = numbers_of(&obj, "counters", line_no)?;
        let gauges = numbers_of(&obj, "gauges", line_no)?;
        for (name, rate) in numbers_of(&obj, "rates", line_no)? {
            match max_rates.iter_mut().find(|(n, _)| *n == name) {
                Some((_, m)) => *m = m.max(rate),
                None => max_rates.push((name, rate)),
            }
        }
        summary.lines = line_no;
        summary.final_present = is_final;
        summary.elapsed_ms = elapsed_ms;
        summary.counters = counters;
        summary.gauges = gauges;
    }
    max_rates.sort_by(|a, b| a.0.cmp(&b.0));
    summary.max_rates = max_rates;
    Ok(summary)
}

/// Human-readable rendering of a validated stream.
pub fn render(s: &LiveSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry: {} snapshots over {:.1} ms ({})",
        s.lines,
        s.elapsed_ms,
        if s.final_present {
            "final snapshot present"
        } else {
            "STREAM TRUNCATED: no final snapshot"
        }
    );
    if s.counters.is_empty() {
        let _ = writeln!(
            out,
            "no counters registered (binary built without host tracing?)"
        );
        return out;
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<28} {:>16} {:>14} {:>14}",
        "counter", "final", "avg/s", "peak/s"
    );
    let secs = (s.elapsed_ms / 1e3).max(1e-9);
    for (name, v) in &s.counters {
        let peak = s
            .max_rates
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .unwrap_or(0.0);
        let _ = writeln!(out, "{name:<28} {v:>16.0} {:>14.0} {peak:>14.0}", v / secs);
    }
    if !s.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<28} {:>16}", "gauge", "final");
        for (name, v) in &s.gauges {
            let _ = writeln!(out, "{name:<28} {v:>16.0}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"ssdkeeper_telemetry\":1,\"seq\":0,\"elapsed_ms\":0.1,\"final\":false,\"counters\":{\"sim.events\":0},\"gauges\":{},\"rates\":{\"sim.events\":0.0}}\n",
        "{\"ssdkeeper_telemetry\":1,\"seq\":1,\"elapsed_ms\":10.0,\"final\":false,\"counters\":{\"sim.events\":500},\"gauges\":{},\"rates\":{\"sim.events\":50000.0}}\n",
        "{\"ssdkeeper_telemetry\":1,\"seq\":2,\"elapsed_ms\":20.0,\"final\":true,\"counters\":{\"sim.events\":900},\"gauges\":{\"fleet.shards_total\":8},\"rates\":{\"sim.events\":40000.0}}\n",
    );

    #[test]
    fn valid_stream_summarizes() {
        let s = parse_stream(GOOD).unwrap();
        assert_eq!(s.lines, 3);
        assert!(s.final_present);
        assert_eq!(s.counter("sim.events"), Some(900.0));
        assert_eq!(s.max_rates, vec![("sim.events".into(), 50000.0)]);
        let text = render(&s);
        assert!(text.contains("3 snapshots"));
        assert!(text.contains("sim.events"));
        assert!(text.contains("final snapshot present"));
    }

    #[test]
    fn truncated_stream_is_flagged_not_errored() {
        let two_lines: String = GOOD.lines().take(2).map(|l| format!("{l}\n")).collect();
        let s = parse_stream(&two_lines).unwrap();
        assert!(!s.final_present);
        assert!(render(&s).contains("STREAM TRUNCATED"));
    }

    #[test]
    fn malformed_line_errors_with_line_number() {
        let bad = format!(
            "{}{{not json\n",
            GOOD.lines().next().unwrap().to_owned() + "\n"
        );
        let err = parse_stream(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn seq_gap_is_an_error() {
        let skipped = GOOD.replace("\"seq\":1", "\"seq\":7");
        let err = parse_stream(&skipped).unwrap_err();
        assert!(err.contains("seq 7, expected 1"), "{err}");
    }

    #[test]
    fn early_final_is_an_error() {
        let early = GOOD.replacen("\"final\":false", "\"final\":true", 1);
        let err = parse_stream(&early).unwrap_err();
        assert!(err.contains("before end of stream"), "{err}");
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(parse_stream("").is_err());
    }
}
