//! `ssdtrace flame` — folded-stack span analysis.
//!
//! Input is the folded format the obs span layer exports (`--spans` on
//! the exp binaries) and flamegraph.pl consumes: one `path value` line
//! per call path, frames joined by `;`, value in nanoseconds. This
//! module merges duplicate paths, computes per-frame *self* time
//! (total minus direct children), and renders a top-N table; the
//! normalized folded form can be re-emitted for flamegraph.pl.

use std::collections::BTreeMap;

/// One call path with its aggregated totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// `;`-joined call path, root first.
    pub path: String,
    /// Total nanoseconds with this path open.
    pub total_ns: u64,
    /// Nanoseconds not attributed to any instrumented child.
    pub self_ns: u64,
}

/// Parsed folded stacks: paths merged and sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    /// Path → total ns, path-sorted.
    pub totals: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// Wall-clock attributed to root frames (paths without `;`) — the
    /// per-thread instrumented coverage denominator.
    pub fn root_ns(&self) -> u64 {
        self.totals
            .iter()
            .filter(|(p, _)| !p.contains(';'))
            .map(|(_, v)| v)
            .sum()
    }

    /// Frames with self time computed: `self = total - Σ direct
    /// children`, saturating (clock jitter can make children sum
    /// slightly past the parent).
    pub fn frames(&self) -> Vec<Frame> {
        let mut child_sum: BTreeMap<&str, u64> = BTreeMap::new();
        for (path, total) in &self.totals {
            if let Some((parent, _)) = path.rsplit_once(';') {
                *child_sum.entry(parent).or_default() += total;
            }
        }
        self.totals
            .iter()
            .map(|(path, &total)| Frame {
                path: path.clone(),
                total_ns: total,
                self_ns: total.saturating_sub(child_sum.get(path.as_str()).copied().unwrap_or(0)),
            })
            .collect()
    }

    /// Canonical folded output: merged, sorted, newline-terminated.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, v) in &self.totals {
            out.push_str(path);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Parses folded-stack text. Duplicate paths are summed. Errors name
/// the 1-based line.
pub fn parse_folded(text: &str) -> Result<FoldedStacks, String> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (path, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: expected `path value`"))?;
        if path.is_empty() {
            return Err(format!("line {line_no}: empty path"));
        }
        let ns: u64 = value
            .parse()
            .map_err(|_| format!("line {line_no}: bad value `{value}`"))?;
        *totals.entry(path.to_string()).or_default() += ns;
    }
    if totals.is_empty() {
        return Err("no stacks: empty folded input (run with --features host-trace?)".into());
    }
    Ok(FoldedStacks { totals })
}

/// Top-N self-time table plus the root coverage line.
pub fn render_top(stacks: &FoldedStacks, top: usize) -> String {
    use std::fmt::Write as _;
    let mut frames = stacks.frames();
    frames.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let root_ns = stacks.root_ns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flame: {} paths, {:.3} ms attributed at the roots",
        stacks.totals.len(),
        root_ns as f64 / 1e6
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>7}  path",
        "self_ms", "total_ms", "self%"
    );
    let denom = root_ns.max(1) as f64;
    for f in frames.iter().take(top) {
        let _ = writeln!(
            out,
            "{:<12.3} {:>12.3} {:>6.1}%  {}",
            f.self_ns as f64 / 1e6,
            f.total_ns as f64 / 1e6,
            100.0 * f.self_ns as f64 / denom,
            f.path
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
fleet_shard 1000\n\
fleet_shard;keeper_run 800\n\
fleet_shard;keeper_run;backend_sim 600\n\
fleet_shard;keeper_run;backend_sim;sim_run 500\n\
sim_run 200\n";

    #[test]
    fn parse_merges_and_sorts() {
        let doubled = format!("{SAMPLE}fleet_shard 50\n");
        let s = parse_folded(&doubled).unwrap();
        assert_eq!(s.totals["fleet_shard"], 1050);
        assert_eq!(s.root_ns(), 1250);
        let folded = s.folded();
        assert!(folded.starts_with("fleet_shard 1050\n"));
        assert_eq!(parse_folded(&folded).unwrap(), s);
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let s = parse_folded(SAMPLE).unwrap();
        let frames = s.frames();
        let by_path = |p: &str| frames.iter().find(|f| f.path == p).unwrap();
        assert_eq!(by_path("fleet_shard").self_ns, 200);
        assert_eq!(by_path("fleet_shard;keeper_run").self_ns, 200);
        assert_eq!(by_path("fleet_shard;keeper_run;backend_sim").self_ns, 100);
        assert_eq!(
            by_path("fleet_shard;keeper_run;backend_sim;sim_run").self_ns,
            500
        );
        assert_eq!(by_path("sim_run").self_ns, 200);
        // Self times of a thread's frames sum to the root total.
        let total_self: u64 = frames
            .iter()
            .filter(|f| f.path.starts_with("fleet_shard"))
            .map(|f| f.self_ns)
            .sum();
        assert_eq!(total_self, 1000);
    }

    #[test]
    fn children_exceeding_parent_saturate() {
        let s = parse_folded("a 10\na;b 25\n").unwrap();
        let frames = s.frames();
        assert_eq!(frames.iter().find(|f| f.path == "a").unwrap().self_ns, 0);
    }

    #[test]
    fn render_orders_by_self_time() {
        let s = parse_folded(SAMPLE).unwrap();
        let text = render_top(&s, 2);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("5 paths"));
        assert!(
            lines[3].ends_with("fleet_shard;keeper_run;backend_sim;sim_run"),
            "{text}"
        );
        assert_eq!(lines.len(), 5, "top 2 rows only:\n{text}");
    }

    #[test]
    fn bad_lines_error_with_line_number() {
        assert!(parse_folded("").is_err());
        let err = parse_folded("a 10\nnope\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_folded("a ten\n").unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }
}
