//! `ssdtrace` — analyze `.ssdp` probe captures and diff perf reports.
//!
//! ```text
//! ssdtrace summarize <capture.ssdp> [--json|--csv] [--window-ns N]
//! ssdtrace timeline  <capture.ssdp> [--window-ns N]
//! ssdtrace diff      <old.json> <new.json> [--threshold FRAC]
//! ssdtrace sample    <out.ssdp>
//! ssdtrace live      <telemetry.ndjson> [--counter NAME]
//! ssdtrace flame     <spans.folded> [--top N] [--folded]
//! ```
//!
//! Exit codes: 0 success (and no regressions for `diff`), 1 regressions
//! found, 2 usage / I/O / decode errors.

use trace_tools::{
    decode_capture, diff_texts, flame, live, render_csv, render_json, render_text, sample_capture,
    summarize, timeline_csv,
};

const USAGE: &str = "\
ssdtrace — analyze SSDP probe captures and diff perf reports

USAGE:
    ssdtrace summarize <capture.ssdp> [--json|--csv] [--window-ns N]
        Per-tenant latency percentiles, per-channel utilization, and GC
        amplification. Default output is a text table.

    ssdtrace timeline <capture.ssdp> [--window-ns N]
        Time-bucketed CSV of throughput, queue depth, and GC activity.
        Default window: 10000000 ns (10 ms).

    ssdtrace diff <old> <new> [--threshold FRAC]
        Compare two reports (summarize --json output or BENCH_sim.json).
        Latency percentiles/means regress upward, events_per_sec
        regresses downward; past FRAC (default 0.10) the exit code is 1.

    ssdtrace sample <out.ssdp>
        Write the deterministic miniature capture the golden-summary
        check in scripts/verify.sh is built on.

    ssdtrace live <telemetry.ndjson> [--counter NAME]
        Validate an obs telemetry stream (every line must parse, seqs
        contiguous, final snapshot last) and summarize final counter
        values with average/peak rates. --counter prints only that
        counter's final value, for scripting.

    ssdtrace flame <spans.folded> [--top N] [--folded]
        Rank host-side spans by self time (default top 15) from a
        folded-stack file (exp --spans PATH). --folded re-emits the
        merged stacks in flamegraph.pl format instead.
";

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("ssdtrace: {msg}");
    2
}

fn load_summary_input(path: &str, window_ns: u64) -> Result<(flash_sim::MetricsSummary, u64), i32> {
    let bytes = std::fs::read(path).map_err(|e| fail(format_args!("{path}: {e}")))?;
    let cap = decode_capture(&bytes).map_err(|e| fail(format_args!("{path}: {e}")))?;
    Ok((summarize(&cap.events, window_ns), cap.dropped))
}

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, i32> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(fail(format_args!("{flag} needs a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        value
            .parse::<T>()
            .map(Some)
            .map_err(|_| fail(format_args!("invalid {flag} value: {value}")))
    } else {
        Ok(None)
    }
}

fn run(mut args: Vec<String>) -> i32 {
    let Some(cmd) = args.first().cloned() else {
        eprint!("{USAGE}");
        return 2;
    };
    args.remove(0);
    match cmd.as_str() {
        "summarize" => {
            let window_ns = match parse_flag::<u64>(&mut args, "--window-ns") {
                Ok(v) => v.unwrap_or(0),
                Err(code) => return code,
            };
            let json = args.iter().any(|a| a == "--json");
            let csv = args.iter().any(|a| a == "--csv");
            args.retain(|a| a != "--json" && a != "--csv");
            let [path] = args.as_slice() else {
                return fail("summarize takes exactly one capture path");
            };
            if json && csv {
                return fail("--json and --csv are mutually exclusive");
            }
            let (summary, dropped) = match load_summary_input(path, window_ns) {
                Ok(v) => v,
                Err(code) => return code,
            };
            if json {
                print!("{}", render_json(&summary, dropped));
            } else if csv {
                print!("{}", render_csv(&summary));
            } else {
                print!("{}", render_text(&summary, dropped));
            }
            0
        }
        "timeline" => {
            let window_ns = match parse_flag::<u64>(&mut args, "--window-ns") {
                Ok(v) => v.unwrap_or(10_000_000),
                Err(code) => return code,
            };
            if window_ns == 0 {
                return fail("--window-ns must be nonzero for timeline");
            }
            let [path] = args.as_slice() else {
                return fail("timeline takes exactly one capture path");
            };
            match load_summary_input(path, window_ns) {
                Ok((summary, _)) => {
                    print!("{}", timeline_csv(&summary));
                    0
                }
                Err(code) => code,
            }
        }
        "diff" => {
            let threshold = match parse_flag::<f64>(&mut args, "--threshold") {
                Ok(v) => v.unwrap_or(0.10),
                Err(code) => return code,
            };
            if !(0.0..=10.0).contains(&threshold) {
                return fail("--threshold must be a fraction like 0.10");
            }
            let [old_path, new_path] = args.as_slice() else {
                return fail("diff takes exactly two report paths");
            };
            let old = match std::fs::read_to_string(old_path) {
                Ok(t) => t,
                Err(e) => return fail(format_args!("{old_path}: {e}")),
            };
            let new = match std::fs::read_to_string(new_path) {
                Ok(t) => t,
                Err(e) => return fail(format_args!("{new_path}: {e}")),
            };
            let diff = match diff_texts(&old, &new, threshold) {
                Ok(d) => d,
                Err(e) => return fail(e),
            };
            print!("{}", diff.render());
            let regressions = diff.regressions().count();
            if regressions > 0 {
                eprintln!(
                    "ssdtrace: {regressions} regression(s) past {:.0}% threshold",
                    threshold * 100.0
                );
                1
            } else {
                0
            }
        }
        "live" => {
            let counter = match parse_flag::<String>(&mut args, "--counter") {
                Ok(v) => v,
                Err(code) => return code,
            };
            let [path] = args.as_slice() else {
                return fail("live takes exactly one telemetry path");
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            let summary = match live::parse_stream(&text) {
                Ok(s) => s,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            match counter {
                Some(name) => match summary.counter(&name) {
                    Some(v) => {
                        println!("{v:.0}");
                        0
                    }
                    None => fail(format_args!("{path}: no counter named `{name}`")),
                },
                None => {
                    print!("{}", live::render(&summary));
                    0
                }
            }
        }
        "flame" => {
            let top = match parse_flag::<usize>(&mut args, "--top") {
                Ok(v) => v.unwrap_or(15),
                Err(code) => return code,
            };
            let emit_folded = args.iter().any(|a| a == "--folded");
            args.retain(|a| a != "--folded");
            let [path] = args.as_slice() else {
                return fail("flame takes exactly one folded-stack path");
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            let stacks = match flame::parse_folded(&text) {
                Ok(s) => s,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            if emit_folded {
                print!("{}", stacks.folded());
            } else {
                print!("{}", flame::render_top(&stacks, top));
            }
            0
        }
        "sample" => {
            let [path] = args.as_slice() else {
                return fail("sample takes exactly one output path");
            };
            match std::fs::write(path, sample_capture()) {
                Ok(()) => 0,
                Err(e) => fail(format_args!("{path}: {e}")),
            }
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            0
        }
        other => fail(format_args!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}
