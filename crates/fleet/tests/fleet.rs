//! Fleet-level integration: determinism across worker counts, placement
//! sanity, the re-placement hook, and error surfacing.

use fleet::{run_fleet, FleetConfig, FleetError, StreamMode};
use parallel::PoolConfig;
use ssdkeeper::placement::DEVICE_SLOTS;

#[test]
fn smoke_scenario_runs_and_merges() {
    let outcome = run_fleet(&FleetConfig::smoke(7)).expect("smoke fleet runs");
    let cfg = FleetConfig::smoke(7);
    assert_eq!(outcome.summary.shards.len(), cfg.devices);
    // Every device hosts at least one tenant (tenants >= devices and the
    // packer fills empty bins first), and no slot exceeds the model cap.
    for shard in &outcome.summary.shards {
        assert!(!shard.slot_tenants.is_empty(), "device {}", shard.device);
        assert!(shard.slot_tenants.len() <= DEVICE_SLOTS);
        assert!(shard.events_processed > 0);
    }
    // All tenants placed exactly once.
    let placed: usize = (0..cfg.devices)
        .map(|d| outcome.placement.device_tenants(d).len())
        .sum();
    assert_eq!(placed, cfg.tenants);
    // The merged summary spans the global tenant/channel index ranges
    // and carries every host command of every shard.
    let merged_cmds: u64 =
        outcome.summary.merged.host_reads() + outcome.summary.merged.host_writes();
    let shard_cmds: u64 = outcome
        .summary
        .shards
        .iter()
        .map(|s| s.metrics.host_reads() + s.metrics.host_writes())
        .sum();
    assert_eq!(merged_cmds, shard_cmds);
    assert!(merged_cmds > 0);
    assert_eq!(
        outcome.summary.merged.channels.len(),
        cfg.devices * cfg.ssd.channels
    );
    // Shard-tagged timeline rows exist for every shard.
    let csv = outcome.summary.tagged_timeline_csv();
    for d in 0..cfg.devices {
        assert!(
            csv.lines().any(|l| l.starts_with(&format!("{d},"))),
            "no timeline rows for shard {d}"
        );
    }
}

/// The acceptance gate: one fleet seed, 1 vs 4 vs 8 workers — the merged
/// digest (and in fact the whole outcome) must be byte-identical.
#[test]
fn digest_is_identical_across_1_4_8_workers() {
    let outcome_at = |workers: usize| {
        run_fleet(&FleetConfig {
            pool: PoolConfig::with_workers(workers),
            ..FleetConfig::smoke(42)
        })
        .expect("fleet runs")
    };
    let w1 = outcome_at(1);
    let w4 = outcome_at(4);
    let w8 = outcome_at(8);
    assert_eq!(w1.summary.digest(), w4.summary.digest());
    assert_eq!(w1.summary.digest(), w8.summary.digest());
    assert_eq!(w1, w4);
    assert_eq!(w1, w8);
}

/// Satellite gate: the lazy stream path (regenerate per shard, never
/// hold the whole fleet's traffic) must be byte-identical to the eager
/// reference — digest and full outcome — including across worker counts
/// and with the re-placement hook firing.
#[test]
fn lazy_and_eager_streams_produce_identical_digests() {
    let cfg_at = |mode: StreamMode, workers: usize| FleetConfig {
        stream_mode: mode,
        tail_threshold: 1.01,
        max_replacements: 2,
        pool: PoolConfig::with_workers(workers),
        ..FleetConfig::smoke(42)
    };
    assert_eq!(
        FleetConfig::smoke(42).stream_mode,
        StreamMode::Lazy,
        "lazy is the default"
    );
    let lazy = run_fleet(&cfg_at(StreamMode::Lazy, 4)).expect("lazy fleet runs");
    let eager = run_fleet(&cfg_at(StreamMode::Eager, 4)).expect("eager fleet runs");
    assert_eq!(lazy.summary.digest(), eager.summary.digest());
    assert_eq!(lazy, eager);
    let lazy_w1 = run_fleet(&cfg_at(StreamMode::Lazy, 1)).expect("lazy fleet runs");
    assert_eq!(lazy.summary.digest(), lazy_w1.summary.digest());
}

/// Forcing an aggressive drift threshold exercises the re-placement
/// hook; its decisions must also be worker-count independent, and moved
/// tenants must actually change device.
#[test]
fn replacement_hook_is_deterministic_and_moves_tenants() {
    let cfg_at = |workers: usize| FleetConfig {
        tail_threshold: 1.01,
        max_replacements: 3,
        pool: PoolConfig::with_workers(workers),
        ..FleetConfig::smoke(3)
    };
    let a = run_fleet(&cfg_at(1)).expect("fleet runs");
    let b = run_fleet(&cfg_at(6)).expect("fleet runs");
    assert_eq!(a.replacements, b.replacements);
    assert_eq!(a.summary.digest(), b.summary.digest());
    assert!(
        !a.replacements.is_empty(),
        "a 1.01x drift bound must trigger at least one move"
    );
    for r in &a.replacements {
        assert_ne!(r.from, r.to);
    }
    let base = run_fleet(&FleetConfig {
        max_replacements: 0,
        ..cfg_at(1)
    })
    .expect("fleet runs");
    assert_ne!(
        base.summary.digest(),
        a.summary.digest(),
        "re-placement must change the outcome"
    );
}

#[test]
fn invalid_shapes_are_rejected() {
    let err = run_fleet(&FleetConfig::new(1, 3, 8)).unwrap_err();
    assert!(matches!(
        err,
        FleetError::Shape {
            tenants: 3,
            devices: 8
        }
    ));
    assert!(err.to_string().contains("3 tenants"));
    let mut cfg = FleetConfig::smoke(1);
    cfg.requests_per_tenant = 0;
    assert!(run_fleet(&cfg).is_err());
}
