//! Fleet-level result aggregation.
//!
//! Each shard produces a [`flash_sim::MetricsSummary`] with *local*
//! tenant (slot) and channel indices. The fleet summary re-indexes them
//! into disjoint global ranges and merges bucket-wise via
//! [`MetricsSummary::merge_offset`]: global tenant `d * DEVICE_SLOTS + s`
//! is slot `s` of device `d`, global channel `d * channels + c` is
//! channel `c` of device `d`. The merged summary is an ordinary
//! `MetricsSummary`, so every `ssdtrace` renderer (text/JSON/CSV) applies
//! to a fleet run unchanged.
//!
//! Timelines are kept both ways: merged window-by-window inside
//! [`FleetSummary::merged`] (all shards share one simulated clock
//! starting at 0), and per shard — tagged with the device id — via
//! [`FleetSummary::tagged_timeline_csv`].

use flash_sim::MetricsSummary;
use ssdkeeper::placement::DEVICE_SLOTS;
use ssdkeeper::Strategy;

/// One shard's contribution to the fleet summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Device (= shard) index.
    pub device: usize,
    /// Channel-allocation strategy the per-device keeper settled on.
    pub strategy: Strategy,
    /// Fleet tenant ids per namespace slot (dense prefix).
    pub slot_tenants: Vec<Vec<usize>>,
    /// The shard's local metrics summary (slot-indexed tenants).
    pub metrics: MetricsSummary,
    /// Discrete events the shard's simulator processed.
    pub events_processed: u64,
    /// Simulated completion time of the shard.
    pub makespan_ns: u64,
}

/// Merged view of a whole fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Bucket-wise merge of every shard, globally re-indexed (see the
    /// module docs for the index mapping).
    pub merged: MetricsSummary,
    /// Per-shard summaries, ascending by device id.
    pub shards: Vec<ShardSummary>,
    /// Channels per device (the global channel stride).
    pub channels_per_device: usize,
}

impl FleetSummary {
    /// Merges shard summaries (must be ascending by device id).
    pub fn from_shards(shards: Vec<ShardSummary>, channels_per_device: usize) -> Self {
        let mut merged = MetricsSummary::default();
        for shard in &shards {
            merged.merge_offset(
                &shard.metrics,
                shard.device * DEVICE_SLOTS,
                shard.device * channels_per_device,
            );
        }
        Self {
            merged,
            shards,
            channels_per_device,
        }
    }

    /// Discrete events processed across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Longest shard makespan — the fleet's simulated completion time
    /// (shards run concurrently in simulated time).
    pub fn makespan_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.makespan_ns).max().unwrap_or(0)
    }

    /// FNV-1a over the `Debug` rendering of the merged summary and every
    /// shard summary: every histogram bucket, counter, strategy choice,
    /// and timeline window participates, so two fleet runs digest equal
    /// iff their results are byte-identical. This is the value the
    /// determinism gate compares across worker counts.
    pub fn digest(&self) -> u64 {
        let text = format!("{:?}{:?}", self.merged, self.shards);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Shard-tagged timeline concatenation: one CSV row per (shard,
    /// window), shards in device order, windows oldest first.
    pub fn tagged_timeline_csv(&self) -> String {
        let mut out = String::from(
            "shard,window_start_ns,completes,gc_completes,gc_passes,mean_queue_depth\n",
        );
        for shard in &self.shards {
            for w in &shard.metrics.timeline {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.3}\n",
                    shard.device,
                    w.start_ns,
                    w.completes,
                    w.gc_completes,
                    w.gc_passes,
                    w.mean_queue_depth()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::metrics::{MetricsProbe, TenantMetrics};
    use flash_sim::probe::{replay, CmdComplete, ProbeEvent};
    use flash_sim::scheduler::CmdClass;

    fn shard(device: usize, latency_ns: u64) -> ShardSummary {
        let mut p = MetricsProbe::new(100);
        replay(
            [ProbeEvent::CmdComplete(CmdComplete {
                at_ns: 10,
                cmd: 1,
                tenant: 0,
                class: CmdClass::Write,
                gc: false,
                unit: 0,
                channel: 0,
                latency_ns,
            })]
            .iter(),
            &mut p,
        );
        ShardSummary {
            device,
            strategy: Strategy::Shared,
            slot_tenants: vec![vec![device]],
            metrics: p.into_summary(),
            events_processed: 5,
            makespan_ns: 100 * (device as u64 + 1),
        }
    }

    #[test]
    fn shards_merge_into_disjoint_global_tenants() {
        let fs = FleetSummary::from_shards(vec![shard(0, 50), shard(1, 70)], 8);
        assert_eq!(fs.merged.tenants.len(), DEVICE_SLOTS + 1);
        assert_eq!(fs.merged.tenants[0].write.count, 1);
        assert_eq!(fs.merged.tenants[DEVICE_SLOTS].write.count, 1);
        assert_eq!(
            fs.merged.tenants[1],
            TenantMetrics::default(),
            "no cross-shard conflation"
        );
        assert_eq!(fs.total_events(), 10);
        assert_eq!(fs.makespan_ns(), 200);
        // Timelines merged window-by-window in the global view...
        assert_eq!(fs.merged.timeline[0].completes, 2);
        // ...and concatenated with shard tags in the CSV.
        let csv = fs.tagged_timeline_csv();
        assert!(csv.starts_with("shard,"));
        assert!(csv.contains("\n0,0,1,"));
        assert!(csv.contains("\n1,0,1,"));
    }

    #[test]
    fn digest_is_sensitive_to_any_shard() {
        let a = FleetSummary::from_shards(vec![shard(0, 50), shard(1, 70)], 8);
        let b = FleetSummary::from_shards(vec![shard(0, 50), shard(1, 71)], 8);
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(a.digest(), b.digest());
    }
}
