//! `fleet` — fleet-scale sharded SSD simulation under a two-tier keeper.
//!
//! The paper's keeper manages one SSD. This crate scales it out: a fleet
//! of M independent device shards, each a full [`flash_sim::Simulator`]
//! driven by its own per-device [`ssdkeeper::Keeper`], with a fleet-tier
//! placement policy above them deciding *which device hosts which
//! tenant* before any per-device channel partitioning happens — the
//! two-tier version of Algorithm 2:
//!
//! * **Tier 1 (fleet keeper)** — [`ssdkeeper::placement::FleetPlacer`]
//!   bin-packs tenants onto device namespace slots by predicted
//!   intensity (the same observation-window signal the per-device
//!   features collector quantizes), and re-places the hottest tenant of
//!   a device whose observed tail latency drifts past a threshold.
//! * **Tier 2 (device keeper)** — each shard runs
//!   `Keeper::run(RunSpec::adapt_once(..).with_metrics())`: observe
//!   under `Shared`, predict a channel strategy, re-allocate mid-run.
//!
//! Shards fan out over [`parallel::par_map`] worker threads. Every
//! random decision derives from one fleet seed via the [`seed`] rule, so
//! the merged result is **byte-identical for any worker count** — the
//! [`FleetSummary::digest`] of a run is a pure function of the
//! [`FleetConfig`]. Per-shard metrics merge into one
//! `ssdtrace`-compatible summary (see [`summary`]).

#![warn(missing_docs)]

pub mod seed;
pub mod summary;

use ann::{Activation, Network};
use flash_sim::{IoRequest, SimArena, SsdConfig};
use parallel::{par_map, par_map_init, PoolConfig};
use simrng::{Rng, SimRng};
use ssdkeeper::placement::{FleetPlacer, Placement, TenantLoad};
use ssdkeeper::{ChannelAllocator, Keeper, KeeperConfig, KeeperError, RunSpec};
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

pub use summary::{FleetSummary, ShardSummary};

/// How the fleet materializes tenant request streams.
///
/// Streams are a pure function of `(fleet_seed, tenant)` via the
/// [`seed`] rule, so regenerating one on demand yields the same bytes as
/// keeping it resident — the merged digest is identical in both modes
/// (pinned by `lazy_and_eager_streams_produce_identical_digests`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// Generate each stream on demand: once to observe its placement
    /// window, then again inside the shard that hosts it. Peak memory is
    /// one shard's traffic instead of the whole fleet's (a 1000-tenant
    /// run no longer holds 1000 streams at once).
    #[default]
    Lazy,
    /// Materialize every stream up front. Trades the fleet's full
    /// traffic in memory for generating each stream once; kept as the
    /// byte-identity reference for the lazy path.
    Eager,
}

/// Everything that determines a fleet run. Two equal configs produce
/// byte-identical [`FleetOutcome`]s, regardless of `pool`.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Root of the seed-derivation tree (see [`seed`]).
    pub fleet_seed: u64,
    /// Fleet tenants to generate and place. Must be ≥ `devices`.
    pub tenants: usize,
    /// Device shards. Each is an independent simulator.
    pub devices: usize,
    /// Requests generated per tenant stream.
    pub requests_per_tenant: usize,
    /// Logical pages per tenant (slots hosting k tenants span k× this).
    pub lpn_space_per_tenant: u64,
    /// Hardware model of every device in the fleet.
    pub ssd: SsdConfig,
    /// IOPS scale handed to the allocator's intensity quantizer.
    pub max_total_iops: f64,
    /// Observation window for both tiers: tier 1 reads each tenant's
    /// first window to predict intensity; tier 2 passes it to the
    /// keeper as `observe_window_ns` (also the metrics timeline width).
    pub observe_window_ns: u64,
    /// Worker threads for the shard fan-out. Results never depend on it.
    pub pool: PoolConfig,
    /// Stream residency policy. Results never depend on it either.
    pub stream_mode: StreamMode,
    /// Re-placement trigger: a device whose tail (p99) latency exceeds
    /// `tail_threshold ×` the fleet median gets its hottest tenant moved.
    pub tail_threshold: f64,
    /// Upper bound on re-placement rounds (0 disables the hook).
    pub max_replacements: usize,
}

impl FleetConfig {
    /// A fleet of `devices` shards hosting `tenants` tenants, with the
    /// sweep-scaled device geometry and moderate per-tenant traffic.
    pub fn new(fleet_seed: u64, tenants: usize, devices: usize) -> Self {
        Self {
            fleet_seed,
            tenants,
            devices,
            requests_per_tenant: 1_500,
            lpn_space_per_tenant: 1 << 10,
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            max_total_iops: 120_000.0,
            observe_window_ns: 50_000_000,
            pool: PoolConfig::auto(),
            stream_mode: StreamMode::Lazy,
            tail_threshold: 2.0,
            max_replacements: 1,
        }
    }

    /// The tracked `fleet_1k` scenario: 1000 tenants across 64 devices.
    pub fn scenario_1k(fleet_seed: u64) -> Self {
        Self::new(fleet_seed, 1_000, 64)
    }

    /// A small scenario for tests and the verify-gate determinism check:
    /// quick at one worker, still multi-tenant per slot.
    pub fn smoke(fleet_seed: u64) -> Self {
        Self {
            requests_per_tenant: 300,
            ..Self::new(fleet_seed, 48, 8)
        }
    }

    /// Checks structural sanity; [`run_fleet`] refuses invalid configs.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.devices == 0 || self.tenants < self.devices {
            return Err(FleetError::Shape {
                tenants: self.tenants,
                devices: self.devices,
            });
        }
        if self.requests_per_tenant == 0 || self.lpn_space_per_tenant == 0 {
            return Err(FleetError::Shape {
                tenants: self.tenants,
                devices: self.devices,
            });
        }
        Ok(())
    }
}

/// One tenant-move made by the re-placement hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replacement {
    /// Re-placement round (0-based).
    pub round: usize,
    /// Fleet tenant id that moved.
    pub tenant: usize,
    /// Device it left.
    pub from: usize,
    /// Device it joined.
    pub to: usize,
}

/// Result of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Merged + per-shard summaries (the digest lives here).
    pub summary: FleetSummary,
    /// Final tenant → (device, slot) placement.
    pub placement: Placement,
    /// Tenant moves the tail-drift hook performed, in order.
    pub replacements: Vec<Replacement>,
}

/// Errors a fleet run can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Impossible fleet shape (zero devices, tenants < devices, …).
    Shape {
        /// Configured tenant count.
        tenants: usize,
        /// Configured device count.
        devices: usize,
    },
    /// A per-device keeper session failed.
    Keeper(KeeperError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Shape { tenants, devices } => write!(
                f,
                "invalid fleet shape: {tenants} tenants across {devices} devices \
                 (need devices >= 1, tenants >= devices, nonzero traffic)"
            ),
            FleetError::Keeper(e) => write!(f, "per-device keeper failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<KeeperError> for FleetError {
    fn from(e: KeeperError) -> Self {
        FleetError::Keeper(e)
    }
}

/// Deterministic per-tenant workload profile drawn from the fleet seed.
fn tenant_spec(cfg: &FleetConfig, tenant: usize) -> TenantSpec {
    let mut rng = SimRng::seed_from_u64(seed::derive(
        cfg.fleet_seed,
        seed::DOMAIN_PROFILE,
        tenant as u64,
    ));
    let write_ratio = rng.gen_range(0.05f64..0.95);
    let iops = rng.gen_range(5_000.0f64..40_000.0);
    TenantSpec::synthetic(
        format!("t{tenant}"),
        write_ratio,
        iops,
        cfg.lpn_space_per_tenant,
    )
}

/// Generates one tenant's request stream from the fleet seed alone —
/// the pure function both [`StreamMode`]s evaluate.
fn tenant_stream(cfg: &FleetConfig, tenant: usize) -> Vec<IoRequest> {
    let spec = tenant_spec(cfg, tenant);
    generate_tenant_stream(
        &spec,
        0,
        cfg.requests_per_tenant,
        seed::derive(cfg.fleet_seed, seed::DOMAIN_STREAM, tenant as u64),
    )
}

/// Builds one device's keeper inputs from the placement: per-slot merged
/// streams (LPN-offset so co-located tenants do not alias pages) and the
/// per-slot LPN spaces. `fetch` yields a tenant's stream — materialized
/// or regenerated, per [`StreamMode`].
fn shard_inputs(
    cfg: &FleetConfig,
    slot_tenants: &[Vec<usize>],
    fetch: &(dyn Fn(usize) -> Vec<IoRequest> + Sync),
) -> (Vec<IoRequest>, Vec<u64>) {
    let mut slot_streams: Vec<Vec<IoRequest>> = Vec::with_capacity(slot_tenants.len());
    let mut lpn_spaces = Vec::with_capacity(slot_tenants.len());
    for tenants in slot_tenants {
        let mut merged: Vec<IoRequest> = Vec::new();
        for (pos, &t) in tenants.iter().enumerate() {
            let base = pos as u64 * cfg.lpn_space_per_tenant;
            merged.extend(fetch(t).into_iter().map(|r| IoRequest {
                lpn: r.lpn + base,
                ..r
            }));
        }
        // Chronological within the slot; the sort is stable over a
        // deterministic concatenation order, so equal arrivals keep the
        // ascending-tenant order they were appended in.
        merged.sort_by_key(|r| r.arrival_ns);
        slot_streams.push(merged);
        lpn_spaces.push(tenants.len() as u64 * cfg.lpn_space_per_tenant);
    }
    let total: usize = slot_streams.iter().map(Vec::len).sum();
    (mix_chronological(&slot_streams, total), lpn_spaces)
}

/// Runs one device shard under its keeper and returns its summary. The
/// shard's simulator draws its buffers from `arena`; every shard a
/// worker runs after its first reuses the same allocation pool.
fn run_shard(
    cfg: &FleetConfig,
    keeper: &Keeper,
    device: usize,
    placement: &Placement,
    fetch: &(dyn Fn(usize) -> Vec<IoRequest> + Sync),
    arena: &mut SimArena,
) -> Result<ShardSummary, FleetError> {
    let slot_tenants = placement.device_slots(device);
    if slot_tenants.is_empty() {
        return Ok(ShardSummary {
            device,
            strategy: ssdkeeper::Strategy::Shared,
            slot_tenants,
            metrics: flash_sim::MetricsSummary::default(),
            events_processed: 0,
            makespan_ns: 0,
        });
    }
    obs::span!("fleet_shard");
    let (trace, lpn_spaces) = shard_inputs(cfg, &slot_tenants, fetch);
    let outcome = keeper.run_with_arena(
        RunSpec::adapt_once(&trace, &lpn_spaces).with_metrics(),
        arena,
    )?;
    obs::counter_add!("fleet.shards_done", 1u64);
    obs::counter_add!(
        "fleet.events_observed",
        outcome
            .metrics
            .as_ref()
            .expect("with_metrics() guarantees a summary")
            .events_observed
    );
    let events_processed = outcome.report.events_processed;
    let makespan_ns = outcome.report.makespan_ns;
    arena.recycle_report(outcome.report);
    Ok(ShardSummary {
        device,
        strategy: outcome.strategy,
        slot_tenants,
        metrics: outcome
            .metrics
            .expect("with_metrics() guarantees a summary"),
        events_processed,
        makespan_ns,
    })
}

/// A shard's observed tail latency: p99 over all host commands.
fn shard_tail_ns(shard: &ShardSummary) -> u64 {
    let mut all = flash_sim::LatencyStats::new();
    for t in &shard.metrics.tenants {
        all.merge(&t.read);
        all.merge(&t.write);
    }
    all.percentile_ns(0.99)
}

/// Runs the whole fleet: generate tenants, place, simulate every shard
/// across the pool, re-place on tail drift, and merge. See the crate
/// docs for the determinism argument.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetOutcome, FleetError> {
    cfg.validate()?;

    // Tenant population: specs and streams derive from (fleet_seed,
    // tenant id) only — placement and worker count cannot perturb them,
    // and regenerating a stream yields the same bytes as caching it.
    // Tier-1 loads come from each stream's first observation window.
    let tenant_ids: Vec<usize> = (0..cfg.tenants).collect();
    let (resident, loads): (Option<Vec<Vec<IoRequest>>>, Vec<TenantLoad>) = match cfg.stream_mode {
        StreamMode::Eager => {
            let streams: Vec<Vec<IoRequest>> =
                par_map(&cfg.pool, &tenant_ids, |&t| tenant_stream(cfg, t));
            let loads = TenantLoad::observe_all(&streams, cfg.observe_window_ns);
            (Some(streams), loads)
        }
        StreamMode::Lazy => {
            // Each stream lives only as long as its observation.
            let loads = par_map(&cfg.pool, &tenant_ids, |&t| {
                TenantLoad::observe(t, &tenant_stream(cfg, t), cfg.observe_window_ns)
            });
            (None, loads)
        }
    };
    let fetch = |t: usize| match &resident {
        Some(streams) => streams[t].clone(),
        None => tenant_stream(cfg, t),
    };
    let placer = FleetPlacer::new(cfg.devices);
    let mut placement = placer.place(&loads);

    // Tier 2: one deterministic allocator model shared by every shard's
    // keeper (paper topology, seeded from the fleet seed).
    let network = Network::paper_topology(
        Activation::Logistic,
        seed::derive(cfg.fleet_seed, seed::DOMAIN_MODEL, 0),
    );
    let keeper = Keeper::new(
        KeeperConfig {
            ssd: cfg.ssd.clone(),
            observe_window_ns: cfg.observe_window_ns,
            hybrid: false,
        },
        ChannelAllocator::new(network, cfg.max_total_iops),
    );

    let device_ids: Vec<usize> = (0..cfg.devices).collect();
    let run_all =
        |placement: &Placement, devices: &[usize]| -> Result<Vec<ShardSummary>, FleetError> {
            // One simulator arena per pool worker: each worker's shards
            // after the first rebuild their engine allocation-free.
            par_map_init(&cfg.pool, devices, SimArena::new, |arena, _, &d| {
                run_shard(cfg, &keeper, d, placement, &fetch, arena)
            })
            .into_iter()
            .collect()
        };
    let mut shards = run_all(&placement, &device_ids)?;

    // Re-placement hook: while some device's tail drifts past the
    // threshold, move its hottest tenant and re-simulate only the two
    // affected shards. Decisions read merged (worker-count-independent)
    // results, so the loop is deterministic too.
    let mut replacements = Vec::new();
    for round in 0..cfg.max_replacements {
        let tails: Vec<u64> = shards.iter().map(shard_tail_ns).collect();
        let Some((next, moved, from, to)) =
            placer.replace_hottest(&placement, &loads, &tails, cfg.tail_threshold)
        else {
            break;
        };
        placement = next;
        let redone = run_all(&placement, &[from, to])?;
        for shard in redone {
            let d = shard.device;
            shards[d] = shard;
        }
        replacements.push(Replacement {
            round,
            tenant: moved,
            from,
            to,
        });
    }

    Ok(FleetOutcome {
        summary: FleetSummary::from_shards(shards, cfg.ssd.channels),
        placement,
        replacements,
    })
}
