//! The fleet seed-derivation rule.
//!
//! Every random decision in a fleet run derives from one `fleet_seed`
//! through [`derive`]: a splitmix64 finalizer over `(fleet_seed, domain,
//! index)`. The rule has two properties the determinism argument leans
//! on (see DESIGN.md §"Fleet sharding"):
//!
//! 1. **Stable addressing** — a tenant's stream seed depends only on the
//!    fleet seed and the tenant's fleet-wide id, never on its placement,
//!    the device count, or the worker count. Moving a tenant between
//!    devices replays the *same* request stream on the new device.
//! 2. **Domain separation** — distinct domains (stream vs. profile vs.
//!    model) cannot collide even for equal indices, so adding a new
//!    consumer of randomness never perturbs existing ones.

/// Domain tag for per-tenant request-stream generation.
pub const DOMAIN_STREAM: u64 = 1;
/// Domain tag for per-tenant workload-profile parameters.
pub const DOMAIN_PROFILE: u64 = 2;
/// Domain tag for the fleet's allocator model.
pub const DOMAIN_MODEL: u64 = 3;

/// Derives a child seed from `(fleet_seed, domain, index)` with a
/// splitmix64 finalizer. Pure and stateless: the same triple always
/// yields the same seed, on every platform. Delegates to
/// [`simrng::derive_seed`], the workspace-wide rule also used by the
/// label farm's per-sample seeding.
pub fn derive(fleet_seed: u64, domain: u64, index: u64) -> u64 {
    simrng::derive_seed(fleet_seed, domain, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive(42, DOMAIN_STREAM, 7), derive(42, DOMAIN_STREAM, 7));
    }

    #[test]
    fn domains_and_indices_separate() {
        let mut seen = std::collections::HashSet::new();
        for domain in [DOMAIN_STREAM, DOMAIN_PROFILE, DOMAIN_MODEL] {
            for index in 0..1000u64 {
                assert!(
                    seen.insert(derive(42, domain, index)),
                    "collision at domain {domain} index {index}"
                );
            }
        }
    }

    #[test]
    fn fleet_seed_changes_everything() {
        for index in 0..100u64 {
            assert_ne!(
                derive(1, DOMAIN_STREAM, index),
                derive(2, DOMAIN_STREAM, index)
            );
        }
    }
}
