//! Global registry of named monotonic counters and gauges.
//!
//! Registration (first use of a name) takes a mutex; increments are a
//! single relaxed atomic op on a leaked `&'static` handle, so hot paths
//! that cache the handle (the [`counter_add!`](crate::counter_add)
//! macro does) never touch the lock. Snapshots walk the registry under
//! the lock and read each atomic once; values from concurrent writers
//! are torn only across *different* counters, which is fine for
//! telemetry.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonic counter. Increment-only; readers see a value that never
/// decreases.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. "shards in flight").
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge (relaxed).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d`, which may be negative (relaxed).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

static COUNTERS: Mutex<Vec<(&'static str, &'static Counter)>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<(&'static str, &'static Gauge)>> = Mutex::new(Vec::new());

/// Finds or registers the counter named `name`, returning a `'static`
/// handle callers should cache. Registered counters live for the whole
/// process (the backing box is leaked — the set of instrumentation
/// names is small and fixed).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = COUNTERS.lock().unwrap();
    if let Some((_, c)) = reg.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::default()));
    reg.push((name, c));
    c
}

/// Finds or registers the gauge named `name`. Same contract as
/// [`counter`].
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = GAUGES.lock().unwrap();
    if let Some((_, g)) = reg.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::default()));
    reg.push((name, g));
    g
}

/// A point-in-time copy of every registered counter and gauge, sorted
/// by name so rendered output is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Reads every registered counter and gauge.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<(String, u64)> = COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|(n, c)| (n.to_string(), c.get()))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = GAUGES
        .lock()
        .unwrap()
        .iter()
        .map(|(n, g)| (n.to_string(), g.get()))
        .collect();
    gauges.sort();
    Snapshot { counters, gauges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let a = counter("test.counters.idem");
        let b = counter("test.counters.idem");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = gauge("test.counters.gauge");
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered_names() {
        counter("test.counters.snap_b").add(1);
        counter("test.counters.snap_a").add(2);
        let s = snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(s.counter("test.counters.snap_a"), Some(2));
        assert!(s.counter("test.counters.snap_b").unwrap() >= 1);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let c = counter("test.counters.concurrent");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
