//! Monotonic nanoseconds since the first observation in this process.
//!
//! All span timestamps and sampler `elapsed_ms` fields share one epoch
//! so they can be correlated. The epoch is pinned lazily by whichever
//! call happens first; binaries that want `t=0` at startup call
//! [`init`] early in `main`.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Pins the process epoch to "now" if it is not already pinned.
pub fn init() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// Nanoseconds elapsed since the process epoch (monotonic, never
/// decreases; saturates at `u64::MAX` after ~584 years).
pub fn now_ns() -> u64 {
    let e = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(e.as_nanos()).unwrap_or(u64::MAX)
}
