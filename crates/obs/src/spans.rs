//! Hierarchical scoped spans with thread-local aggregation.
//!
//! [`enter`] (via the [`span!`](crate::span) macro) pushes onto a
//! thread-local span stack and returns an RAII [`SpanGuard`]; dropping
//! the guard accumulates the elapsed wall-clock nanoseconds into the
//! current thread's call tree. Enter/exit touch only thread-local
//! memory — no locks, no allocation after a path is first seen — so
//! instrumented hot paths never contend. When a thread exits, its tree
//! is folded into a global finished-set under a mutex (one lock per
//! thread lifetime, not per span); [`drain`] merges the finished set
//! with the calling thread's live tree into path-keyed totals.
//!
//! The aggregation is equivalent to recording every span into a
//! per-thread append buffer and merging post-run — but bounded by the
//! number of distinct call *paths* instead of the number of span
//! *instances*, so a million GC passes cost one tree node.
//!
//! Span names become folded-stack frames (`a;b;c 1234`), so they must
//! not contain `;`, whitespace, or newlines.

use crate::clock;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Mutex;

/// Aggregated totals for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathTotal {
    /// Total wall-clock nanoseconds spent with this exact path open.
    pub ns: u64,
    /// Number of times the span at the end of this path closed.
    pub count: u64,
}

/// Merged span statistics keyed by `;`-joined path (root first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Path → totals, sorted by path (BTreeMap order).
    pub paths: BTreeMap<String, PathTotal>,
}

impl SpanStats {
    /// Renders flamegraph.pl-compatible folded-stack lines: one
    /// `path ns` line per path, sorted, newline-terminated. The value
    /// column is nanoseconds (flamegraph.pl treats it as an opaque
    /// sample weight).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, t) in &self.paths {
            out.push_str(path);
            out.push(' ');
            out.push_str(&t.ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Sum of nanoseconds over root-level paths (no `;`) — each
    /// thread's outermost spans, i.e. the instrumented wall-clock.
    pub fn root_ns(&self) -> u64 {
        self.paths
            .iter()
            .filter(|(p, _)| !p.contains(';'))
            .map(|(_, t)| t.ns)
            .sum()
    }
}

struct Node {
    parent: u32,
    name: &'static str,
    total_ns: u64,
    count: u64,
    children: Vec<u32>,
}

struct ThreadTree {
    nodes: Vec<Node>,
    cur: u32,
}

impl ThreadTree {
    fn new() -> Self {
        ThreadTree {
            nodes: vec![Node {
                parent: 0,
                name: "",
                total_ns: 0,
                count: 0,
                children: Vec::new(),
            }],
            cur: 0,
        }
    }

    fn enter(&mut self, name: &'static str) -> u32 {
        let cur = self.cur;
        let existing = self.nodes[cur as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].name == name);
        let node = existing.unwrap_or_else(|| {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                parent: cur,
                name,
                total_ns: 0,
                count: 0,
                children: Vec::new(),
            });
            self.nodes[cur as usize].children.push(id);
            id
        });
        self.cur = node;
        node
    }

    /// Returns true when this exit closed the thread's outermost span
    /// (the stack is back at the synthetic root).
    fn exit(&mut self, node: u32, elapsed_ns: u64) -> bool {
        let n = &mut self.nodes[node as usize];
        n.total_ns += elapsed_ns;
        n.count += 1;
        self.cur = n.parent;
        self.cur == 0
    }

    /// Folds closed totals into `out` and zeroes them (structure and
    /// any still-open stack are kept so later exits keep accumulating).
    fn fold_into(&mut self, out: &mut BTreeMap<String, PathTotal>) {
        for i in 1..self.nodes.len() {
            if self.nodes[i].count == 0 && self.nodes[i].total_ns == 0 {
                continue;
            }
            let mut parts = Vec::new();
            let mut j = i as u32;
            while j != 0 {
                parts.push(self.nodes[j as usize].name);
                j = self.nodes[j as usize].parent;
            }
            parts.reverse();
            let path = parts.join(";");
            let entry = out.entry(path).or_default();
            entry.ns += self.nodes[i].total_ns;
            entry.count += self.nodes[i].count;
            self.nodes[i].total_ns = 0;
            self.nodes[i].count = 0;
        }
    }
}

/// Wrapper whose Drop flushes whatever is still in the thread's tree
/// into the global finished-set when the thread exits. This is only a
/// backstop for spans that never closed back to the root: the primary
/// flush happens in [`SpanGuard::drop`] when the outermost span closes,
/// because thread-exit TLS destructors are NOT ordered before
/// `std::thread::scope` (or `JoinHandle::join`) returns — the scope
/// unblocks when the closure finishes, while TLS teardown can still be
/// running, so a drain racing a dtor-only flush would lose spans.
struct TlsTree(RefCell<ThreadTree>);

impl Drop for TlsTree {
    fn drop(&mut self) {
        let mut map = BTreeMap::new();
        self.0.borrow_mut().fold_into(&mut map);
        if !map.is_empty() {
            merge_into_finished(map);
        }
    }
}

thread_local! {
    static TREE: TlsTree = TlsTree(RefCell::new(ThreadTree::new()));
}

static FINISHED: Mutex<BTreeMap<String, PathTotal>> = Mutex::new(BTreeMap::new());

fn merge_into_finished(map: BTreeMap<String, PathTotal>) {
    let mut fin = FINISHED.lock().unwrap();
    for (path, t) in map {
        let entry = fin.entry(path).or_default();
        entry.ns += t.ns;
        entry.count += t.count;
    }
}

/// RAII guard returned by [`enter`]; closes the span on drop.
///
/// Not `Send`: a span must close on the thread that opened it. Guards
/// are expected to drop in LIFO order (scope order); an out-of-order
/// drop mis-parents subsequent spans on this thread but never panics.
pub struct SpanGuard {
    node: u32,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the thread's current span. Prefer
/// the [`span!`](crate::span) macro, which compiles away when tracing
/// is off.
pub fn enter(name: &'static str) -> SpanGuard {
    let node = TREE.with(|t| t.0.borrow_mut().enter(name));
    SpanGuard {
        node,
        start_ns: clock::now_ns(),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = clock::now_ns().saturating_sub(self.start_ns);
        // TLS may already be torn down during thread exit; spans still
        // open that late are silently discarded.
        let _ = TREE.try_with(|t| {
            let root_closed = t.0.borrow_mut().exit(self.node, elapsed);
            // Closing the outermost span publishes the thread's closed
            // totals. This runs inside the span's scope — i.e. before a
            // scoped worker signals completion — which is what makes
            // "join workers, then drain()" see every worker's spans
            // (TLS destructors alone give no such ordering).
            if root_closed {
                let mut map = BTreeMap::new();
                t.0.borrow_mut().fold_into(&mut map);
                if !map.is_empty() {
                    merge_into_finished(map);
                }
            }
        });
    }
}

/// Merges and clears all recorded span totals: the finished-set (every
/// thread's outermost-span flushes plus thread-exit backstops) and the
/// calling thread's closed spans. A live thread's spans become visible
/// as soon as its outermost span closes; spans still open on other
/// threads are not included — call after joining workers.
pub fn drain() -> SpanStats {
    let mut paths = std::mem::take(&mut *FINISHED.lock().unwrap());
    let _ = TREE.try_with(|t| t.0.borrow_mut().fold_into(&mut paths));
    SpanStats { paths }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span state is process-global and `drain` takes the whole
    // finished-set, so tests that drain must not run concurrently (one
    // would steal spans another test's worker threads just flushed).
    // Unique names handle leftovers; this lock handles the races.
    static DRAIN_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        DRAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nesting_builds_paths_and_counts() {
        let _serial = serial();
        {
            let _a = enter("t_nest_outer");
            for _ in 0..3 {
                let _b = enter("t_nest_inner");
            }
        }
        let stats = drain();
        let inner = stats.paths.get("t_nest_outer;t_nest_inner").unwrap();
        assert_eq!(inner.count, 3);
        let outer = stats.paths.get("t_nest_outer").unwrap();
        assert_eq!(outer.count, 1);
        assert!(outer.ns >= inner.ns);
    }

    #[test]
    fn drain_clears_and_later_spans_reaccumulate() {
        let _serial = serial();
        {
            let _a = enter("t_clear_root");
        }
        let first = drain();
        assert_eq!(first.paths.get("t_clear_root").unwrap().count, 1);
        let second = drain();
        assert!(second.paths.get("t_clear_root").is_none());
        {
            let _a = enter("t_clear_root");
        }
        let third = drain();
        assert_eq!(third.paths.get("t_clear_root").unwrap().count, 1);
    }

    #[test]
    fn worker_thread_spans_merge_after_join() {
        let _serial = serial();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = enter("t_worker_root");
                    let _h = enter("t_worker_leaf");
                });
            }
        });
        let stats = drain();
        assert_eq!(stats.paths.get("t_worker_root").unwrap().count, 2);
        assert_eq!(
            stats
                .paths
                .get("t_worker_root;t_worker_leaf")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn folded_lines_are_sorted_and_parse() {
        let _serial = serial();
        {
            let _a = enter("t_fold_b");
        }
        {
            let _a = enter("t_fold_a");
            let _b = enter("t_fold_c");
        }
        let stats = drain();
        let folded = stats.folded();
        let mut prev = String::new();
        for line in folded.lines().filter(|l| l.starts_with("t_fold_")) {
            let (path, ns) = line.rsplit_once(' ').unwrap();
            ns.parse::<u64>().unwrap();
            assert!(path > prev.as_str());
            prev = path.to_string();
        }
        assert!(stats.root_ns() > 0);
    }

    #[test]
    fn open_span_survives_drain_and_closes_later() {
        let _serial = serial();
        let g = enter("t_open_root");
        {
            let _inner = enter("t_open_inner");
        }
        let mid = drain();
        assert_eq!(mid.paths.get("t_open_root;t_open_inner").unwrap().count, 1);
        assert!(mid.paths.get("t_open_root").is_none());
        drop(g);
        let after = drain();
        assert_eq!(after.paths.get("t_open_root").unwrap().count, 1);
    }
}
