//! Host-side tracing and live telemetry (std-only).
//!
//! Three layers, all operating on **wall-clock host time** and never on
//! simulated time — nothing here feeds simulator state, so determinism
//! digests are untouched by construction:
//!
//! 1. [`spans`] — hierarchical scoped spans ([`span!`]) aggregated into a
//!    per-thread call tree (enter/exit touches only thread-local memory;
//!    no locks on the hot path), merged across threads on demand and
//!    exported as flamegraph.pl-compatible folded-stack lines.
//! 2. [`counters`] — a global registry of named monotonic counters and
//!    gauges with relaxed-atomic increments, snapshotted on demand.
//! 3. [`monitor`] — a periodic sampler thread streaming counter
//!    snapshots as NDJSON to a file or stderr, consumed by
//!    `ssdtrace live`.
//!
//! # Zero-cost when off
//!
//! The crate is always compiled (so the registry/sampler tests run in
//! the default build), but the instrumentation macros ([`span!`],
//! [`counter_add!`], [`gauge_set!`]) expand to code guarded by
//! [`ENABLED`], a `const` that is `false` unless the `enabled` cargo
//! feature is on. `if ENABLED { ... }` with a `false` const is removed
//! by the optimizer, so the disabled path costs nothing: goldens, SSDP
//! captures, and `sim_throughput` are bit-identical with tracing off.
//! The const lives *here* (not a `cfg!` in the macro expansion) so the
//! gate reflects obs's own feature set, not the caller crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod monitor;
pub mod spans;

/// `true` iff the `enabled` cargo feature is on. Instrumentation macros
/// test this const so disabled call sites const-fold to nothing.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Opens a scoped span that closes when the enclosing scope ends.
///
/// `span!("name")` binds an RAII guard to a hidden local; on drop the
/// elapsed nanoseconds are accumulated into the current thread's span
/// tree under the parent span that was active at entry. Names must be
/// `'static` string literals without `;` or whitespace (they become
/// folded-stack frames). Expands to nothing when [`ENABLED`] is false.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = if $crate::ENABLED {
            Some($crate::spans::enter($name))
        } else {
            None
        };
    };
}

/// Adds `n` to the named monotonic counter (registered on first use).
///
/// The registry handle is cached in a per-call-site `OnceLock`, so the
/// steady-state cost is one relaxed atomic add. Expands to nothing when
/// [`ENABLED`] is false.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {
        if $crate::ENABLED {
            static __OBS_COUNTER: ::std::sync::OnceLock<&'static $crate::counters::Counter> =
                ::std::sync::OnceLock::new();
            __OBS_COUNTER
                .get_or_init(|| $crate::counters::counter($name))
                .add($n as u64);
        }
    };
}

/// Sets the named gauge to `v` (registered on first use).
///
/// Same caching and gating as [`counter_add!`].
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {
        if $crate::ENABLED {
            static __OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::counters::Gauge> =
                ::std::sync::OnceLock::new();
            __OBS_GAUGE
                .get_or_init(|| $crate::counters::gauge($name))
                .set($v as i64);
        }
    };
}
