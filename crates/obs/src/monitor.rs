//! Live run monitor: a periodic sampler thread streaming NDJSON.
//!
//! [`Sampler::start`] spawns a background thread that snapshots the
//! [counter registry](crate::counters) every `interval` and writes one
//! JSON object per line to a file or stderr. Each line is built in
//! memory and written with a single `write_all` + flush, so a consumer
//! tailing the file only ever sees whole lines; stopping (explicit
//! [`Sampler::stop`] or the panic-safe `Drop`) always writes one last
//! snapshot with `"final":true` before the thread exits, so the stream
//! is never left without the run's closing state.
//!
//! Line schema (all keys always present, `counters`/`gauges`/`rates`
//! objects are name-sorted):
//!
//! ```json
//! {"ssdkeeper_telemetry":1,"seq":3,"elapsed_ms":612.504,"final":false,
//!  "counters":{"sim.events":1048576},"gauges":{"fleet.shards_total":64},
//!  "rates":{"sim.events":1713412.9}}
//! ```
//!
//! `rates` is the per-second delta of each counter since the previous
//! line (0 on the first line). `ssdtrace live` consumes this stream.

use crate::counters::{self, Snapshot};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Magic key/version stamped on every telemetry line.
pub const SCHEMA_VERSION: u64 = 1;
/// Environment variable naming the telemetry target when no CLI flag
/// is given (`stderr` or `-` selects stderr, anything else is a path).
pub const TELEMETRY_ENV: &str = "SSDKEEPER_TELEMETRY";
/// Environment variable overriding the sample interval in milliseconds.
pub const INTERVAL_ENV: &str = "SSDKEEPER_TELEMETRY_MS";
/// Default sample interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(200);

/// Where the NDJSON stream goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// One line per snapshot on stderr.
    Stderr,
    /// Truncate/create this file and stream lines into it.
    File(PathBuf),
}

impl Target {
    /// Parses a CLI/env spec: `stderr` or `-` → [`Target::Stderr`],
    /// anything else is a file path.
    pub fn from_spec(spec: &str) -> Target {
        match spec {
            "stderr" | "-" => Target::Stderr,
            path => Target::File(PathBuf::from(path)),
        }
    }
}

enum Sink {
    Stderr,
    File(File),
}

impl Sink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Sink::Stderr => {
                let err = io::stderr();
                let mut h = err.lock();
                h.write_all(line.as_bytes())?;
                h.flush()
            }
            Sink::File(f) => {
                f.write_all(line.as_bytes())?;
                f.flush()
            }
        }
    }
}

/// Handle to a running sampler thread. Stop it with [`Sampler::stop`]
/// for the flush result; dropping it (including during a panic unwind)
/// stops and flushes best-effort.
pub struct Sampler {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl Sampler {
    /// Opens the target and starts the sampler thread. The first line
    /// is written immediately, then one every `interval` until stopped.
    pub fn start(target: Target, interval: Duration) -> io::Result<Sampler> {
        let mut sink = match &target {
            Target::Stderr => Sink::Stderr,
            Target::File(path) => Sink::File(File::create(path)?),
        };
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || -> io::Result<()> {
                let start = Instant::now();
                let mut seq: u64 = 0;
                let mut prev: Option<(Duration, Snapshot)> = None;
                let (stop_flag, cv) = &*thread_shared;
                let mut stopped = *stop_flag.lock().unwrap();
                loop {
                    let elapsed = start.elapsed();
                    let snap = counters::snapshot();
                    let line = render_line(seq, elapsed, stopped, &snap, prev.as_ref());
                    sink.write_line(&line)?;
                    if stopped {
                        return Ok(());
                    }
                    prev = Some((elapsed, snap));
                    seq += 1;
                    let guard = stop_flag.lock().unwrap();
                    let (guard, _) = cv.wait_timeout_while(guard, interval, |s| !*s).unwrap();
                    stopped = *guard;
                }
            })?;
        Ok(Sampler {
            shared,
            handle: Some(handle),
        })
    }

    /// Starts a sampler resolved from a CLI spec falling back to the
    /// [`TELEMETRY_ENV`] environment variable; returns `Ok(None)` when
    /// neither is set. Interval comes from [`INTERVAL_ENV`] or
    /// [`DEFAULT_INTERVAL`].
    pub fn from_spec_or_env(cli_spec: Option<&str>) -> io::Result<Option<Sampler>> {
        let env_spec = std::env::var(TELEMETRY_ENV).ok();
        let spec = match cli_spec.or(env_spec.as_deref()) {
            Some(s) if !s.is_empty() => s.to_string(),
            _ => return Ok(None),
        };
        let interval = std::env::var(INTERVAL_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_INTERVAL);
        Sampler::start(Target::from_spec(&spec), interval).map(Some)
    }

    fn signal_stop(&self) {
        let (stop_flag, cv) = &*self.shared;
        *stop_flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    /// Stops the thread, waits for the final `"final":true` line to be
    /// written and flushed, and returns the I/O result of the stream.
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        self.signal_stop();
        match handle.join() {
            Ok(res) => res,
            Err(_) => Err(io::Error::other("sampler thread panicked")),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        // Panic-safe: runs during unwinds too, so an aborted run still
        // gets its final flushed snapshot.
        let _ = self.shutdown();
    }
}

fn render_line(
    seq: u64,
    elapsed: Duration,
    is_final: bool,
    snap: &Snapshot,
    prev: Option<&(Duration, Snapshot)>,
) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"ssdkeeper_telemetry\":{SCHEMA_VERSION},\"seq\":{seq},\"elapsed_ms\":{:.3},\"final\":{is_final},\"counters\":{{",
        elapsed.as_secs_f64() * 1e3,
    );
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{}\":{v}", escape(name));
    }
    line.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{}\":{v}", escape(name));
    }
    line.push_str("},\"rates\":{");
    let dt = prev
        .map(|(t, _)| elapsed.saturating_sub(*t).as_secs_f64())
        .unwrap_or(0.0);
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let rate = if dt > 0.0 {
            let before = prev.and_then(|(_, s)| s.counter(name)).unwrap_or(0);
            v.saturating_sub(before) as f64 / dt
        } else {
            0.0
        };
        let _ = write!(line, "\"{}\":{rate:.1}", escape(name));
    }
    line.push_str("}}\n");
    line
}

/// Escapes a name for use inside a JSON string (registry names are
/// plain identifiers, but the stream must stay valid regardless).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("obs_monitor_{}_{tag}.ndjson", std::process::id()))
    }

    fn read_lines(path: &PathBuf) -> Vec<String> {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.is_empty() || text.ends_with('\n'),
            "stream must end on a line boundary"
        );
        text.lines().map(|l| l.to_string()).collect()
    }

    #[test]
    fn clean_shutdown_writes_initial_periodic_and_final_lines() {
        let path = temp_path("clean");
        let sampler =
            Sampler::start(Target::File(path.clone()), Duration::from_millis(10)).unwrap();
        counters::counter("test.monitor.ticks").add(7);
        std::thread::sleep(Duration::from_millis(60));
        sampler.stop().unwrap();
        let lines = read_lines(&path);
        assert!(
            lines.len() >= 3,
            "expected initial + periodic + final, got {lines:?}"
        );
        assert!(lines[0].contains("\"seq\":0"));
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "ragged line: {line}"
            );
            assert!(line.contains("\"ssdkeeper_telemetry\":1"));
        }
        let finals: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"final\":true"))
            .collect();
        assert_eq!(finals.len(), 1);
        assert_eq!(finals[0], lines.last().unwrap());
        assert!(lines.last().unwrap().contains("\"test.monitor.ticks\":"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panic_in_run_still_flushes_final_snapshot() {
        let path = temp_path("panic");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _sampler =
                Sampler::start(Target::File(path.clone()), Duration::from_millis(10)).unwrap();
            panic!("simulated run exploded");
        }));
        assert!(result.is_err());
        let lines = read_lines(&path);
        assert!(!lines.is_empty());
        assert!(
            lines.last().unwrap().contains("\"final\":true"),
            "final snapshot missing after panic: {lines:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn immediate_stop_still_yields_final_line() {
        let path = temp_path("immediate");
        let sampler =
            Sampler::start(Target::File(path.clone()), Duration::from_secs(3600)).unwrap();
        sampler.stop().unwrap();
        let lines = read_lines(&path);
        assert!(lines.iter().any(|l| l.contains("\"final\":true")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stderr_target_and_spec_parsing() {
        assert_eq!(Target::from_spec("stderr"), Target::Stderr);
        assert_eq!(Target::from_spec("-"), Target::Stderr);
        assert_eq!(
            Target::from_spec("/tmp/t.ndjson"),
            Target::File(PathBuf::from("/tmp/t.ndjson"))
        );
        let sampler = Sampler::start(Target::Stderr, Duration::from_millis(50)).unwrap();
        sampler.stop().unwrap();
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
