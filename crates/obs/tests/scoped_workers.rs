//! Regression test for the scoped-worker flush race: `thread::scope`
//! unblocks when a worker's closure returns, but the worker's TLS
//! destructors may still be running — so span publication must not
//! depend on TLS teardown. The outermost-span-close flush runs inside
//! the closure, giving a happens-before edge to the post-scope drain.
//! Lives in its own integration binary so the process-global span
//! state is exactly this test's.

#[test]
fn worker_spans_are_visible_immediately_after_scope_join() {
    for round in 0..50 {
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = obs::spans::enter("w_root");
                    let _h = obs::spans::enter("w_leaf");
                });
            }
        });
        let stats = obs::spans::drain();
        assert_eq!(
            stats.paths.get("w_root").map(|t| t.count),
            Some(2),
            "round {round}: a worker's flush raced the drain"
        );
        assert_eq!(stats.paths.get("w_root;w_leaf").map(|t| t.count), Some(2));
    }
}
