//! The strategy learner: synthetic mixed-workload sampling, Algorithm 1
//! dataset generation, and ANN training.
//!
//! §V-A: "The mixed workloads for training are synthetic. We mainly change
//! the read/write characteristics and read/write proportion to synthesize
//! the new mixed workloads." Each sample draws, per tenant, a dominance
//! (read vs write), a write ratio consistent with it, and a request share;
//! plus one overall intensity level. The sample is labelled by running all
//! 42 strategies (see [`crate::label`]) and keeping the argmin.

use crate::allocator::{ChannelAllocator, DecisionScratch};
use crate::features::{FeatureVector, FEATURE_DIM, TENANTS};
use crate::label::{
    best_strategy_with_tolerance, evaluate_all_with, EvalConfig, DOMAIN_LABEL_SAMPLE,
};
use crate::strategy::Strategy;
use ann::prelude::*;
use ann::train::TrainHistory;
use flash_sim::{IoRequest, SimArena};
use parallel::PoolConfig;
use simrng::Rng;
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// How the synthetic training distribution is sampled.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Number of labelled mixed workloads to generate.
    pub samples: usize,
    /// Requests per mixed workload (the paper uses 2 M; scale to taste).
    pub requests_per_sample: usize,
    /// Device IOPS mapped to intensity level 19.
    pub max_total_iops: f64,
    /// Logical pages per tenant.
    pub lpn_space: u64,
    /// Relative tolerance for label generation: near-ties within this
    /// fraction of the best latency collapse onto the simplest strategy
    /// (see [`crate::label::best_strategy_with_tolerance`]).
    pub label_tolerance: f64,
    /// Simulator/labelling configuration.
    pub eval: EvalConfig,
}

impl DatasetSpec {
    /// A laptop-scale spec: `samples` workloads of 2 000 requests each.
    /// Small enough that the full 42-strategy labelling sweep of one
    /// sample takes well under a second.
    pub fn quick(samples: usize) -> Self {
        Self {
            samples,
            requests_per_sample: 2_000,
            max_total_iops: 120_000.0,
            lpn_space: 1 << 12,
            label_tolerance: 0.01,
            eval: EvalConfig::default(),
        }
    }
}

/// One labelled training example.
#[derive(Debug, Clone)]
pub struct LabelledSample {
    /// Collector features of the mixed workload.
    pub features: FeatureVector,
    /// Class id of the best strategy.
    pub label: usize,
    /// The best strategy itself.
    pub best: Strategy,
    /// Its total-latency metric (µs), kept for analysis.
    pub best_metric_us: f64,
    /// The metric of every strategy, indexed by class id. Enables
    /// regret-aware evaluation ([`effective_accuracy`]); empty when the
    /// sample was loaded from a v1 text file.
    pub metrics_us: Vec<f64>,
}

/// A labelled dataset plus the feature scale it was built with.
#[derive(Debug, Clone)]
pub struct LabelledDataset {
    /// The examples.
    pub samples: Vec<LabelledSample>,
    /// IOPS that saturate the intensity scale.
    pub max_total_iops: f64,
}

impl LabelledDataset {
    /// Converts to an [`ann`] dataset (42 classes).
    pub fn to_ann_dataset(&self) -> Dataset {
        let rows: Vec<[f32; FEATURE_DIM]> =
            self.samples.iter().map(|s| s.features.to_input()).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels: Vec<usize> = self.samples.iter().map(|s| s.label).collect();
        Dataset::new(
            Matrix::from_rows(&refs),
            labels,
            Strategy::all_for_tenants(4).len(),
        )
        .expect("labels come from the strategy space")
    }

    /// Distribution of labels over the 42 classes.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; Strategy::all_for_tenants(4).len()];
        for s in &self.samples {
            hist[s.label] += 1;
        }
        hist
    }

    /// Serializes to a simple text form: one line per sample holding the
    /// feature CSV, the label, and (v2) the per-strategy metrics CSV.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "ssdk-dataset-v2 {} {}\n",
            self.samples.len(),
            self.max_total_iops
        );
        for s in &self.samples {
            let x = s.features.to_input();
            let row: Vec<String> = x.iter().map(|v| format!("{v}")).collect();
            let metrics: Vec<String> = s.metrics_us.iter().map(|v| format!("{v:.3}")).collect();
            out.push_str(&format!(
                "{};{};{}\n",
                row.join(","),
                s.label,
                metrics.join(",")
            ));
        }
        out
    }

    /// Parses the text form produced by [`LabelledDataset::to_text`]
    /// (v2) or the older metric-less v1 layout.
    pub fn from_text(text: &str) -> Option<LabelledDataset> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split_whitespace();
        let version = parts.next()?;
        if version != "ssdk-dataset-v1" && version != "ssdk-dataset-v2" {
            return None;
        }
        let count: usize = parts.next()?.parse().ok()?;
        let max_total_iops: f64 = parts.next()?.parse().ok()?;
        let mut samples = Vec::with_capacity(count);
        for line in lines.take(count) {
            let mut fields = line.split(';');
            let xs = fields.next()?;
            let label_str = fields.next()?;
            let metrics_us: Vec<f64> = match fields.next() {
                Some(m) if !m.trim().is_empty() => m
                    .split(',')
                    .map(|v| v.trim().parse().ok())
                    .collect::<Option<_>>()?,
                _ => Vec::new(),
            };
            let vals: Vec<f32> = xs
                .split(',')
                .map(|v| v.parse().ok())
                .collect::<Option<_>>()?;
            if vals.len() != FEATURE_DIM {
                return None;
            }
            let label: usize = label_str.trim().parse().ok()?;
            let best = Strategy::from_index(label, 4)?;
            let features = FeatureVector {
                intensity_level: (vals[0] * 19.0).round() as u32,
                rw_char: [vals[1] as u8, vals[2] as u8, vals[3] as u8, vals[4] as u8],
                shares: [
                    vals[5] as f64,
                    vals[6] as f64,
                    vals[7] as f64,
                    vals[8] as f64,
                ],
            };
            let best_metric_us = metrics_us.get(label).copied().unwrap_or(0.0);
            samples.push(LabelledSample {
                features,
                label,
                best,
                best_metric_us,
                metrics_us,
            });
        }
        (samples.len() == count).then_some(LabelledDataset {
            samples,
            max_total_iops,
        })
    }
}

/// The four optimizer/activation configurations of Figure 4 / Table III,
/// plus the two Adam components as ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerChoice {
    /// SGD, lr 0.2, logistic hidden layer.
    Sgd,
    /// SGD with momentum 0.9, lr 0.2, logistic hidden layer.
    SgdMomentum,
    /// Adam lr 0.02, ReLU hidden layer.
    AdamRelu,
    /// Adam lr 0.02, logistic hidden layer (the paper's best).
    AdamLogistic,
    /// AdaGrad ablation (a component of Adam), ReLU hidden layer.
    AdaGrad,
    /// RMSProp ablation (a component of Adam), ReLU hidden layer.
    RmsProp,
}

impl OptimizerChoice {
    /// The four configurations the paper sweeps, in Table III order.
    pub const PAPER: [OptimizerChoice; 4] = [
        OptimizerChoice::Sgd,
        OptimizerChoice::SgdMomentum,
        OptimizerChoice::AdamRelu,
        OptimizerChoice::AdamLogistic,
    ];

    /// Table III row name.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerChoice::Sgd => "SGD",
            OptimizerChoice::SgdMomentum => "SGD-momentum",
            OptimizerChoice::AdamRelu => "Adam-ReLU",
            OptimizerChoice::AdamLogistic => "Adam-logistic",
            OptimizerChoice::AdaGrad => "AdaGrad",
            OptimizerChoice::RmsProp => "RMSProp",
        }
    }

    /// Hidden-layer activation for this configuration.
    pub fn activation(self) -> Activation {
        match self {
            OptimizerChoice::AdamRelu | OptimizerChoice::AdaGrad | OptimizerChoice::RmsProp => {
                Activation::ReLU
            }
            _ => Activation::Logistic,
        }
    }

    /// Instantiates the optimizer with the paper's hyper-parameters.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            OptimizerChoice::Sgd => Box::new(Sgd::paper()),
            OptimizerChoice::SgdMomentum => Box::new(Momentum::paper()),
            OptimizerChoice::AdamRelu | OptimizerChoice::AdamLogistic => Box::new(Adam::paper()),
            OptimizerChoice::AdaGrad => Box::new(AdaGrad::new(0.02)),
            OptimizerChoice::RmsProp => Box::new(RmsProp::new(0.02)),
        }
    }
}

/// A trained strategy model ready to be deployed as a channel allocator.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained network (9 → 64 → 42).
    pub network: Network,
    /// IOPS that saturate the intensity scale (must match deployment).
    pub max_total_iops: f64,
    /// Training curves and wall time.
    pub history: TrainHistory,
    /// Dataset indices held out as the test split (empty for models
    /// loaded from disk). Use with
    /// [`effective_accuracy_subset`] for honest generalization numbers.
    pub test_indices: Vec<usize>,
}

impl TrainedModel {
    /// Wraps the model into a [`ChannelAllocator`].
    pub fn allocator(&self) -> ChannelAllocator {
        ChannelAllocator::new(self.network.clone(), self.max_total_iops)
    }
}

/// Regret-aware accuracy: the fraction of samples whose *predicted*
/// strategy lands within `rel_tol` of the sample's optimal latency.
///
/// With 42 classes, many strategies are near-equivalent on a given
/// workload; exact-class accuracy punishes picking an equally good
/// neighbour. This metric scores what deployments care about — latency
/// regret — and requires the dataset to carry per-strategy metrics
/// (v2 datasets; v1 samples without metrics are skipped).
///
/// Returns `None` when no sample carries metrics.
pub fn effective_accuracy(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
    rel_tol: f64,
) -> Option<f64> {
    let all: Vec<usize> = (0..dataset.samples.len()).collect();
    effective_accuracy_subset(allocator, dataset, &all, rel_tol)
}

/// Like [`effective_accuracy`] but restricted to the given sample
/// indices — pass a model's `test_indices` for held-out numbers.
pub fn effective_accuracy_subset(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
    indices: &[usize],
    rel_tol: f64,
) -> Option<f64> {
    let classes = Strategy::all_for_tenants(4).len();
    // One batched forward for the whole subset instead of a per-sample
    // call; predictions are identical (the batch kernel is
    // row-independent), this just amortizes the layer sweeps.
    let scored_samples: Vec<&LabelledSample> = indices
        .iter()
        .map(|&i| &dataset.samples[i])
        .filter(|s| s.metrics_us.len() == classes)
        .collect();
    if scored_samples.is_empty() {
        return None;
    }
    let features: Vec<FeatureVector> = scored_samples.iter().map(|s| s.features.clone()).collect();
    let mut scratch = DecisionScratch::new();
    let mut predicted = Vec::new();
    allocator.predict_batch_into(&features, &mut scratch, &mut predicted);
    let mut hits = 0usize;
    for (s, strategy) in scored_samples.iter().zip(predicted.iter()) {
        let best = s.metrics_us.iter().copied().fold(f64::INFINITY, f64::min);
        if s.metrics_us[strategy.index(4)] <= best * (1.0 + rel_tol) {
            hits += 1;
        }
    }
    Some(hits as f64 / scored_samples.len() as f64)
}

/// Deterministic 7:3 train/test split of `n` sample indices.
pub fn split_indices(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    use simrng::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = simrng::SimRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let cut = ((n as f64) * 0.7).round() as usize;
    let test = order.split_off(cut);
    (order, test)
}

/// Generates synthetic mixed workloads, labels them, and trains models.
#[derive(Debug, Clone)]
pub struct Learner {
    spec: DatasetSpec,
}

impl Learner {
    /// A learner for the given dataset spec.
    pub fn new(spec: DatasetSpec) -> Self {
        Self { spec }
    }

    /// The dataset spec in use.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Draws one random mixed workload: per-tenant dominance, write
    /// ratio, and share; one overall intensity level.
    pub fn sample_mixed_workload(&self, rng: &mut impl Rng) -> (Vec<IoRequest>, Vec<TenantSpec>) {
        // Mildly skew sampled levels toward high intensity: the strategy
        // decision is trivial (Shared) on an underloaded device, so the
        // interesting label mass lives in the upper levels. u^0.7 keeps
        // full coverage of low levels while spending ~60% of samples on
        // the upper half of the scale.
        let level: u32 = ((rng.gen::<f64>().powf(0.7)) * 20.0).min(19.0) as u32;
        let total_iops = (level as f64 + 0.5) / 20.0 * self.spec.max_total_iops;

        // Random shares bounded away from zero so every tenant is live.
        let weights: Vec<f64> = (0..TENANTS).map(|_| rng.gen_range(0.05..1.0)).collect();
        let wsum: f64 = weights.iter().sum();

        let specs: Vec<TenantSpec> = (0..TENANTS)
            .map(|t| {
                let read_dominated = rng.gen_bool(0.5);
                let write_ratio = if read_dominated {
                    rng.gen_range(0.0..0.25)
                } else {
                    rng.gen_range(0.75..1.0)
                };
                let mut spec = TenantSpec::synthetic(
                    format!("synth{t}"),
                    write_ratio,
                    (total_iops * weights[t] / wsum).max(1.0),
                    self.spec.lpn_space,
                );
                // Match the access-pattern flavours of the evaluation
                // traces (see `workloads::msr`): read-dominated tenants
                // stream sequential multi-page requests, write-dominated
                // tenants issue small skewed writes, and arrivals may be
                // bursty. Training on the same request shapes the mixes
                // exhibit is what lets the model transfer to them.
                if read_dominated {
                    spec.pattern = workloads::AddressPattern::SequentialRuns {
                        run_len: *[8u32, 16].get(rng.gen_range(0..2)).expect("two options"),
                    };
                    spec.size = workloads::SizeDist::Uniform { min: 1, max: 4 };
                } else {
                    spec.pattern = workloads::AddressPattern::Zipf {
                        theta: rng.gen_range(0.7..0.95),
                    };
                    spec.size = workloads::SizeDist::Uniform { min: 1, max: 2 };
                }
                if rng.gen_bool(0.4) {
                    spec.arrival = workloads::ArrivalProcess::OnOff {
                        on_fraction: rng.gen_range(0.3..0.6),
                        burst_len: 32,
                    };
                }
                spec
            })
            .collect();

        let streams: Vec<Vec<IoRequest>> = specs
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let share = weights[t] / wsum;
                let count = ((self.spec.requests_per_sample as f64) * share).ceil() as usize;
                generate_tenant_stream(spec, t as u16, count.max(1), rng.gen())
            })
            .collect();
        let mixed = mix_chronological(&streams, self.spec.requests_per_sample);
        (mixed, specs)
    }

    /// Labels one mixed workload: evaluates every strategy and returns the
    /// sample (Algorithm 1, one loop iteration).
    pub fn label_workload(&self, trace: &[IoRequest]) -> LabelledSample {
        self.label_workload_with(trace, &mut SimArena::new())
    }

    /// [`Learner::label_workload`] drawing every strategy run's simulator
    /// buffers from a caller-owned [`SimArena`] (sequential sweeps only;
    /// a parallel [`EvalConfig::pool`] uses per-worker arenas instead).
    /// Labels are byte-identical to [`Learner::label_workload`].
    pub fn label_workload_with(&self, trace: &[IoRequest], arena: &mut SimArena) -> LabelledSample {
        let lpn_spaces = vec![self.spec.lpn_space; TENANTS];
        let evals = evaluate_all_with(trace, TENANTS, &lpn_spaces, &self.spec.eval, arena)
            .expect("synthetic workloads stay within device capacity");
        let best = best_strategy_with_tolerance(&evals, self.spec.label_tolerance);
        let features = FeatureVector::from_trace(trace, TENANTS, self.spec.max_total_iops);
        LabelledSample {
            features,
            label: best.strategy.index(TENANTS),
            best: best.strategy,
            best_metric_us: best.metric_us,
            metrics_us: evals.iter().map(|e| e.metric_us).collect(),
        }
    }

    /// Generates the full labelled dataset (Algorithm 1, lines 3–8).
    pub fn generate_dataset(&self, seed: u64) -> LabelledDataset {
        let mut rng = simrng::SimRng::seed_from_u64(seed);
        let samples = (0..self.spec.samples)
            .map(|_| {
                let (trace, _) = self.sample_mixed_workload(&mut rng);
                self.label_workload(&trace)
            })
            .collect();
        LabelledDataset {
            samples,
            max_total_iops: self.spec.max_total_iops,
        }
    }

    /// The parallel label farm: generates and labels the dataset by
    /// fanning samples across `pool`, one simulation sweep per worker
    /// item.
    ///
    /// Each sample's RNG is seeded independently with
    /// `simrng::derive_seed(seed, DOMAIN_LABEL_SAMPLE, i)` — the same
    /// stateless splitmix64 rule the fleet uses for its shard streams —
    /// so the result is deterministic and byte-identical for *any*
    /// worker count and regardless of completion order
    /// ([`parallel::par_map_with`] returns results in index order).
    ///
    /// Note this draws a *different* (equally valid) dataset than
    /// [`Learner::generate_dataset`], which threads one sequential RNG
    /// through all samples and therefore cannot fan out. The inner
    /// 42-strategy sweep runs sequentially per sample
    /// ([`EvalConfig::sequential`]); the outer fan-out already saturates
    /// the pool.
    pub fn generate_dataset_parallel(&self, seed: u64, pool: &PoolConfig) -> LabelledDataset {
        let inner = Learner::new(DatasetSpec {
            eval: self.spec.eval.sequential(),
            ..self.spec.clone()
        });
        let indices: Vec<u64> = (0..self.spec.samples as u64).collect();
        // One SimArena per farm worker: the inner 42-strategy sweep is
        // sequential, so every simulator run a worker performs after its
        // first recycles the same allocation pool. Worker-count
        // invariance holds because an arena only recycles buffers — it
        // never changes simulated outcomes.
        let samples = parallel::par_map_init(pool, &indices, SimArena::new, |arena, _, &i| {
            let mut rng =
                simrng::SimRng::seed_from_u64(simrng::derive_seed(seed, DOMAIN_LABEL_SAMPLE, i));
            let (trace, _) = inner.sample_mixed_workload(&mut rng);
            inner.label_workload_with(&trace, arena)
        });
        LabelledDataset {
            samples,
            max_total_iops: self.spec.max_total_iops,
        }
    }

    /// Trains the paper's 9→64→42 network on the dataset with a 7:3
    /// train/test split and 200 iterations (Algorithm 1, lines 9–15).
    pub fn train(&self, dataset: &LabelledDataset, choice: OptimizerChoice) -> TrainedModel {
        self.train_with(dataset, choice, 200, 0x5eed)
    }

    /// Training with explicit epoch count and seed. The 7:3 train/test
    /// split is sample-deterministic (see [`split_indices`]), and the
    /// held-out indices are returned on the model for honest post-hoc
    /// evaluation.
    pub fn train_with(
        &self,
        dataset: &LabelledDataset,
        choice: OptimizerChoice,
        epochs: usize,
        seed: u64,
    ) -> TrainedModel {
        let ann_data = dataset.to_ann_dataset();
        let (train_idx, test_idx) = split_indices(dataset.samples.len(), seed);
        let train = ann_data.subset(&train_idx);
        let test = ann_data.subset(&test_idx);
        let mut network = Network::paper_topology(choice.activation(), seed);
        let mut opt = choice.build();
        let mut trainer = Trainer::new(epochs, 32, seed ^ 0xabcd);
        let history = trainer.fit(&mut network, &train, Some(&test), opt.as_mut());
        TrainedModel {
            network,
            max_total_iops: dataset.max_total_iops,
            history,
            test_indices: test_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::SsdConfig;
    use parallel::PoolConfig;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            samples: 4,
            requests_per_sample: 300,
            max_total_iops: 120_000.0,
            lpn_space: 1 << 10,
            label_tolerance: 0.02,
            eval: EvalConfig {
                ssd: SsdConfig {
                    blocks_per_plane: 64,
                    pages_per_block: 32,
                    ..SsdConfig::paper_table1()
                },
                hybrid: false,
                pool: PoolConfig::with_workers(1),
            },
        }
    }

    #[test]
    fn sampled_workloads_have_four_live_tenants() {
        let learner = Learner::new(tiny_spec());
        let mut rng = simrng::SimRng::seed_from_u64(1);
        let (trace, specs) = learner.sample_mixed_workload(&mut rng);
        assert_eq!(specs.len(), 4);
        assert!(trace.len() <= 300);
        let mut seen = [false; 4];
        for r in &trace {
            seen[r.tenant as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all tenants present: {seen:?}");
    }

    #[test]
    fn workload_write_ratios_respect_dominance() {
        let learner = Learner::new(tiny_spec());
        let mut rng = simrng::SimRng::seed_from_u64(2);
        let (_, specs) = learner.sample_mixed_workload(&mut rng);
        for s in specs {
            assert!(
                s.write_ratio < 0.25 || s.write_ratio >= 0.75,
                "dominance gap violated: {}",
                s.write_ratio
            );
        }
    }

    #[test]
    fn labelling_produces_valid_class_ids() {
        let learner = Learner::new(tiny_spec());
        let mut rng = simrng::SimRng::seed_from_u64(3);
        let (trace, _) = learner.sample_mixed_workload(&mut rng);
        let sample = learner.label_workload(&trace);
        assert!(sample.label < 42);
        assert_eq!(Strategy::from_index(sample.label, 4), Some(sample.best));
        assert!(sample.best_metric_us > 0.0);
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let learner = Learner::new(tiny_spec());
        let a = learner.generate_dataset(7);
        let b = learner.generate_dataset(7);
        assert_eq!(a.samples.len(), 4);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.features, y.features);
        }
        let hist = a.label_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 4);
    }

    #[test]
    fn parallel_farm_is_worker_count_invariant_and_deterministic() {
        let learner = Learner::new(tiny_spec());
        let one = learner.generate_dataset_parallel(21, &PoolConfig::with_workers(1));
        let four = learner.generate_dataset_parallel(21, &PoolConfig::with_workers(4));
        assert_eq!(one.samples.len(), 4);
        assert_eq!(one.samples.len(), four.samples.len());
        for (x, y) in one.samples.iter().zip(&four.samples) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.features, y.features);
            assert_eq!(x.metrics_us, y.metrics_us);
        }
        // Re-running with the same seed reproduces the dataset exactly;
        // a different seed draws different workloads.
        let again = learner.generate_dataset_parallel(21, &PoolConfig::with_workers(4));
        for (x, y) in four.samples.iter().zip(&again.samples) {
            assert_eq!(x.features, y.features);
            assert_eq!(x.metrics_us, y.metrics_us);
        }
        let other = learner.generate_dataset_parallel(22, &PoolConfig::with_workers(2));
        assert!(
            four.samples
                .iter()
                .zip(&other.samples)
                .any(|(x, y)| x.features != y.features),
            "different seeds should draw different workloads"
        );
    }

    #[test]
    fn effective_accuracy_batches_without_changing_the_score() {
        let learner = Learner::new(tiny_spec());
        let dataset = learner.generate_dataset_parallel(13, &PoolConfig::with_workers(2));
        let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 3, 5);
        let allocator = model.allocator();
        let acc = effective_accuracy(&allocator, &dataset, 0.02).expect("v2 samples carry metrics");
        assert!((0.0..=1.0).contains(&acc));
        // The batched score equals the per-sample reference computation.
        let classes = Strategy::all_for_tenants(4).len();
        let mut hits = 0usize;
        let mut scored = 0usize;
        for s in &dataset.samples {
            if s.metrics_us.len() != classes {
                continue;
            }
            scored += 1;
            let predicted = allocator.predict(&s.features).index(4);
            let best = s.metrics_us.iter().copied().fold(f64::INFINITY, f64::min);
            if s.metrics_us[predicted] <= best * 1.02 {
                hits += 1;
            }
        }
        assert_eq!(acc, hits as f64 / scored as f64);
        // Metric-less samples score as None.
        let empty = LabelledDataset {
            samples: Vec::new(),
            max_total_iops: 1.0,
        };
        assert!(effective_accuracy(&allocator, &empty, 0.02).is_none());
    }

    #[test]
    fn dataset_text_round_trip() {
        let learner = Learner::new(tiny_spec());
        let d = learner.generate_dataset(9);
        let text = d.to_text();
        let parsed = LabelledDataset::from_text(&text).unwrap();
        assert_eq!(parsed.samples.len(), d.samples.len());
        assert_eq!(parsed.max_total_iops, d.max_total_iops);
        for (a, b) in d.samples.iter().zip(&parsed.samples) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.features.rw_char, b.features.rw_char);
            assert_eq!(a.features.intensity_level, b.features.intensity_level);
        }
        assert!(LabelledDataset::from_text("garbage").is_none());
    }

    #[test]
    fn optimizer_choices_cover_table3() {
        assert_eq!(OptimizerChoice::PAPER.len(), 4);
        assert_eq!(OptimizerChoice::AdamLogistic.name(), "Adam-logistic");
        assert_eq!(
            OptimizerChoice::AdamLogistic.activation(),
            Activation::Logistic
        );
        assert_eq!(OptimizerChoice::AdamRelu.activation(), Activation::ReLU);
        let opt = OptimizerChoice::Sgd.build();
        assert_eq!(opt.name(), "SGD");
    }

    #[test]
    fn training_on_a_tiny_dataset_runs_and_is_wired_up() {
        let learner = Learner::new(tiny_spec());
        let dataset = learner.generate_dataset(11);
        let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 5, 1);
        assert_eq!(model.history.loss.len(), 5);
        assert_eq!(model.network.input_width(), 9);
        assert_eq!(model.network.output_width(), 42);
        let alloc = model.allocator();
        let fv = dataset.samples[0].features.clone();
        let s = alloc.predict(&fv);
        assert!(s.index(4) < 42);
    }
}
