//! Persistence of trained strategy models *with* their calibration.
//!
//! A bare [`ann`] network is not deployable on its own: predictions are
//! only meaningful against the intensity scale (`max_total_iops`) the
//! features were computed with during training. This module stores both
//! together, so a loaded model cannot be silently mis-calibrated:
//!
//! ```text
//! ssdkeeper-model-v1
//! max_total_iops <float>
//! <ann-v1 network text>
//! ```
//!
//! Quantized deployments use the sibling `ssdkeeper-qmodel-v1` layout
//! with an `annq-v1` body ([`ann::io`]); integers serialize exactly, so
//! a quantized model round-trips bit-for-bit and a loaded allocator
//! decides identically to the one that was saved.

use crate::allocator::ChannelAllocator;
use crate::learner::TrainedModel;
use ann::io::{
    format_network, format_quant_network, parse_network, parse_quant_network, ModelIoError,
};
use ann::train::TrainHistory;
use std::path::Path;

const HEADER: &str = "ssdkeeper-model-v1";
const QHEADER: &str = "ssdkeeper-qmodel-v1";

/// Serializes a trained model (network + calibration) to text.
pub fn format_model(model: &TrainedModel) -> String {
    format!(
        "{HEADER}\nmax_total_iops {}\n{}",
        model.max_total_iops,
        format_network(&model.network)
    )
}

/// Parses the text form back into a model (history is not persisted).
pub fn parse_model(text: &str) -> Result<TrainedModel, ModelIoError> {
    let parse_err = |line: usize, message: &str| ModelIoError::Parse {
        line,
        message: message.to_string(),
    };
    let mut lines = text.splitn(3, '\n');
    let header = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if header.trim() != HEADER {
        return Err(parse_err(1, "missing ssdkeeper-model-v1 header"));
    }
    let calib = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing calibration line"))?;
    let max_total_iops: f64 = calib
        .strip_prefix("max_total_iops ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err(2, "expected `max_total_iops <float>`"))?;
    if max_total_iops <= 0.0 || max_total_iops.is_nan() {
        return Err(parse_err(2, "max_total_iops must be positive"));
    }
    let rest = lines
        .next()
        .ok_or_else(|| parse_err(3, "missing network body"))?;
    let network = parse_network(rest)?;
    Ok(TrainedModel {
        network,
        max_total_iops,
        history: TrainHistory::default(),
        test_indices: Vec::new(),
    })
}

/// Writes a model file.
pub fn save_model(model: &TrainedModel, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    std::fs::write(path, format_model(model)).map_err(ModelIoError::Io)
}

/// Reads a model file.
pub fn load_model(path: impl AsRef<Path>) -> Result<TrainedModel, ModelIoError> {
    let text = std::fs::read_to_string(path).map_err(ModelIoError::Io)?;
    parse_model(&text)
}

/// Loads a model file straight into a deployable allocator.
pub fn load_allocator(path: impl AsRef<Path>) -> Result<ChannelAllocator, ModelIoError> {
    Ok(load_model(path)?.allocator())
}

/// Serializes an allocator as a quantized model (network + calibration).
/// An f32-backed allocator is quantized on the way out.
pub fn format_quant_model(allocator: &ChannelAllocator) -> String {
    let q = allocator.quantized();
    format!(
        "{QHEADER}\nmax_total_iops {}\n{}",
        q.max_total_iops(),
        format_quant_network(q.quant_network().expect("quantized backend"))
    )
}

/// Parses the quantized text form back into a deployable allocator.
pub fn parse_quant_model(text: &str) -> Result<ChannelAllocator, ModelIoError> {
    let parse_err = |line: usize, message: &str| ModelIoError::Parse {
        line,
        message: message.to_string(),
    };
    let mut lines = text.splitn(3, '\n');
    let header = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if header.trim() != QHEADER {
        return Err(parse_err(1, "missing ssdkeeper-qmodel-v1 header"));
    }
    let calib = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing calibration line"))?;
    let max_total_iops: f64 = calib
        .strip_prefix("max_total_iops ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err(2, "expected `max_total_iops <float>`"))?;
    if max_total_iops <= 0.0 || max_total_iops.is_nan() {
        return Err(parse_err(2, "max_total_iops must be positive"));
    }
    let rest = lines
        .next()
        .ok_or_else(|| parse_err(3, "missing network body"))?;
    let quant = parse_quant_network(rest)?;
    Ok(ChannelAllocator::from_quantized(quant, max_total_iops))
}

/// Writes a quantized model file.
pub fn save_quant_model(
    allocator: &ChannelAllocator,
    path: impl AsRef<Path>,
) -> Result<(), ModelIoError> {
    std::fs::write(path, format_quant_model(allocator)).map_err(ModelIoError::Io)
}

/// Reads a quantized model file into a deployable allocator.
pub fn load_quant_allocator(path: impl AsRef<Path>) -> Result<ChannelAllocator, ModelIoError> {
    let text = std::fs::read_to_string(path).map_err(ModelIoError::Io)?;
    parse_quant_model(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVector;
    use ann::{Activation, Network};

    fn sample_model() -> TrainedModel {
        TrainedModel {
            network: Network::paper_topology(Activation::Logistic, 11),
            max_total_iops: 120_000.0,
            history: TrainHistory::default(),
            test_indices: Vec::new(),
        }
    }

    fn sample_features() -> FeatureVector {
        FeatureVector {
            intensity_level: 14,
            rw_char: [0, 1, 1, 0],
            shares: [0.5, 0.2, 0.2, 0.1],
        }
    }

    #[test]
    fn round_trip_preserves_network_and_calibration() {
        let model = sample_model();
        let parsed = parse_model(&format_model(&model)).unwrap();
        assert_eq!(parsed.network, model.network);
        assert_eq!(parsed.max_total_iops, model.max_total_iops);
        assert_eq!(
            model.allocator().predict(&sample_features()),
            parsed.allocator().predict(&sample_features())
        );
    }

    #[test]
    fn file_round_trip_and_allocator_loading() {
        let model = sample_model();
        let dir = std::env::temp_dir().join("ssdk_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save_model(&model, &path).unwrap();
        let allocator = load_allocator(&path).unwrap();
        assert_eq!(allocator.max_total_iops(), 120_000.0);
        assert_eq!(
            allocator.predict(&sample_features()),
            model.allocator().predict(&sample_features())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_model("ann-v1\n...").is_err());
        assert!(parse_model("").is_err());
    }

    /// Satellite gate: serialize → load → identical arg-max on a fixed
    /// corpus, through the quantized format.
    #[test]
    fn quant_model_round_trip_preserves_every_decision() {
        let model = sample_model();
        let allocator = model.allocator();
        let text = format_quant_model(&allocator);
        assert!(text.starts_with("ssdkeeper-qmodel-v1\nmax_total_iops 120000\nannq-v1\n"));
        let loaded = parse_quant_model(&text).unwrap();
        assert!(loaded.is_quantized());
        assert_eq!(loaded.max_total_iops(), 120_000.0);
        // Fixed corpus: every (level, rw, shares) combination here must
        // decide identically before and after the round trip — and the
        // loaded model must agree with the in-memory quantized backend.
        let quant = allocator.quantized();
        for level in 0..20u32 {
            for rw in 0..4u8 {
                let f = FeatureVector {
                    intensity_level: level,
                    rw_char: [rw & 1, (rw >> 1) & 1, 1, 0],
                    shares: [0.4, 0.3, 0.2, 0.1],
                };
                assert_eq!(loaded.predict(&f), quant.predict(&f));
            }
        }
    }

    #[test]
    fn quant_model_file_round_trip() {
        let allocator = sample_model().allocator();
        let dir = std::env::temp_dir().join("ssdk_qmodel_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qmodel.txt");
        save_quant_model(&allocator, &path).unwrap();
        let loaded = load_quant_allocator(&path).unwrap();
        assert_eq!(loaded.predict(&sample_features()), {
            allocator.quantized().predict(&sample_features())
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quant_model_rejects_f32_header() {
        let text = format_model(&sample_model());
        assert!(parse_quant_model(&text).is_err());
    }

    #[test]
    fn rejects_bad_calibration() {
        let model = sample_model();
        let text = format_model(&model).replace("max_total_iops 120000", "max_total_iops nope");
        assert!(parse_model(&text).is_err());
        let text = format_model(&model).replace("max_total_iops 120000", "max_total_iops -5");
        assert!(parse_model(&text).is_err());
    }

    #[test]
    fn rejects_corrupt_network_body() {
        let model = sample_model();
        let mut text = format_model(&model);
        text.truncate(text.len() / 2);
        assert!(parse_model(&text).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_model("/definitely/not/here.txt").unwrap_err(),
            ModelIoError::Io(_)
        ));
    }
}
