//! Observability surface for keeper-driven runs.
//!
//! One import path for everything a probe-wielding caller needs: the
//! [`Probe`] trait and its typed hook records, the bounded
//! [`EventRecorder`] sink, the persisted SSDP event codec, the streaming
//! [`MetricsProbe`] aggregator with its [`MetricsSummary`] snapshot (plus
//! the [`Tee`] combinator and offline [`replay`] that connect the two
//! worlds), and the session types that carry a probe into
//! [`crate::keeper::Keeper::run`]. The hook-point contract and overhead
//! discipline live in [`flash_sim::probe`]'s module docs (and DESIGN.md).
//!
//! ```no_run
//! use ssdkeeper::obs::{EventRecorder, RunSpec};
//! # use ssdkeeper::keeper::{Keeper, KeeperConfig};
//! # use ssdkeeper::ChannelAllocator;
//! # use ann::{Activation, Network};
//! # let net = Network::paper_topology(Activation::Logistic, 5);
//! # let keeper = Keeper::new(KeeperConfig::default(), ChannelAllocator::new(net, 120_000.0));
//! # let trace = vec![];
//! let mut rec = EventRecorder::with_capacity(1 << 16);
//! let outcome = keeper
//!     .run(RunSpec::adapt_once(&trace, &[1 << 14; 4]).with_probe(&mut rec))
//!     .unwrap();
//! let bytes = rec.encode();
//! # let _ = (outcome, bytes);
//! ```

pub use crate::keeper::{KeeperError, RunMode, RunOutcome, RunSpec};
pub use flash_sim::metrics::{
    ChannelMetrics, GcMetrics, MetricsProbe, MetricsSummary, TenantMetrics, WindowSample,
};
pub use flash_sim::probe::{
    decode_events, encode_events, replay, BusAcquire, BusRelease, CmdComplete, CmdIssue,
    EventRecorder, GcCollect, KeeperDecision, NullProbe, Probe, ProbeCodecError, ProbeEvent,
    ReallocApply, Tee, DECISION_CLASSES, DECISION_FEATURES,
};
pub use flash_sim::{PhaseHist, PhaseReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_reexports_are_usable_together() {
        // A recorder is a Probe; the codec round-trips its contents; the
        // keeper session types are reachable from one module.
        let mut rec = EventRecorder::with_capacity(4);
        rec.on_bus_acquire(&BusAcquire {
            at_ns: 1,
            cmd: 0,
            channel: 0,
            waited_ns: 0,
        });
        let bytes = rec.encode();
        let (events, dropped) = decode_events(&bytes).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        let _mode = RunMode::AdaptOnce;
        let _null = NullProbe;

        // The metrics layer composes with all of the above from this one
        // module: tee a recorder with a streaming aggregator, then replay
        // the recording into a second aggregator and get the same summary.
        let mut live = MetricsProbe::new(0);
        let mut tee = Tee::new(&mut rec, &mut live);
        tee.on_bus_release(&BusRelease {
            at_ns: 9,
            cmd: 0,
            channel: 0,
            held_ns: 8,
        });
        let mut offline = MetricsProbe::new(0);
        replay(rec.events(), &mut offline);
        let summary: MetricsSummary = offline.into_summary();
        // The recorder also holds the BusAcquire the live probe missed.
        assert_eq!(summary.channels[0].busy_ns, 8);
        assert_eq!(summary.channels[0].acquires, 1);
        assert_eq!(live.summary().channels[0].acquires, 0);
        let _: &ChannelMetrics = &summary.channels[0];
        let _ = (
            TenantMetrics::default(),
            GcMetrics::default(),
            WindowSample::default(),
        );
        assert_eq!(summary.write_amplification(), 1.0);
    }
}
