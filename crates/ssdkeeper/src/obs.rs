//! Observability surface for keeper-driven runs.
//!
//! One import path for everything a probe-wielding caller needs: the
//! [`Probe`] trait and its typed hook records, the bounded
//! [`EventRecorder`] sink, the persisted SSDP event codec, and the
//! session types that carry a probe into [`crate::keeper::Keeper::run`].
//! The hook-point contract and overhead discipline live in
//! [`flash_sim::probe`]'s module docs (and DESIGN.md).
//!
//! ```no_run
//! use ssdkeeper::obs::{EventRecorder, RunSpec, encode_events};
//! # use ssdkeeper::keeper::{Keeper, KeeperConfig};
//! # use ssdkeeper::ChannelAllocator;
//! # use ann::{Activation, Network};
//! # let net = Network::paper_topology(Activation::Logistic, 5);
//! # let keeper = Keeper::new(KeeperConfig::default(), ChannelAllocator::new(net, 120_000.0));
//! # let trace = vec![];
//! let mut rec = EventRecorder::with_capacity(1 << 16);
//! let outcome = keeper
//!     .run(RunSpec::adapt_once(&trace, &[1 << 14; 4]).with_probe(&mut rec))
//!     .unwrap();
//! let bytes = encode_events(rec.events(), rec.dropped());
//! # let _ = (outcome, bytes);
//! ```

pub use crate::keeper::{KeeperError, RunMode, RunOutcome, RunSpec};
pub use flash_sim::probe::{
    decode_events, encode_events, BusAcquire, BusRelease, CmdComplete, CmdIssue, EventRecorder,
    GcCollect, KeeperDecision, NullProbe, Probe, ProbeCodecError, ProbeEvent, ReallocApply,
    DECISION_CLASSES, DECISION_FEATURES,
};
pub use flash_sim::{PhaseHist, PhaseReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_reexports_are_usable_together() {
        // A recorder is a Probe; the codec round-trips its contents; the
        // keeper session types are reachable from one module.
        let mut rec = EventRecorder::with_capacity(4);
        rec.on_bus_acquire(&BusAcquire {
            at_ns: 1,
            cmd: 0,
            channel: 0,
            waited_ns: 0,
        });
        let bytes = encode_events(rec.events(), rec.dropped());
        let (events, dropped) = decode_events(&bytes).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        let _mode = RunMode::AdaptOnce;
        let _null = NullProbe;
    }
}
