//! The 9-dimensional feature vector (§V-A).
//!
//! `[intensity level (1)] ++ [read/write characteristic per tenant (4)]
//! ++ [request share per tenant (4)]`, printed the way the paper does:
//! `[5] [1,0,1,0] [0.10,0.20,0.30,0.40]`.

use workloads::{IntensityScale, ObservedFeatures};

/// Number of tenants the paper's model is built for.
pub const TENANTS: usize = 4;
/// Width of the model input.
pub const FEATURE_DIM: usize = 1 + 2 * TENANTS;

/// The features collector's output for one observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// Overall intensity level, 0–19.
    pub intensity_level: u32,
    /// Per-tenant read/write characteristic (0 write-dominated, 1
    /// read-dominated).
    pub rw_char: [u8; TENANTS],
    /// Per-tenant share of total requests (sums to 1 for active windows).
    pub shares: [f64; TENANTS],
}

impl FeatureVector {
    /// Builds the vector from window observations.
    ///
    /// Traces with fewer than four tenants are padded with idle tenants
    /// (characteristic 1, share 0), matching a device whose remaining
    /// namespaces are quiet.
    ///
    /// # Panics
    ///
    /// Panics when more than four tenants were observed.
    pub fn from_observed(obs: &ObservedFeatures, scale: &IntensityScale) -> Self {
        assert!(
            obs.tenants() <= TENANTS,
            "the paper's model handles up to {TENANTS} tenants"
        );
        let mut rw_char = [1u8; TENANTS];
        let mut shares = [0.0f64; TENANTS];
        let observed_shares = obs.shares();
        for t in 0..obs.tenants() {
            rw_char[t] = obs.rw_characteristic(t);
            shares[t] = observed_shares[t];
        }
        Self {
            intensity_level: obs.intensity_level(scale),
            rw_char,
            shares,
        }
    }

    /// The model input: level normalized to `[0,1]`, characteristics as
    /// 0/1, shares as-is.
    pub fn to_input(&self) -> [f32; FEATURE_DIM] {
        let mut out = [0.0f32; FEATURE_DIM];
        out[0] = self.intensity_level as f32 / 19.0;
        for t in 0..TENANTS {
            out[1 + t] = self.rw_char[t] as f32;
            out[1 + TENANTS + t] = self.shares[t] as f32;
        }
        out
    }

    /// Total write proportion implied by the features: write-dominated
    /// tenants contribute their share (the Figure 6 y-axis
    /// approximation).
    pub fn write_proportion_estimate(&self) -> f64 {
        (0..TENANTS)
            .filter(|&t| self.rw_char[t] == 0)
            .map(|t| self.shares[t])
            .sum()
    }
}

/// Quantizes a measured request *rate* into the 20-level intensity scale:
/// `level = floor(rate / max_iops * 20)`, clamped to 19. Used by offline
/// label generation, where the whole trace is visible and rate is the
/// honest intensity measure; the online collector uses
/// [`workloads::IntensityScale`] over a fixed window instead.
pub fn rate_intensity_level(requests: u64, span_ns: u64, max_iops: f64) -> u32 {
    assert!(max_iops > 0.0, "max_iops must be positive");
    if requests == 0 || span_ns == 0 {
        return 0;
    }
    let rate = requests as f64 / (span_ns as f64 / 1e9);
    ((rate / max_iops * 20.0) as u32).min(19)
}

impl FeatureVector {
    /// Builds the vector from a whole trace using the rate-based level.
    pub fn from_trace(trace: &[flash_sim::IoRequest], tenants: usize, max_iops: f64) -> Self {
        let obs = ObservedFeatures::collect(trace, tenants, u64::MAX);
        let span_ns = trace
            .last()
            .map(|r| r.arrival_ns.saturating_sub(trace[0].arrival_ns))
            .unwrap_or(0)
            .max(1);
        let mut rw_char = [1u8; TENANTS];
        let mut shares = [0.0f64; TENANTS];
        let observed_shares = obs.shares();
        for t in 0..obs.tenants().min(TENANTS) {
            rw_char[t] = obs.rw_characteristic(t);
            shares[t] = observed_shares[t];
        }
        Self {
            intensity_level: rate_intensity_level(obs.total(), span_ns, max_iops),
            rw_char,
            shares,
        }
    }
}

impl std::fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] [{},{},{},{}] [{:.2},{:.2},{:.2},{:.2}]",
            self.intensity_level,
            self.rw_char[0],
            self.rw_char[1],
            self.rw_char[2],
            self.rw_char[3],
            self.shares[0],
            self.shares[1],
            self.shares[2],
            self.shares[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{IoRequest, Op};

    fn req(t: u16, op: Op, at: u64) -> IoRequest {
        IoRequest::new(0, t, op, 0, 1, at)
    }

    fn sample_obs() -> ObservedFeatures {
        let trace = vec![
            req(0, Op::Write, 0),
            req(0, Op::Write, 1),
            req(1, Op::Read, 2),
            req(2, Op::Read, 3),
            req(3, Op::Write, 4),
            req(3, Op::Read, 5),
            req(3, Op::Read, 6),
            req(3, Op::Read, 7),
        ];
        ObservedFeatures::collect(&trace, 4, u64::MAX)
    }

    #[test]
    fn from_observed_fills_all_slots() {
        let scale = IntensityScale::new(16.0);
        let fv = FeatureVector::from_observed(&sample_obs(), &scale);
        assert_eq!(fv.intensity_level, 10); // 8 of 16 requests → level 10
        assert_eq!(fv.rw_char, [0, 1, 1, 1]);
        assert_eq!(fv.shares, [0.25, 0.125, 0.125, 0.5]);
    }

    #[test]
    fn padding_for_two_tenant_traces() {
        let trace = vec![req(0, Op::Write, 0), req(1, Op::Read, 1)];
        let obs = ObservedFeatures::collect(&trace, 2, u64::MAX);
        let fv = FeatureVector::from_observed(&obs, &IntensityScale::new(4.0));
        assert_eq!(fv.rw_char, [0, 1, 1, 1]);
        assert_eq!(fv.shares[2], 0.0);
        assert_eq!(fv.shares[3], 0.0);
    }

    #[test]
    fn to_input_layout_and_normalization() {
        let fv = FeatureVector {
            intensity_level: 19,
            rw_char: [1, 0, 1, 0],
            shares: [0.1, 0.2, 0.3, 0.4],
        };
        let x = fv.to_input();
        assert_eq!(x.len(), 9);
        assert_eq!(x[0], 1.0);
        assert_eq!(&x[1..5], &[1.0, 0.0, 1.0, 0.0]);
        assert!((x[5] - 0.1).abs() < 1e-6);
        assert!((x[8] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn display_matches_paper_format() {
        let fv = FeatureVector {
            intensity_level: 5,
            rw_char: [1, 0, 1, 0],
            shares: [0.1, 0.2, 0.3, 0.4],
        };
        assert_eq!(fv.to_string(), "[5] [1,0,1,0] [0.10,0.20,0.30,0.40]");
    }

    #[test]
    fn write_proportion_estimate_sums_write_dominated_shares() {
        let fv = FeatureVector {
            intensity_level: 5,
            rw_char: [0, 1, 0, 1],
            shares: [0.4, 0.1, 0.2, 0.3],
        };
        assert!((fv.write_proportion_estimate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rate_level_quantization() {
        // 1000 requests over 0.1 s = 10k IOPS; max 20k → level 10.
        assert_eq!(rate_intensity_level(1000, 100_000_000, 20_000.0), 10);
        assert_eq!(rate_intensity_level(0, 100, 20_000.0), 0);
        assert_eq!(rate_intensity_level(10, 0, 20_000.0), 0);
        // Saturates at 19.
        assert_eq!(rate_intensity_level(1_000_000, 1_000_000, 1.0), 19);
    }

    #[test]
    fn from_trace_measures_rate_and_shares() {
        // 4 requests over 3 µs ≈ 1.33M IOPS; max 2M → level 13.
        let trace = vec![
            req(0, Op::Write, 0),
            req(1, Op::Read, 1_000),
            req(1, Op::Read, 2_000),
            req(2, Op::Read, 3_000),
        ];
        let fv = FeatureVector::from_trace(&trace, 4, 2_000_000.0);
        assert_eq!(fv.intensity_level, 13);
        assert_eq!(fv.rw_char, [0, 1, 1, 1]);
        assert_eq!(fv.shares, [0.25, 0.5, 0.25, 0.0]);
    }

    #[test]
    fn from_trace_empty_is_level_zero() {
        let fv = FeatureVector::from_trace(&[], 4, 1000.0);
        assert_eq!(fv.intensity_level, 0);
        assert_eq!(fv.shares, [0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "up to 4 tenants")]
    fn too_many_tenants_panics() {
        let trace = vec![req(4, Op::Read, 0)];
        let obs = ObservedFeatures::collect(&trace, 5, u64::MAX);
        let _ = FeatureVector::from_observed(&obs, &IntensityScale::new(1.0));
    }
}
