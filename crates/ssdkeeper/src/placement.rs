//! Fleet-tier placement: tenants onto devices (tier 1 of the two-tier
//! keeper).
//!
//! The paper's Algorithm 2 partitions the channels of *one* SSD among up
//! to four tenants. At fleet scale a second decision precedes it: which
//! device should host each tenant at all. This module implements that
//! upper tier as deterministic bin-packing on **predicted intensity** —
//! the same signal the per-device features collector quantizes (requests
//! observed in one window, see [`workloads::ObservedFeatures`]) — so both
//! tiers of the keeper read the same evidence.
//!
//! A device exposes [`DEVICE_SLOTS`] namespaces (the four tenant slots
//! the paper's model is built for). A fleet tenant is packed into a
//! `(device, slot)` pair; multiple tenants sharing a slot are merged into
//! one device-tenant stream by the fleet layer. Placement is greedy
//! longest-processing-time: tenants in descending predicted intensity,
//! each to the least-loaded device, then the least-loaded slot — ties
//! break toward the lowest index, so the result is a pure function of the
//! load vector.
//!
//! [`FleetPlacer::replace_hottest`] is the re-placement hook: when one
//! device's observed tail latency drifts past `threshold ×` the fleet
//! median, the hottest tenant on that device moves to the least-loaded
//! other device. Only the two affected devices change, so the fleet layer
//! re-simulates exactly those shards.

use workloads::ObservedFeatures;

use flash_sim::IoRequest;

/// Tenant slots per device — the paper's model partitions channels among
/// at most this many tenants (see [`crate::features::TENANTS`]).
pub const DEVICE_SLOTS: usize = crate::features::TENANTS;

/// Predicted load for one fleet tenant, extracted from an observation
/// prefix of its (single-tenant, tenant-id 0) request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLoad {
    /// Fleet-wide tenant id.
    pub tenant: usize,
    /// Predicted intensity: requests observed in the window (the raw
    /// count [`workloads::IntensityScale`] quantizes to a level).
    pub intensity: f64,
    /// Read/write characteristic from the same window (1 = read-
    /// dominated), kept so placement variants can segregate classes.
    pub read_dominated: bool,
}

impl TenantLoad {
    /// Observes the first `window_ns` of a tenant's stream with the
    /// features collector. The stream must carry tenant id 0 (fleet
    /// streams are generated untagged; slot mixing re-tags them).
    pub fn observe(tenant: usize, stream: &[IoRequest], window_ns: u64) -> Self {
        let obs = ObservedFeatures::collect(stream, 1, window_ns);
        Self {
            tenant,
            intensity: obs.total() as f64,
            read_dominated: obs.rw_characteristic(0) == 1,
        }
    }

    /// Observes a whole fleet in one call: `streams[t]` is tenant `t`'s
    /// stream. Equivalent to mapping [`TenantLoad::observe`] over the
    /// enumerated streams; the batch form exists so fleet call sites that
    /// fetch streams lazily can observe each one while it is resident.
    pub fn observe_all<S: AsRef<[IoRequest]>>(streams: &[S], window_ns: u64) -> Vec<Self> {
        streams
            .iter()
            .enumerate()
            .map(|(t, s)| Self::observe(t, s.as_ref(), window_ns))
            .collect()
    }
}

/// A fleet placement: every tenant mapped to a `(device, slot)` pair.
///
/// Invariant: within each device the non-empty slots form a prefix
/// `0..n` (the per-device keeper addresses tenants by dense index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `device_of[tenant]` — hosting device.
    pub device_of: Vec<usize>,
    /// `slot_of[tenant]` — namespace slot on that device.
    pub slot_of: Vec<usize>,
    /// Number of devices placed across.
    pub devices: usize,
}

impl Placement {
    /// Tenants of one device grouped by slot, dense: `out[s]` lists the
    /// tenant ids sharing slot `s`, ascending; empty trailing slots are
    /// omitted.
    pub fn device_slots(&self, device: usize) -> Vec<Vec<usize>> {
        let mut slots: Vec<Vec<usize>> = Vec::new();
        for t in 0..self.device_of.len() {
            if self.device_of[t] == device {
                let s = self.slot_of[t];
                while slots.len() <= s {
                    slots.push(Vec::new());
                }
                slots[s].push(t);
            }
        }
        while slots.last().is_some_and(Vec::is_empty) {
            slots.pop();
        }
        slots
    }

    /// Tenants hosted on `device`, ascending by id.
    pub fn device_tenants(&self, device: usize) -> Vec<usize> {
        (0..self.device_of.len())
            .filter(|&t| self.device_of[t] == device)
            .collect()
    }

    /// Renumbers one device's occupied slots into a dense prefix after a
    /// tenant was removed, preserving relative slot order.
    fn compact_device(&mut self, device: usize) {
        let mut occupied: Vec<usize> = (0..self.device_of.len())
            .filter(|&t| self.device_of[t] == device)
            .map(|t| self.slot_of[t])
            .collect();
        occupied.sort_unstable();
        occupied.dedup();
        for t in 0..self.device_of.len() {
            if self.device_of[t] == device {
                self.slot_of[t] = occupied
                    .iter()
                    .position(|&s| s == self.slot_of[t])
                    .expect("slot is occupied by construction");
            }
        }
    }
}

/// Deterministic bin-packing placer for a fixed device count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPlacer {
    /// Devices available to place onto.
    pub devices: usize,
    /// Usable namespace slots per device (≤ [`DEVICE_SLOTS`]).
    pub slots_per_device: usize,
}

impl FleetPlacer {
    /// A placer over `devices` devices with the full four slots each.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "fleet needs at least one device");
        Self {
            devices,
            slots_per_device: DEVICE_SLOTS,
        }
    }

    /// Greedy LPT bin-packing: descending predicted intensity (ties:
    /// lowest tenant id), each tenant to the device with the least total
    /// predicted intensity (ties: lowest device id), then to that
    /// device's least-loaded slot (ties: lowest slot). A pure function of
    /// `loads` — identical inputs place identically on every run.
    pub fn place(&self, loads: &[TenantLoad]) -> Placement {
        obs::span!("fleet_place");
        obs::counter_add!("keeper.placements", loads.len() as u64);
        let mut order: Vec<usize> = (0..loads.len()).collect();
        order.sort_by(|&a, &b| {
            loads[b]
                .intensity
                .partial_cmp(&loads[a].intensity)
                .expect("intensities are finite")
                .then(loads[a].tenant.cmp(&loads[b].tenant))
        });
        let mut device_load = vec![0.0f64; self.devices];
        let mut slot_load = vec![vec![0.0f64; self.slots_per_device]; self.devices];
        let mut device_of = vec![0usize; loads.len()];
        let mut slot_of = vec![0usize; loads.len()];
        for &i in &order {
            let d = min_index(&device_load);
            let s = min_index(&slot_load[d]);
            device_of[loads[i].tenant] = d;
            slot_of[loads[i].tenant] = s;
            device_load[d] += loads[i].intensity;
            slot_load[d][s] += loads[i].intensity;
        }
        Placement {
            device_of,
            slot_of,
            devices: self.devices,
        }
    }

    /// The re-placement hook. `tail_ns[d]` is device `d`'s observed tail
    /// latency (e.g. p99 from its `MetricsProbe` summary). When the worst
    /// device's tail exceeds `threshold ×` the fleet median — and it has
    /// a tenant to give up — the device's highest-intensity tenant moves
    /// to the least-loaded *other* device, and the changed placement is
    /// returned together with `(moved_tenant, from_device, to_device)`.
    /// Returns `None` when the fleet is within the drift bound.
    pub fn replace_hottest(
        &self,
        placement: &Placement,
        loads: &[TenantLoad],
        tail_ns: &[u64],
        threshold: f64,
    ) -> Option<(Placement, usize, usize, usize)> {
        assert_eq!(tail_ns.len(), self.devices);
        if self.devices < 2 {
            return None;
        }
        let mut sorted = tail_ns.to_vec();
        sorted.sort_unstable();
        // Lower median: for even device counts the upper median would be
        // the worst device itself in a two-device fleet, making the
        // drift test vacuous.
        let median = sorted[(sorted.len() - 1) / 2];
        let worst = (0..self.devices).max_by_key(|&d| (tail_ns[d], usize::MAX - d))?;
        if (tail_ns[worst] as f64) <= threshold * median as f64 || median == 0 {
            return None;
        }
        // Hottest tenant on the worst device (ties: lowest id); a device
        // with a single tenant keeps it — moving would just relocate the
        // hotspot.
        let tenants = placement.device_tenants(worst);
        if tenants.len() < 2 {
            return None;
        }
        let moved = *tenants
            .iter()
            .max_by(|&&a, &&b| {
                loads[a]
                    .intensity
                    .partial_cmp(&loads[b].intensity)
                    .expect("intensities are finite")
                    .then(b.cmp(&a))
            })
            .expect("device has tenants");
        // Least predicted load among the other devices (ties: lowest id).
        let mut device_load = vec![0.0f64; self.devices];
        for l in loads {
            device_load[placement.device_of[l.tenant]] += l.intensity;
        }
        device_load[worst] = f64::INFINITY;
        let target = min_index(&device_load);
        let mut next = placement.clone();
        next.device_of[moved] = target;
        // Slot on the target with the least predicted load.
        let mut slot_load = vec![0.0f64; self.slots_per_device];
        for l in loads {
            if l.tenant != moved && next.device_of[l.tenant] == target {
                slot_load[next.slot_of[l.tenant]] += l.intensity;
            }
        }
        next.slot_of[moved] = min_index(&slot_load);
        next.compact_device(worst);
        Some((next, moved, worst, target))
    }
}

/// Index of the smallest value; ties resolve to the lowest index.
fn min_index(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Op;

    fn load(tenant: usize, intensity: f64) -> TenantLoad {
        TenantLoad {
            tenant,
            intensity,
            read_dominated: true,
        }
    }

    #[test]
    fn observe_counts_the_window_only() {
        let stream = vec![
            IoRequest::new(0, 0, Op::Write, 0, 1, 10),
            IoRequest::new(1, 0, Op::Write, 1, 1, 20),
            IoRequest::new(2, 0, Op::Read, 2, 1, 999),
        ];
        let l = TenantLoad::observe(7, &stream, 100);
        assert_eq!(l.tenant, 7);
        assert_eq!(l.intensity, 2.0);
        assert!(!l.read_dominated, "window is write-dominated");
    }

    #[test]
    fn observe_all_matches_per_stream_observe() {
        let streams: Vec<Vec<IoRequest>> = (0..3)
            .map(|t| {
                (0..=t as u64)
                    .map(|i| IoRequest::new(i * 10, 0, Op::Read, i, 1, 5))
                    .collect()
            })
            .collect();
        let all = TenantLoad::observe_all(&streams, 100);
        assert_eq!(all.len(), 3);
        for (t, l) in all.iter().enumerate() {
            assert_eq!(*l, TenantLoad::observe(t, &streams[t], 100));
        }
    }

    #[test]
    fn place_balances_equal_loads_round_robin() {
        let loads: Vec<TenantLoad> = (0..8).map(|t| load(t, 1.0)).collect();
        let p = FleetPlacer::new(4).place(&loads);
        for d in 0..4 {
            assert_eq!(p.device_tenants(d).len(), 2, "device {d}");
        }
        // Dense slots: two tenants on a device occupy slots 0 and 1.
        for d in 0..4 {
            let slots = p.device_slots(d);
            assert_eq!(slots.len(), 2);
            assert!(slots.iter().all(|s| s.len() == 1));
        }
    }

    #[test]
    fn place_puts_heavy_tenants_on_distinct_devices() {
        // 2 devices, two heavy + two light tenants: LPT must pair each
        // heavy tenant with a light one.
        let loads = vec![load(0, 10.0), load(1, 10.0), load(2, 1.0), load(3, 1.0)];
        let p = FleetPlacer::new(2).place(&loads);
        assert_ne!(p.device_of[0], p.device_of[1], "heavies split");
        assert_ne!(p.device_of[2], p.device_of[3], "lights split");
    }

    #[test]
    fn place_is_deterministic_and_slot_dense() {
        let loads: Vec<TenantLoad> = (0..37)
            .map(|t| load(t, ((t * 7919) % 13) as f64 + 0.5))
            .collect();
        let placer = FleetPlacer::new(5);
        let a = placer.place(&loads);
        assert_eq!(a, placer.place(&loads));
        for d in 0..5 {
            let slots = a.device_slots(d);
            assert!(slots.len() <= DEVICE_SLOTS);
            assert!(slots.iter().all(|s| !s.is_empty()), "dense slot prefix");
        }
        // Every tenant placed exactly once.
        let total: usize = (0..5).map(|d| a.device_tenants(d).len()).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn replace_hottest_fires_only_past_threshold() {
        let loads = vec![load(0, 5.0), load(1, 3.0), load(2, 4.0), load(3, 4.0)];
        let placer = FleetPlacer::new(2);
        let p = placer.place(&loads);
        // Balanced tails: no move.
        assert!(placer
            .replace_hottest(&p, &loads, &[100, 110], 2.0)
            .is_none());
        // One device far past 2x the median: its hottest tenant moves.
        let worst_dev = p.device_of[0];
        let mut tails = vec![100u64; 2];
        tails[worst_dev] = 1_000;
        let (next, moved, from, to) = placer
            .replace_hottest(&p, &loads, &tails, 2.0)
            .expect("drift past threshold must trigger");
        assert_eq!(from, worst_dev);
        assert_ne!(to, worst_dev);
        assert_eq!(moved, 0, "tenant 0 is the hottest on the worst device");
        assert_eq!(next.device_of[0], to);
        // Unchanged devices keep their assignments.
        for t in 0..4 {
            if t != moved {
                assert_eq!(next.device_of[t], p.device_of[t]);
            }
        }
    }

    #[test]
    fn replace_hottest_keeps_single_tenant_devices() {
        let loads = vec![load(0, 5.0), load(1, 1.0)];
        let placer = FleetPlacer::new(2);
        let p = placer.place(&loads);
        let mut tails = vec![10u64; 2];
        tails[p.device_of[0]] = 10_000;
        assert!(
            placer.replace_hottest(&p, &loads, &tails, 2.0).is_none(),
            "a lone tenant stays put"
        );
    }

    #[test]
    fn removal_recompacts_source_slots() {
        // Force >4 tenants on 1 device so two share a slot, then move one.
        let loads: Vec<TenantLoad> = (0..6).map(|t| load(t, (6 - t) as f64)).collect();
        let placer = FleetPlacer {
            devices: 2,
            slots_per_device: 2,
        };
        let p = placer.place(&loads);
        let worst = p.device_of[0];
        let mut tails = vec![1u64; 2];
        tails[worst] = 100;
        let (next, _, from, _) = placer
            .replace_hottest(&p, &loads, &tails, 2.0)
            .expect("triggered");
        let slots = next.device_slots(from);
        assert!(slots.iter().all(|s| !s.is_empty()), "dense after removal");
    }
}
