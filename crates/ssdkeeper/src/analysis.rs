//! Decision-quality analysis of a trained allocator against a labelled
//! dataset with per-strategy metrics (v2 datasets).
//!
//! Raw 42-class accuracy under-reports model quality when many strategies
//! are near-equivalent; these utilities quantify what matters instead:
//! the **latency regret** of each prediction, its distribution, how it
//! varies with intensity, and which strategy *families* get confused.

use crate::allocator::ChannelAllocator;
use crate::learner::LabelledDataset;
use crate::strategy::Strategy;

/// Distribution of per-sample prediction regret (fraction above optimal).
#[derive(Debug, Clone, PartialEq)]
pub struct RegretSummary {
    /// Samples scored (those carrying metrics).
    pub samples: usize,
    /// Mean regret.
    pub mean: f64,
    /// Median regret.
    pub p50: f64,
    /// 95th-percentile regret.
    pub p95: f64,
    /// Worst regret.
    pub max: f64,
    /// Fraction of predictions within 1 % of optimal.
    pub within_1pct: f64,
    /// Fraction within 5 %.
    pub within_5pct: f64,
    /// Fraction within 10 %.
    pub within_10pct: f64,
}

/// Per-sample regrets of the allocator's predictions; `None` when the
/// dataset carries no metrics.
pub fn prediction_regrets(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
) -> Option<Vec<f64>> {
    let classes = Strategy::all_for_tenants(4).len();
    let regrets: Vec<f64> = dataset
        .samples
        .iter()
        .filter(|s| s.metrics_us.len() == classes)
        .map(|s| {
            let predicted = allocator.predict(&s.features).index(4);
            let best = s.metrics_us.iter().copied().fold(f64::INFINITY, f64::min);
            (s.metrics_us[predicted] / best - 1.0).max(0.0)
        })
        .collect();
    (!regrets.is_empty()).then_some(regrets)
}

/// Summarizes the regret distribution; `None` without metrics.
pub fn regret_summary(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
) -> Option<RegretSummary> {
    let mut regrets = prediction_regrets(allocator, dataset)?;
    regrets.sort_by(|a, b| a.partial_cmp(b).expect("regrets are finite"));
    let n = regrets.len();
    let pick = |q: f64| regrets[((n as f64 - 1.0) * q).round() as usize];
    let frac_within = |tol: f64| regrets.iter().filter(|&&r| r <= tol).count() as f64 / n as f64;
    Some(RegretSummary {
        samples: n,
        mean: regrets.iter().sum::<f64>() / n as f64,
        p50: pick(0.5),
        p95: pick(0.95),
        max: regrets[n - 1],
        within_1pct: frac_within(0.01),
        within_5pct: frac_within(0.05),
        within_10pct: frac_within(0.10),
    })
}

/// Accuracy bucketed by intensity level: returns
/// `(level, samples, exact_accuracy, effective_accuracy)` rows for levels
/// with at least one sample.
pub fn accuracy_by_level(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
    rel_tol: f64,
) -> Vec<(u32, usize, f64, f64)> {
    let classes = Strategy::all_for_tenants(4).len();
    let mut buckets: Vec<(usize, usize, usize)> = vec![(0, 0, 0); 20]; // (n, exact, effective)
    for s in &dataset.samples {
        let level = s.features.intensity_level.min(19) as usize;
        let predicted = allocator.predict(&s.features).index(4);
        buckets[level].0 += 1;
        if predicted == s.label {
            buckets[level].1 += 1;
        }
        if s.metrics_us.len() == classes {
            let best = s.metrics_us.iter().copied().fold(f64::INFINITY, f64::min);
            if s.metrics_us[predicted] <= best * (1.0 + rel_tol) {
                buckets[level].2 += 1;
            }
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (n, _, _))| *n > 0)
        .map(|(level, (n, exact, eff))| {
            (
                level as u32,
                n,
                exact as f64 / n as f64,
                eff as f64 / n as f64,
            )
        })
        .collect()
}

/// Coarse strategy family for confusion analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The `Shared` strategy.
    Shared,
    /// `Isolated` or any two-part split.
    Partitioned2,
    /// Any four-part composition.
    Partitioned4,
}

impl Family {
    /// Family of a strategy.
    pub fn of(s: Strategy) -> Family {
        match s {
            Strategy::Shared => Family::Shared,
            Strategy::Isolated | Strategy::TwoPart { .. } => Family::Partitioned2,
            Strategy::FourPart(_) => Family::Partitioned4,
        }
    }

    /// Index 0..3 for confusion-matrix addressing.
    pub fn index(self) -> usize {
        match self {
            Family::Shared => 0,
            Family::Partitioned2 => 1,
            Family::Partitioned4 => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Shared => "Shared",
            Family::Partitioned2 => "2-part",
            Family::Partitioned4 => "4-part",
        }
    }
}

/// 3×3 family confusion matrix: `m[true_family][predicted_family]`.
pub fn family_confusion(
    allocator: &ChannelAllocator,
    dataset: &LabelledDataset,
) -> [[usize; 3]; 3] {
    let mut m = [[0usize; 3]; 3];
    for s in &dataset.samples {
        let truth = Family::of(s.best).index();
        let pred = Family::of(allocator.predict(&s.features)).index();
        m[truth][pred] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVector;
    use crate::learner::{LabelledSample, TrainedModel};
    use ann::train::TrainHistory;
    use ann::{Activation, Network};

    fn allocator() -> ChannelAllocator {
        TrainedModel {
            network: Network::paper_topology(Activation::Logistic, 19),
            max_total_iops: 120_000.0,
            history: TrainHistory::default(),
            test_indices: Vec::new(),
        }
        .allocator()
    }

    /// A dataset where every strategy has metric 100 except the label's 90:
    /// any wrong prediction costs exactly 11.1% regret.
    fn synthetic_dataset(n: usize) -> LabelledDataset {
        let samples = (0..n)
            .map(|i| {
                let label = i % 42;
                let mut metrics = vec![100.0f64; 42];
                metrics[label] = 90.0;
                LabelledSample {
                    features: FeatureVector {
                        intensity_level: (i % 20) as u32,
                        rw_char: [0, 1, 0, 1],
                        shares: [0.25; 4],
                    },
                    label,
                    best: Strategy::from_index(label, 4).unwrap(),
                    best_metric_us: 90.0,
                    metrics_us: metrics,
                }
            })
            .collect();
        LabelledDataset {
            samples,
            max_total_iops: 120_000.0,
        }
    }

    #[test]
    fn regrets_are_zero_or_the_constructed_gap() {
        let d = synthetic_dataset(84);
        let a = allocator();
        let regrets = prediction_regrets(&a, &d).unwrap();
        assert_eq!(regrets.len(), 84);
        for r in regrets {
            assert!(
                r.abs() < 1e-9 || (r - 1.0 / 9.0).abs() < 1e-9,
                "unexpected regret {r}"
            );
        }
    }

    #[test]
    fn summary_fields_are_consistent() {
        let d = synthetic_dataset(84);
        let s = regret_summary(&allocator(), &d).unwrap();
        assert_eq!(s.samples, 84);
        assert!(s.p50 <= s.p95 && s.p95 <= s.max);
        assert!(s.within_1pct <= s.within_5pct && s.within_5pct <= s.within_10pct);
        // In this construction, within_10pct == fraction of exact hits.
        assert!((0.0..=1.0).contains(&s.within_10pct));
    }

    #[test]
    fn no_metrics_means_none() {
        let mut d = synthetic_dataset(4);
        for s in &mut d.samples {
            s.metrics_us.clear();
        }
        assert!(prediction_regrets(&allocator(), &d).is_none());
        assert!(regret_summary(&allocator(), &d).is_none());
    }

    #[test]
    fn level_buckets_cover_all_samples() {
        let d = synthetic_dataset(100);
        let rows = accuracy_by_level(&allocator(), &d, 0.05);
        let total: usize = rows.iter().map(|(_, n, _, _)| n).sum();
        assert_eq!(total, 100);
        for (level, _, exact, eff) in rows {
            assert!(level < 20);
            assert!((0.0..=1.0).contains(&exact));
            assert!((0.0..=1.0).contains(&eff));
        }
    }

    #[test]
    fn family_mapping_and_confusion_totals() {
        assert_eq!(Family::of(Strategy::Shared), Family::Shared);
        assert_eq!(Family::of(Strategy::Isolated), Family::Partitioned2);
        assert_eq!(
            Family::of(Strategy::TwoPart { write_channels: 3 }),
            Family::Partitioned2
        );
        assert_eq!(
            Family::of(Strategy::FourPart([5, 1, 1, 1])),
            Family::Partitioned4
        );
        let d = synthetic_dataset(42);
        let m = family_confusion(&allocator(), &d);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 42);
        assert_eq!(Family::Shared.name(), "Shared");
    }
}
