//! The online loop (Algorithm 2).
//!
//! For `t < T` the device runs in `Shared` mode while the features
//! collector records read/write characteristics and intensities. At
//! `t == T` the collector's features feed the channel allocator, and the
//! predicted strategy re-partitions the channels for the rest of the run.
//! New writes follow the new channel sets; old data remains readable where
//! it was written. When hybrid page allocation is enabled, each tenant's
//! allocation mode is also switched to match its observed characteristic.

use crate::allocator::ChannelAllocator;
use crate::features::{FeatureVector, TENANTS};
use crate::hybrid;
use crate::strategy::Strategy;
use flash_sim::sim::Reallocation;
use flash_sim::{IoRequest, SimError, SimReport, Simulator, SsdConfig, TenantLayout};
use workloads::{IntensityScale, ObservedFeatures};

/// Keeper configuration.
#[derive(Debug, Clone)]
pub struct KeeperConfig {
    /// Device model.
    pub ssd: SsdConfig,
    /// Observation window `T` in nanoseconds.
    pub observe_window_ns: u64,
    /// Whether the hybrid page allocator is active.
    pub hybrid: bool,
}

impl Default for KeeperConfig {
    fn default() -> Self {
        Self {
            ssd: SsdConfig::scaled_for_sweeps(),
            observe_window_ns: 50_000_000, // 50 ms
            hybrid: true,
        }
    }
}

/// Result of an adaptive run.
#[derive(Debug, Clone)]
pub struct KeeperOutcome {
    /// Simulator report for the full trace.
    pub report: SimReport,
    /// The strategy SSDKeeper selected at `t == T`.
    pub strategy: Strategy,
    /// The features it selected on.
    pub features: FeatureVector,
}

/// One strategy decision of a periodic run.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Simulated time the new strategy took effect.
    pub at_ns: u64,
    /// The window features it was based on.
    pub features: FeatureVector,
    /// The strategy chosen.
    pub strategy: Strategy,
}

/// Result of [`Keeper::run_adaptive_periodic`].
#[derive(Debug, Clone)]
pub struct PeriodicOutcome {
    /// Simulator report for the full trace.
    pub report: SimReport,
    /// Every strategy *change* (unchanged predictions are not recorded).
    pub decisions: Vec<Decision>,
}

/// SSDKeeper's online engine: features collector + channel allocator +
/// hybrid page allocator wired into the simulated FTL.
#[derive(Debug, Clone)]
pub struct Keeper {
    config: KeeperConfig,
    allocator: ChannelAllocator,
}

impl Keeper {
    /// Builds a keeper from a config and a trained allocator.
    pub fn new(config: KeeperConfig, allocator: ChannelAllocator) -> Self {
        Self { config, allocator }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KeeperConfig {
        &self.config
    }

    /// Runs `trace` adaptively per Algorithm 2.
    ///
    /// `lpn_spaces` bound each tenant's logical footprint (up to four
    /// tenants).
    pub fn run_adaptive(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
    ) -> Result<KeeperOutcome, SimError> {
        assert!(
            !lpn_spaces.is_empty() && lpn_spaces.len() <= TENANTS,
            "1..=4 tenants supported"
        );
        let tenants = lpn_spaces.len();
        let t_ns = self.config.observe_window_ns;

        // --- Features collector over [0, T). ---
        let obs = ObservedFeatures::collect(trace, tenants, t_ns);
        let scale = IntensityScale::new(self.allocator.max_total_iops() * (t_ns as f64 / 1e9));
        let features = FeatureVector::from_observed(&obs, &scale);

        // --- Strategy prediction at t == T. ---
        let strategy = self.allocator.predict(&features);
        let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
        let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);

        // --- Phase 1 layout: Shared, static allocation. ---
        let mut layout = TenantLayout::shared(tenants, &self.config.ssd);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space);
        }

        let mut sim = Simulator::new(self.config.ssd.clone(), layout)?;
        let policies = hybrid::policies(&rw_chars, self.config.hybrid);
        sim.schedule_reallocation(Reallocation {
            at_ns: t_ns,
            entries: lists
                .into_iter()
                .enumerate()
                .map(|(t, channels)| (t, channels, Some(policies[t])))
                .collect(),
        })?;
        let report = sim.run(trace)?;
        Ok(KeeperOutcome {
            report,
            strategy,
            features,
        })
    }

    /// Runs `trace` with **periodic re-observation**: after every window
    /// of `observe_window_ns`, the features of *that window* are fed to
    /// the allocator and the channels are re-partitioned whenever the
    /// prediction changes.
    ///
    /// This is the natural extension of Algorithm 2 from one decision to a
    /// control loop ("self-adapting" over time): workloads whose mix
    /// drifts mid-run get re-matched instead of keeping the first
    /// decision forever. The first window always runs `Shared`, like the
    /// base algorithm.
    pub fn run_adaptive_periodic(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
    ) -> Result<PeriodicOutcome, SimError> {
        assert!(
            !lpn_spaces.is_empty() && lpn_spaces.len() <= TENANTS,
            "1..=4 tenants supported"
        );
        let tenants = lpn_spaces.len();
        let t_ns = self.config.observe_window_ns;
        let horizon = trace.last().map(|r| r.arrival_ns).unwrap_or(0);
        let scale = IntensityScale::new(self.allocator.max_total_iops() * (t_ns as f64 / 1e9));

        let mut layout = TenantLayout::shared(tenants, &self.config.ssd);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space);
        }
        let mut sim = Simulator::new(self.config.ssd.clone(), layout)?;

        let mut decisions = Vec::new();
        let mut current: Option<Strategy> = None;
        let mut boundary = t_ns;
        while boundary <= horizon.saturating_add(t_ns) {
            let obs = ObservedFeatures::collect_range(trace, tenants, boundary - t_ns, boundary);
            if obs.total() == 0 {
                boundary += t_ns;
                continue;
            }
            let features = FeatureVector::from_observed(&obs, &scale);
            let strategy = self.allocator.predict(&features);
            if current != Some(strategy) {
                let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
                let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);
                let policies = hybrid::policies(&rw_chars, self.config.hybrid);
                sim.schedule_reallocation(Reallocation {
                    at_ns: boundary,
                    entries: lists
                        .into_iter()
                        .enumerate()
                        .map(|(t, channels)| (t, channels, Some(policies[t])))
                        .collect(),
                })?;
                decisions.push(Decision {
                    at_ns: boundary,
                    features,
                    strategy,
                });
                current = Some(strategy);
            }
            boundary += t_ns;
        }

        let report = sim.run(trace)?;
        Ok(PeriodicOutcome { report, decisions })
    }

    /// Runs `trace` under a fixed strategy for the whole run (the
    /// baselines of Figure 5). Characteristics for two-part grouping and
    /// hybrid policies are taken from the observation window, as the
    /// adaptive run would see them.
    pub fn run_static(
        &self,
        trace: &[IoRequest],
        strategy: Strategy,
        lpn_spaces: &[u64],
    ) -> Result<SimReport, SimError> {
        let tenants = lpn_spaces.len();
        let obs = ObservedFeatures::collect(trace, tenants, self.config.observe_window_ns);
        let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
        let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);
        let mut layout = TenantLayout::from_channel_lists(&lists, &self.config.ssd)
            .expect("strategy assignments are valid");
        let policies = hybrid::policies(&rw_chars, self.config.hybrid);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space).with_policy(t, policies[t]);
        }
        Simulator::new(self.config.ssd.clone(), layout)?.run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Activation, Network};
    use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

    fn test_config() -> KeeperConfig {
        KeeperConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            observe_window_ns: 10_000_000,
            hybrid: true,
        }
    }

    fn untrained_keeper() -> Keeper {
        let net = Network::paper_topology(Activation::Logistic, 5);
        Keeper::new(test_config(), ChannelAllocator::new(net, 120_000.0))
    }

    fn four_tenant_trace(n: usize) -> Vec<IoRequest> {
        let specs = [
            TenantSpec::synthetic("a", 0.9, 8_000.0, 1 << 10),
            TenantSpec::synthetic("b", 0.1, 12_000.0, 1 << 10),
            TenantSpec::synthetic("c", 0.85, 4_000.0, 1 << 10),
            TenantSpec::synthetic("d", 0.05, 6_000.0, 1 << 10),
        ];
        let streams: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(t, s)| generate_tenant_stream(s, t as u16, n / 4, t as u64 + 1))
            .collect();
        mix_chronological(&streams, n)
    }

    #[test]
    fn adaptive_run_completes_and_reports() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(400);
        let out = keeper.run_adaptive(&trace, &[1 << 10; 4]).unwrap();
        assert_eq!(out.report.total.count as usize, trace.len());
        assert!(out.strategy.index(4) < 42);
        // Characteristics observed in the window match the spec dominances.
        assert_eq!(out.features.rw_char, [0, 1, 0, 1]);
    }

    #[test]
    fn adaptive_equals_static_when_prediction_is_shared() {
        // Whatever the untrained net predicts, running the same strategy
        // statically from t=0 must complete with the same request count.
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(300);
        let adaptive = keeper.run_adaptive(&trace, &[1 << 10; 4]).unwrap();
        let fixed = keeper
            .run_static(&trace, adaptive.strategy, &[1 << 10; 4])
            .unwrap();
        assert_eq!(fixed.total.count, adaptive.report.total.count);
    }

    #[test]
    fn static_shared_and_isolated_baselines_run() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(300);
        for s in [Strategy::Shared, Strategy::Isolated] {
            let report = keeper.run_static(&trace, s, &[1 << 10; 4]).unwrap();
            assert_eq!(report.total.count as usize, trace.len());
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let keeper = untrained_keeper();
        let out = keeper.run_adaptive(&[], &[1 << 10; 4]).unwrap();
        assert_eq!(out.report.total.count, 0);
        assert_eq!(out.features.intensity_level, 0);
    }

    #[test]
    #[should_panic(expected = "1..=4 tenants")]
    fn too_many_tenants_rejected() {
        let keeper = untrained_keeper();
        let _ = keeper.run_adaptive(&[], &[64; 5]);
    }

    #[test]
    fn periodic_run_completes_and_records_decisions() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(600);
        let out = keeper.run_adaptive_periodic(&trace, &[1 << 10; 4]).unwrap();
        assert_eq!(out.report.total.count as usize, trace.len());
        // At least the first non-empty window produces a decision; repeats
        // of the same prediction are coalesced.
        assert!(!out.decisions.is_empty());
        let mut prev = None;
        for d in &out.decisions {
            assert!(d.strategy.index(4) < 42);
            assert_ne!(prev, Some(d.strategy), "consecutive decisions must differ");
            prev = Some(d.strategy);
        }
        // Decisions are time-ordered at window boundaries.
        for w in out.decisions.windows(2) {
            assert!(w[0].at_ns < w[1].at_ns);
            assert_eq!(w[0].at_ns % keeper.config().observe_window_ns, 0);
        }
    }

    #[test]
    fn periodic_run_on_empty_trace_makes_no_decisions() {
        let keeper = untrained_keeper();
        let out = keeper.run_adaptive_periodic(&[], &[1 << 10; 4]).unwrap();
        assert!(out.decisions.is_empty());
        assert_eq!(out.report.total.count, 0);
    }

    #[test]
    fn config_accessor() {
        let keeper = untrained_keeper();
        assert_eq!(keeper.config().observe_window_ns, 10_000_000);
        assert!(keeper.config().hybrid);
    }
}
