//! The online loop (Algorithm 2).
//!
//! For `t < T` the device runs in `Shared` mode while the features
//! collector records read/write characteristics and intensities. At
//! `t == T` the collector's features feed the channel allocator, and the
//! predicted strategy re-partitions the channels for the rest of the run.
//! New writes follow the new channel sets; old data remains readable where
//! it was written. When hybrid page allocation is enabled, each tenant's
//! allocation mode is also switched to match its observed characteristic.

use crate::allocator::{ChannelAllocator, DecisionScratch};
use crate::features::{FeatureVector, TENANTS};
use crate::hybrid;
use crate::strategy::Strategy;
use flash_sim::metrics::{MetricsProbe, MetricsSummary};
use flash_sim::probe::{
    KeeperDecision, NullProbe, Probe, Tee, DECISION_CLASSES, DECISION_FEATURES,
};
use flash_sim::sim::Reallocation;
use flash_sim::{
    BackendKind, IoRequest, SimArena, SimBuilder, SimError, SimReport, SsdConfig, TenantLayout,
};
use workloads::{IntensityScale, ObservedFeatures};

/// Errors surfaced by [`Keeper::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum KeeperError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// The spec named an unsupported tenant count (1..=4 supported).
    TenantCount {
        /// The tenant count the spec carried.
        got: usize,
    },
}

impl std::fmt::Display for KeeperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeeperError::Sim(e) => write!(f, "simulation error: {e}"),
            KeeperError::TenantCount { got } => {
                write!(
                    f,
                    "unsupported tenant count {got} (1..={TENANTS} supported)"
                )
            }
        }
    }
}

impl std::error::Error for KeeperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KeeperError::Sim(e) => Some(e),
            KeeperError::TenantCount { .. } => None,
        }
    }
}

impl From<SimError> for KeeperError {
    fn from(e: SimError) -> Self {
        KeeperError::Sim(e)
    }
}

/// How [`Keeper::run`] drives the channel allocation over the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// One fixed strategy from `t = 0` (the Figure 5 baselines).
    Fixed(Strategy),
    /// Algorithm 2: observe under `Shared` for the configured window,
    /// predict once at `t == T`, keep that strategy for the rest.
    AdaptOnce,
    /// Re-observe every `window_ns` and re-partition whenever the
    /// prediction changes; the first window always runs `Shared`.
    Periodic {
        /// Re-observation window length in nanoseconds.
        window_ns: u64,
    },
}

/// One run session: the trace, the tenants' logical spaces, the mode, and
/// an optional probe receiving the keeper's decision events plus every
/// engine hook for the run.
pub struct RunSpec<'a> {
    /// The request trace to replay.
    pub trace: &'a [IoRequest],
    /// Per-tenant logical-space bounds (length = tenant count, 1..=4).
    pub lpn_spaces: &'a [u64],
    /// Allocation mode.
    pub mode: RunMode,
    /// Observability sink; `None` runs with the zero-cost [`NullProbe`].
    pub probe: Option<&'a mut dyn Probe>,
    /// Whether to aggregate a [`MetricsSummary`] for the session (an
    /// internal [`MetricsProbe`] tees off the same hook stream the
    /// `probe` sees). Off by default: sessions that don't ask pay
    /// nothing.
    pub collect_metrics: bool,
    /// Execution backend the session runs on: the deterministic
    /// simulated-timing engine (the default) or real I/O against a
    /// file/device. Policy decisions, probes, and metrics are
    /// backend-agnostic.
    pub backend: BackendKind,
}

impl<'a> RunSpec<'a> {
    /// A fixed-strategy session.
    pub fn fixed(trace: &'a [IoRequest], lpn_spaces: &'a [u64], strategy: Strategy) -> Self {
        Self {
            trace,
            lpn_spaces,
            mode: RunMode::Fixed(strategy),
            probe: None,
            collect_metrics: false,
            backend: BackendKind::Sim,
        }
    }

    /// An adapt-once (Algorithm 2) session.
    pub fn adapt_once(trace: &'a [IoRequest], lpn_spaces: &'a [u64]) -> Self {
        Self {
            trace,
            lpn_spaces,
            mode: RunMode::AdaptOnce,
            probe: None,
            collect_metrics: false,
            backend: BackendKind::Sim,
        }
    }

    /// A periodic re-observation session.
    pub fn periodic(trace: &'a [IoRequest], lpn_spaces: &'a [u64], window_ns: u64) -> Self {
        Self {
            trace,
            lpn_spaces,
            mode: RunMode::Periodic { window_ns },
            probe: None,
            collect_metrics: false,
            backend: BackendKind::Sim,
        }
    }

    /// Attaches a probe to the session.
    pub fn with_probe(mut self, probe: &'a mut dyn Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Asks the session to aggregate a [`MetricsSummary`] (exposed as
    /// [`RunOutcome::metrics`]); composes with [`RunSpec::with_probe`].
    pub fn with_metrics(mut self) -> Self {
        self.collect_metrics = true;
        self
    }

    /// Selects the execution backend (default [`BackendKind::Sim`]).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Result of a [`Keeper::run`] session, uniform across modes.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Simulator report for the full trace.
    pub report: SimReport,
    /// The strategy in effect at the end of the run: the fixed one, the
    /// `t == T` prediction, or the last periodic decision (`Shared` when
    /// a periodic run never decided).
    pub strategy: Strategy,
    /// Features behind the final decision; `None` for fixed runs and for
    /// periodic runs that never saw a non-empty window.
    pub features: Option<FeatureVector>,
    /// Every strategy *change*, time-ordered. One entry for adapt-once,
    /// empty for fixed runs.
    pub decisions: Vec<Decision>,
    /// Streaming metrics summary; `Some` iff the spec asked via
    /// [`RunSpec::with_metrics`]. The timeline window is the keeper's
    /// `observe_window_ns`, so throughput buckets line up with decision
    /// boundaries.
    pub metrics: Option<MetricsSummary>,
}

/// Keeper configuration.
#[derive(Debug, Clone)]
pub struct KeeperConfig {
    /// Device model.
    pub ssd: SsdConfig,
    /// Observation window `T` in nanoseconds.
    pub observe_window_ns: u64,
    /// Whether the hybrid page allocator is active.
    pub hybrid: bool,
}

impl Default for KeeperConfig {
    fn default() -> Self {
        Self {
            ssd: SsdConfig::scaled_for_sweeps(),
            observe_window_ns: 50_000_000, // 50 ms
            hybrid: true,
        }
    }
}

/// One strategy decision of a periodic run.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Simulated time the new strategy took effect.
    pub at_ns: u64,
    /// The window features it was based on.
    pub features: FeatureVector,
    /// The strategy chosen.
    pub strategy: Strategy,
}

/// SSDKeeper's online engine: features collector + channel allocator +
/// hybrid page allocator wired into the simulated FTL.
#[derive(Debug, Clone)]
pub struct Keeper {
    config: KeeperConfig,
    allocator: ChannelAllocator,
}

impl Keeper {
    /// Builds a keeper from a config and a trained allocator.
    pub fn new(config: KeeperConfig, allocator: ChannelAllocator) -> Self {
        Self { config, allocator }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KeeperConfig {
        &self.config
    }

    /// Runs one session per `spec` — the single entry point for every
    /// allocation policy. The mode selects the policy; the optional
    /// probe observes every engine hook plus the keeper's own decision
    /// events (feature vector + predicted class probabilities).
    pub fn run(&self, spec: RunSpec<'_>) -> Result<RunOutcome, KeeperError> {
        self.run_with_arena(spec, &mut SimArena::new())
    }

    /// [`Keeper::run`] drawing the engine's run-path buffers from a
    /// caller-owned [`SimArena`]. Callers replaying many sessions (the
    /// fleet shard loop, the label farm) keep one arena per worker so
    /// every session after the first builds its simulator without heap
    /// allocation. Results are byte-identical to [`Keeper::run`].
    pub fn run_with_arena(
        &self,
        spec: RunSpec<'_>,
        arena: &mut SimArena,
    ) -> Result<RunOutcome, KeeperError> {
        obs::span!("keeper_run");
        obs::counter_add!("keeper.runs", 1u64);
        if spec.lpn_spaces.is_empty() || spec.lpn_spaces.len() > TENANTS {
            return Err(KeeperError::TenantCount {
                got: spec.lpn_spaces.len(),
            });
        }
        let RunSpec {
            trace,
            lpn_spaces,
            mode,
            probe,
            collect_metrics,
            backend,
        } = spec;
        let mut null = NullProbe;
        let probe: &mut dyn Probe = match probe {
            Some(p) => p,
            None => &mut null,
        };
        if collect_metrics {
            let mut metrics = MetricsProbe::new(self.config.observe_window_ns);
            let mut tee = Tee::new(probe, &mut metrics);
            let mut out = self.dispatch(trace, lpn_spaces, mode, &backend, &mut tee, arena)?;
            out.metrics = Some(metrics.into_summary());
            Ok(out)
        } else {
            self.dispatch(trace, lpn_spaces, mode, &backend, probe, arena)
        }
    }

    fn dispatch(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
        mode: RunMode,
        backend: &BackendKind,
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<RunOutcome, KeeperError> {
        match mode {
            RunMode::Fixed(strategy) => {
                self.run_fixed(trace, lpn_spaces, strategy, backend, probe, arena)
            }
            RunMode::AdaptOnce => self.run_adapt_once(trace, lpn_spaces, backend, probe, arena),
            RunMode::Periodic { window_ns } => {
                self.run_periodic(trace, lpn_spaces, window_ns, backend, probe, arena)
            }
        }
    }

    /// Executes a prepared session — layout plus time-ordered
    /// reallocations — on the selected backend. Every mode funnels
    /// through here; this is the single point where policy hands off to
    /// command execution.
    fn execute(
        &self,
        backend: &BackendKind,
        layout: TenantLayout,
        reallocations: Vec<Reallocation>,
        trace: &[IoRequest],
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<SimReport, KeeperError> {
        obs::span!("keeper_execute");
        obs::counter_add!("keeper.reallocs_planned", reallocations.len() as u64);
        let mut be = SimBuilder::new(self.config.ssd.clone(), layout).build_backend(backend)?;
        for r in reallocations {
            be.schedule_reallocation(r)?;
        }
        Ok(be.run_with_arena(trace, probe, arena)?)
    }

    /// The probe-facing form of a decision: network input vector plus the
    /// predicted probability of every strategy class.
    fn decision_event(
        &self,
        at_ns: u64,
        features: &FeatureVector,
        strategy: Strategy,
    ) -> KeeperDecision {
        let mut proba = [0.0f32; DECISION_CLASSES];
        for (dst, src) in proba.iter_mut().zip(self.allocator.predict_proba(features)) {
            *dst = src;
        }
        let input: [f32; DECISION_FEATURES] = features.to_input();
        KeeperDecision {
            at_ns,
            strategy: strategy.index(TENANTS) as u16,
            features: input,
            proba,
        }
    }

    /// Fixed strategy from `t = 0` (the baselines of Figure 5).
    /// Characteristics for two-part grouping and hybrid policies are taken
    /// from the observation window, as the adaptive run would see them.
    fn run_fixed(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
        strategy: Strategy,
        backend: &BackendKind,
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<RunOutcome, KeeperError> {
        let tenants = lpn_spaces.len();
        let obs = ObservedFeatures::collect(trace, tenants, self.config.observe_window_ns);
        let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
        let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);
        let mut layout =
            TenantLayout::from_channel_lists(&lists, &self.config.ssd).ok_or_else(|| {
                KeeperError::Sim(SimError::BadLayout {
                    reason: format!(
                        "strategy {strategy:?} produced invalid channel lists {lists:?}"
                    ),
                })
            })?;
        let policies = hybrid::policies(&rw_chars, self.config.hybrid);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space).with_policy(t, policies[t]);
        }
        let report = self.execute(backend, layout, Vec::new(), trace, probe, arena)?;
        Ok(RunOutcome {
            report,
            strategy,
            features: None,
            decisions: Vec::new(),
            metrics: None,
        })
    }

    /// Algorithm 2: observe under `Shared` over `[0, T)`, predict once at
    /// `t == T`, re-partition for the rest of the run.
    fn run_adapt_once(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
        backend: &BackendKind,
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<RunOutcome, KeeperError> {
        let tenants = lpn_spaces.len();
        let t_ns = self.config.observe_window_ns;

        // --- Features collector over [0, T). ---
        let obs = ObservedFeatures::collect(trace, tenants, t_ns);
        let scale = IntensityScale::new(self.allocator.max_total_iops() * (t_ns as f64 / 1e9));
        let features = FeatureVector::from_observed(&obs, &scale);

        // --- Strategy prediction at t == T. ---
        let strategy = self.allocator.predict(&features);
        probe.on_keeper_decision(&self.decision_event(t_ns, &features, strategy));
        let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
        let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);

        // --- Phase 1 layout: Shared, static allocation. ---
        let mut layout = TenantLayout::shared(tenants, &self.config.ssd);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space);
        }

        let policies = hybrid::policies(&rw_chars, self.config.hybrid);
        let realloc = Reallocation::new(
            t_ns,
            lists
                .into_iter()
                .enumerate()
                .map(|(t, channels)| (t, channels, Some(policies[t]))),
        );
        let report = self.execute(backend, layout, vec![realloc], trace, probe, arena)?;
        let decisions = vec![Decision {
            at_ns: t_ns,
            features: features.clone(),
            strategy,
        }];
        Ok(RunOutcome {
            report,
            strategy,
            features: Some(features),
            decisions,
            metrics: None,
        })
    }

    /// Periodic re-observation: after every window of `window_ns`, the
    /// features of *that window* are fed to the allocator and the channels
    /// are re-partitioned whenever the prediction changes.
    ///
    /// This is the natural extension of Algorithm 2 from one decision to a
    /// control loop ("self-adapting" over time): workloads whose mix
    /// drifts mid-run get re-matched instead of keeping the first
    /// decision forever. The first window always runs `Shared`, like the
    /// base algorithm.
    fn run_periodic(
        &self,
        trace: &[IoRequest],
        lpn_spaces: &[u64],
        window_ns: u64,
        backend: &BackendKind,
        probe: &mut dyn Probe,
        arena: &mut SimArena,
    ) -> Result<RunOutcome, KeeperError> {
        let tenants = lpn_spaces.len();
        let t_ns = window_ns;
        let horizon = trace.last().map(|r| r.arrival_ns).unwrap_or(0);
        let scale = IntensityScale::new(self.allocator.max_total_iops() * (t_ns as f64 / 1e9));

        let mut layout = TenantLayout::shared(tenants, &self.config.ssd);
        for (t, &space) in lpn_spaces.iter().enumerate() {
            layout = layout.with_lpn_space(t, space);
        }

        // Decide every window first (decision events fire here, before any
        // engine event), then hand the probe to the simulator for the run.
        //
        // Two passes: collect every non-empty window's observations, then
        // decide them all in ONE batched allocator call — the network runs
        // each layer's kernel once for the whole run instead of once per
        // window. Each batch row equals the per-window `predict`, so the
        // decisions (and the merged outcome) are identical to the
        // sequential loop this replaced.
        // Explicit guard (not `span!`) so planning closes before the
        // execute handoff opens its own span.
        let plan_span = if obs::ENABLED {
            Some(obs::spans::enter("keeper_plan_windows"))
        } else {
            None
        };
        let mut windows: Vec<(u64, ObservedFeatures)> = Vec::new();
        let mut features: Vec<FeatureVector> = Vec::new();
        let mut boundary = t_ns;
        while boundary <= horizon.saturating_add(t_ns) {
            let obs = ObservedFeatures::collect_range(trace, tenants, boundary - t_ns, boundary);
            if obs.total() != 0 {
                features.push(FeatureVector::from_observed(&obs, &scale));
                windows.push((boundary, obs));
            }
            boundary += t_ns;
        }
        let mut scratch = DecisionScratch::new();
        let mut predicted: Vec<Strategy> = Vec::new();
        self.allocator
            .predict_batch_into(&features, &mut scratch, &mut predicted);

        let mut reallocations: Vec<Reallocation> = Vec::new();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut current: Option<Strategy> = None;
        for ((&(boundary, ref obs), features), &strategy) in
            windows.iter().zip(features.iter()).zip(predicted.iter())
        {
            if current != Some(strategy) {
                let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
                let lists = strategy.assign_channels(&rw_chars, &self.config.ssd);
                let policies = hybrid::policies(&rw_chars, self.config.hybrid);
                reallocations.push(Reallocation::new(
                    boundary,
                    lists
                        .into_iter()
                        .enumerate()
                        .map(|(t, channels)| (t, channels, Some(policies[t]))),
                ));
                probe.on_keeper_decision(&self.decision_event(boundary, features, strategy));
                decisions.push(Decision {
                    at_ns: boundary,
                    features: features.clone(),
                    strategy,
                });
                current = Some(strategy);
            }
        }

        drop(plan_span);
        let report = self.execute(backend, layout, reallocations, trace, probe, arena)?;
        Ok(RunOutcome {
            report,
            strategy: current.unwrap_or(Strategy::Shared),
            features: decisions.last().map(|d| d.features.clone()),
            decisions,
            metrics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Activation, Network};
    use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

    fn test_config() -> KeeperConfig {
        KeeperConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            observe_window_ns: 10_000_000,
            hybrid: true,
        }
    }

    fn untrained_keeper() -> Keeper {
        let net = Network::paper_topology(Activation::Logistic, 5);
        Keeper::new(test_config(), ChannelAllocator::new(net, 120_000.0))
    }

    fn four_tenant_trace(n: usize) -> Vec<IoRequest> {
        let specs = [
            TenantSpec::synthetic("a", 0.9, 8_000.0, 1 << 10),
            TenantSpec::synthetic("b", 0.1, 12_000.0, 1 << 10),
            TenantSpec::synthetic("c", 0.85, 4_000.0, 1 << 10),
            TenantSpec::synthetic("d", 0.05, 6_000.0, 1 << 10),
        ];
        let streams: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(t, s)| generate_tenant_stream(s, t as u16, n / 4, t as u64 + 1))
            .collect();
        mix_chronological(&streams, n)
    }

    #[test]
    fn adaptive_run_completes_and_reports() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(400);
        let out = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]))
            .unwrap();
        assert_eq!(out.report.total.count as usize, trace.len());
        assert!(out.strategy.index(4) < 42);
        // Characteristics observed in the window match the spec dominances.
        assert_eq!(out.features.as_ref().unwrap().rw_char, [0, 1, 0, 1]);
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.decisions[0].at_ns, keeper.config().observe_window_ns);
        assert_eq!(out.decisions[0].strategy, out.strategy);
    }

    #[test]
    fn adaptive_equals_static_when_prediction_is_shared() {
        // Whatever the untrained net predicts, running the same strategy
        // statically from t=0 must complete with the same request count.
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(300);
        let adaptive = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]))
            .unwrap();
        let fixed = keeper
            .run(RunSpec::fixed(&trace, &[1 << 10; 4], adaptive.strategy))
            .unwrap();
        assert_eq!(fixed.report.total.count, adaptive.report.total.count);
        assert!(fixed.features.is_none());
        assert!(fixed.decisions.is_empty());
    }

    #[test]
    fn static_shared_and_isolated_baselines_run() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(300);
        for s in [Strategy::Shared, Strategy::Isolated] {
            let out = keeper
                .run(RunSpec::fixed(&trace, &[1 << 10; 4], s))
                .unwrap();
            assert_eq!(out.report.total.count as usize, trace.len());
            assert_eq!(out.strategy, s);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let keeper = untrained_keeper();
        let out = keeper.run(RunSpec::adapt_once(&[], &[1 << 10; 4])).unwrap();
        assert_eq!(out.report.total.count, 0);
        assert_eq!(out.features.unwrap().intensity_level, 0);
    }

    #[test]
    fn bad_tenant_counts_are_typed_errors() {
        let keeper = untrained_keeper();
        assert_eq!(
            keeper.run(RunSpec::adapt_once(&[], &[64; 5])).unwrap_err(),
            KeeperError::TenantCount { got: 5 }
        );
        assert_eq!(
            keeper.run(RunSpec::adapt_once(&[], &[])).unwrap_err(),
            KeeperError::TenantCount { got: 0 }
        );
        // Errors render and chain like std errors.
        let err = KeeperError::TenantCount { got: 5 };
        assert!(err.to_string().contains("tenant count 5"));
        let err = KeeperError::Sim(SimError::EmptyRequest { index: 3 });
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn periodic_run_completes_and_records_decisions() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(600);
        let window = keeper.config().observe_window_ns;
        let out = keeper
            .run(RunSpec::periodic(&trace, &[1 << 10; 4], window))
            .unwrap();
        assert_eq!(out.report.total.count as usize, trace.len());
        // At least the first non-empty window produces a decision; repeats
        // of the same prediction are coalesced.
        assert!(!out.decisions.is_empty());
        let mut prev = None;
        for d in &out.decisions {
            assert!(d.strategy.index(4) < 42);
            assert_ne!(prev, Some(d.strategy), "consecutive decisions must differ");
            prev = Some(d.strategy);
        }
        // Decisions are time-ordered at window boundaries.
        for w in out.decisions.windows(2) {
            assert!(w[0].at_ns < w[1].at_ns);
            assert_eq!(w[0].at_ns % window, 0);
        }
        // The outcome's final strategy is the last decision's.
        assert_eq!(out.strategy, out.decisions.last().unwrap().strategy);
    }

    #[test]
    fn periodic_run_on_empty_trace_makes_no_decisions() {
        let keeper = untrained_keeper();
        let out = keeper
            .run(RunSpec::periodic(&[], &[1 << 10; 4], 10_000_000))
            .unwrap();
        assert!(out.decisions.is_empty());
        assert_eq!(out.report.total.count, 0);
        assert_eq!(out.strategy, Strategy::Shared);
        assert!(out.features.is_none());
    }

    #[test]
    fn probe_receives_keeper_decisions() {
        use flash_sim::probe::{EventRecorder, ProbeEvent};
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(400);
        let mut rec = EventRecorder::with_capacity(1 << 14);
        let out = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]).with_probe(&mut rec))
            .unwrap();
        let decisions: Vec<_> = rec
            .to_vec()
            .into_iter()
            .filter_map(|e| match e {
                ProbeEvent::Decision(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.at_ns, keeper.config().observe_window_ns);
        assert_eq!(d.strategy as usize, out.strategy.index(4));
        assert_eq!(d.features, out.features.unwrap().to_input());
        // The class probabilities are a distribution with the argmax at
        // the chosen strategy.
        let sum: f32 = d.proba.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "proba sums to {sum}");
        let argmax = d
            .proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, d.strategy as usize);
        // Engine events flowed through the same recorder.
        assert!(rec
            .to_vec()
            .iter()
            .any(|e| matches!(e, ProbeEvent::CmdComplete(_))));
        assert!(rec
            .to_vec()
            .iter()
            .any(|e| matches!(e, ProbeEvent::Realloc(_))));
    }

    #[test]
    fn attached_recorder_does_not_change_the_report() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(400);
        let bare = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]))
            .unwrap();
        let mut rec = flash_sim::EventRecorder::with_capacity(256);
        let probed = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]).with_probe(&mut rec))
            .unwrap();
        assert_eq!(bare.report, probed.report);
        assert!(!rec.is_empty());
    }

    #[test]
    fn metrics_are_off_by_default_and_on_by_request() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(400);
        let bare = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]))
            .unwrap();
        assert!(bare.metrics.is_none());
        let observed = keeper
            .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]).with_metrics())
            .unwrap();
        assert_eq!(bare.report, observed.report, "metrics must not perturb");
        let m = observed.metrics.unwrap();
        // The summary's channel busy time is the same accounting the
        // report keeps — the probe stream carries the whole truth.
        for (c, &busy) in observed.report.bus_busy_ns.iter().enumerate() {
            let probed = m.channels.get(c).map(|cm| cm.busy_ns).unwrap_or(0);
            assert_eq!(probed, busy, "channel {c}");
        }
        assert_eq!(m.tenants.len(), 4);
        assert!(m.host_reads() > 0 && m.host_writes() > 0);
        // Timeline windows use the keeper's observation window.
        assert_eq!(m.window_ns, keeper.config().observe_window_ns);
        assert!(!m.timeline.is_empty());
    }

    #[test]
    fn metrics_compose_with_an_attached_probe() {
        let keeper = untrained_keeper();
        let trace = four_tenant_trace(300);
        let mut rec = flash_sim::EventRecorder::with_capacity(1 << 14);
        let out = keeper
            .run(
                RunSpec::adapt_once(&trace, &[1 << 10; 4])
                    .with_probe(&mut rec)
                    .with_metrics(),
            )
            .unwrap();
        let m = out.metrics.unwrap();
        assert!(!rec.is_empty(), "user probe still sees the stream");
        // The recorder captured everything, so replaying it into a fresh
        // aggregator reproduces the keeper's own summary (modulo the
        // decision events MetricsProbe ignores anyway).
        assert_eq!(rec.dropped(), 0);
        let mut offline = flash_sim::MetricsProbe::new(keeper.config().observe_window_ns);
        flash_sim::replay(rec.events(), &mut offline);
        assert_eq!(offline.into_summary(), m);
    }

    #[test]
    fn config_accessor() {
        let keeper = untrained_keeper();
        assert_eq!(keeper.config().observe_window_ns, 10_000_000);
        assert!(keeper.config().hybrid);
    }
}
