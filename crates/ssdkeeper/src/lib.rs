//! `ssdkeeper` — self-adapting channel allocation for multi-tenant SSDs.
//!
//! This crate implements the SSDKeeper mechanism from Liu et al.,
//! *SSDKeeper: Self-Adapting Channel Allocation to Improve the Performance
//! of SSD Devices* (IPDPS 2020), on top of the [`flash_sim`] substrate:
//!
//! * [`strategy`] — the space of channel-allocation strategies (42 for
//!   four tenants on an 8-channel SSD);
//! * [`features`] — the 9-dimensional workload feature vector;
//! * [`label`] — Algorithm 1's label generation: run a mixed workload
//!   under every strategy, keep the argmin-latency strategy;
//! * [`learner`] — synthetic mixed-workload sampling, dataset generation,
//!   and ANN training (the strategy learner);
//! * [`allocator`] — the channel allocator: a trained model mapping
//!   observed features to a strategy;
//! * [`hybrid`] — the hybrid page allocator (static pages for
//!   read-dominated tenants, dynamic for write-dominated);
//! * [`keeper`] — Algorithm 2's online loop: observe under `Shared`,
//!   predict at `t == T`, re-allocate channels mid-run — driven through
//!   the unified [`keeper::RunSpec`] session API;
//! * [`placement`] — the fleet tier above the keeper: deterministic
//!   bin-packing of tenants onto devices by predicted intensity, with a
//!   tail-latency-drift re-placement hook (used by `crates/fleet`);
//! * [`obs`] — the observability surface: probes, event recording, and
//!   the persisted event codec (re-exported from [`flash_sim::probe`]).
//!
//! # End-to-end sketch
//!
//! ```no_run
//! use ssdkeeper::learner::{DatasetSpec, Learner};
//! use ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
//! use flash_sim::SsdConfig;
//!
//! // Offline: generate labelled data and train the strategy model.
//! let learner = Learner::new(DatasetSpec::quick(64));
//! let dataset = learner.generate_dataset(1);
//! let model = learner.train(&dataset, ssdkeeper::learner::OptimizerChoice::AdamLogistic);
//!
//! // Online: drive a mixed trace through the adaptive FTL.
//! let keeper = Keeper::new(KeeperConfig::default(), model.allocator());
//! # let trace = vec![];
//! let outcome = keeper.run(RunSpec::adapt_once(&trace, &[1 << 14; 4])).unwrap();
//! println!("chose {} -> {:.1} us", outcome.strategy, outcome.report.total_latency_metric_us());
//! ```
#![warn(missing_docs)]

pub mod allocator;
pub mod analysis;
pub mod features;
pub mod hybrid;
pub mod keeper;
pub mod label;
pub mod learner;
pub mod model_io;
pub mod obs;
pub mod placement;
pub mod strategy;

pub use allocator::{ChannelAllocator, DecisionScratch};
pub use features::FeatureVector;
pub use keeper::{Keeper, KeeperConfig, KeeperError, RunMode, RunOutcome, RunSpec};
pub use placement::{FleetPlacer, Placement, TenantLoad};
pub use strategy::Strategy;
