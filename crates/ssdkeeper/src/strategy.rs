//! The channel-allocation strategy space.
//!
//! For an 8-channel SSD the paper enumerates (§IV-C):
//!
//! * **two tenants** — 8 strategies: `Shared`, `Isolated` (= 4:4), and the
//!   asymmetric two-part splits 7:1, 6:2, 5:3, 3:5, 2:6, 1:7;
//! * **four tenants** — 42 strategies: the 8 above (two-part splits now
//!   group tenants by write/read dominance, `Isolated` becomes 2:2:2:2)
//!   plus the 34 ordered compositions of 8 into four positive parts other
//!   than `[2,2,2,2]`.
//!
//! Four-part strategies assign parts **positionally** (tenant *i* gets
//! `parts[i]` channels); the model's per-tenant share features let it
//! learn which position deserves the big share. Two-part strategies
//! assign by the observed read/write characteristic: the first number is
//! the channel count of the write-dominated group, as in the paper's
//! notation.

use flash_sim::SsdConfig;

/// One channel-allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Every tenant stripes over all channels (traditional shared SSD).
    Shared,
    /// Channels split evenly among tenants (static Open-Channel
    /// partitioning).
    Isolated,
    /// Write-dominated tenants share the first `write_channels` channels;
    /// read-dominated tenants share the rest. Valid values: 1–7 except 4
    /// (4:4 *is* `Isolated` for two tenants and is folded into it).
    TwoPart {
        /// Channels given to the write-dominated group.
        write_channels: u8,
    },
    /// Tenant `i` owns `parts[i]` channels (contiguous ranges, in order).
    /// `[2,2,2,2]` is excluded (that is `Isolated`).
    FourPart(
        /// Channels per tenant, summing to the channel count.
        [u8; 4],
    ),
}

impl Strategy {
    /// All strategies applicable to `tenants` tenants on an 8-channel SSD,
    /// in stable label order (index = class id for the learner).
    ///
    /// # Panics
    ///
    /// Panics unless `tenants` is 2 or 4 (the configurations the paper
    /// evaluates).
    pub fn all_for_tenants(tenants: usize) -> Vec<Strategy> {
        assert!(
            tenants == 2 || tenants == 4,
            "the paper's strategy space covers 2 or 4 tenants, got {tenants}"
        );
        let mut out = vec![Strategy::Shared, Strategy::Isolated];
        for w in [7u8, 6, 5, 3, 2, 1] {
            out.push(Strategy::TwoPart { write_channels: w });
        }
        if tenants == 4 {
            for parts in compositions_of_8_into_4() {
                if parts != [2, 2, 2, 2] {
                    out.push(Strategy::FourPart(parts));
                }
            }
        }
        out
    }

    /// The learner's class id of this strategy (its position in
    /// [`Strategy::all_for_tenants`]).
    pub fn index(&self, tenants: usize) -> usize {
        Strategy::all_for_tenants(tenants)
            .iter()
            .position(|s| s == self)
            .expect("strategy not in the space for this tenant count")
    }

    /// Inverse of [`Strategy::index`].
    pub fn from_index(index: usize, tenants: usize) -> Option<Strategy> {
        Strategy::all_for_tenants(tenants).get(index).copied()
    }

    /// Assigns channels to tenants.
    ///
    /// * `rw_chars[i]` is tenant *i*'s observed read/write characteristic
    ///   (0 = write-dominated, 1 = read-dominated), used by two-part
    ///   strategies;
    /// * returns one channel list per tenant.
    ///
    /// If a two-part split finds one dominance group empty, the orphaned
    /// channels go unused — the honest cost of a mismatched strategy,
    /// which label generation will penalize. Tenants in an empty group
    /// never occur (every tenant belongs to exactly one group).
    ///
    /// # Panics
    ///
    /// Panics if `rw_chars.len()` is incompatible with the strategy or the
    /// config has fewer channels than tenants.
    pub fn assign_channels(&self, rw_chars: &[u8], cfg: &SsdConfig) -> Vec<Vec<usize>> {
        let n = rw_chars.len();
        let channels = cfg.channels;
        assert!(n > 0 && n <= channels, "{n} tenants on {channels} channels");
        match *self {
            Strategy::Shared => vec![(0..channels).collect(); n],
            Strategy::Isolated => {
                // Contiguous even split; remainders go to the first tenants.
                let base = channels / n;
                let extra = channels % n;
                let mut out = Vec::with_capacity(n);
                let mut start = 0;
                for i in 0..n {
                    let len = base + usize::from(i < extra);
                    out.push((start..start + len).collect());
                    start += len;
                }
                out
            }
            Strategy::TwoPart { write_channels } => {
                let w = write_channels as usize;
                assert!(w >= 1 && w < channels, "two-part split out of range");
                let write_set: Vec<usize> = (0..w).collect();
                let read_set: Vec<usize> = (w..channels).collect();
                rw_chars
                    .iter()
                    .map(|&c| {
                        if c == 0 {
                            write_set.clone()
                        } else {
                            read_set.clone()
                        }
                    })
                    .collect()
            }
            Strategy::FourPart(parts) => {
                assert_eq!(n, 4, "four-part strategies need exactly four tenants");
                assert_eq!(
                    parts.iter().map(|&p| p as usize).sum::<usize>(),
                    channels,
                    "parts must cover every channel"
                );
                let mut out = Vec::with_capacity(4);
                let mut start = 0usize;
                for &p in &parts {
                    out.push((start..start + p as usize).collect());
                    start += p as usize;
                }
                out
            }
        }
    }

    /// Canonical grouped label used by the Figure 6 analysis: four-part
    /// strategies collapse to their sorted-descending parts (5:1:1:1
    /// stands for every ordering), two-part strategies keep the
    /// write-first notation.
    pub fn canonical_label(&self) -> String {
        match *self {
            Strategy::Shared => "Shared".to_string(),
            Strategy::Isolated => "Isolated".to_string(),
            Strategy::TwoPart { write_channels } => {
                format!("{}:{}", write_channels, 8 - write_channels)
            }
            Strategy::FourPart(mut parts) => {
                parts.sort_unstable_by(|a, b| b.cmp(a));
                format!("{}:{}:{}:{}", parts[0], parts[1], parts[2], parts[3])
            }
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Strategy::Shared => write!(f, "Shared"),
            Strategy::Isolated => write!(f, "Isolated"),
            Strategy::TwoPart { write_channels } => {
                write!(f, "{}:{}", write_channels, 8 - write_channels)
            }
            Strategy::FourPart(p) => write!(f, "{}:{}:{}:{}", p[0], p[1], p[2], p[3]),
        }
    }
}

/// Ordered compositions of 8 into four positive parts, lexicographic.
fn compositions_of_8_into_4() -> Vec<[u8; 4]> {
    let mut out = Vec::with_capacity(35);
    for a in 1..=5u8 {
        for b in 1..=(8 - a - 2) {
            for c in 1..=(8 - a - b - 1) {
                let d = 8 - a - b - c;
                debug_assert!(d >= 1);
                out.push([a, b, c, d]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    fn cfg() -> SsdConfig {
        SsdConfig::paper_table1()
    }

    #[test]
    fn two_tenant_space_has_8_strategies() {
        let all = Strategy::all_for_tenants(2);
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], Strategy::Shared);
        assert_eq!(all[1], Strategy::Isolated);
        assert!(!all.contains(&Strategy::TwoPart { write_channels: 4 }));
    }

    #[test]
    fn four_tenant_space_has_42_strategies() {
        let all = Strategy::all_for_tenants(4);
        assert_eq!(all.len(), 42, "matches the paper's output layer width");
        // No duplicates.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 42);
        // 2:2:2:2 is represented only by Isolated.
        assert!(!all.contains(&Strategy::FourPart([2, 2, 2, 2])));
    }

    #[test]
    #[should_panic(expected = "2 or 4 tenants")]
    fn unsupported_tenant_count_panics() {
        let _ = Strategy::all_for_tenants(3);
    }

    #[test]
    fn compositions_count_is_35() {
        assert_eq!(compositions_of_8_into_4().len(), 35);
    }

    #[test]
    fn index_round_trips() {
        for tenants in [2usize, 4] {
            for (i, s) in Strategy::all_for_tenants(tenants).iter().enumerate() {
                assert_eq!(s.index(tenants), i);
                assert_eq!(Strategy::from_index(i, tenants), Some(*s));
            }
            assert_eq!(Strategy::from_index(999, tenants), None);
        }
    }

    #[test]
    fn shared_gives_everyone_everything() {
        let sets = Strategy::Shared.assign_channels(&[0, 1, 0, 1], &cfg());
        assert_eq!(sets.len(), 4);
        for s in sets {
            assert_eq!(s, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn isolated_partitions_evenly() {
        let sets = Strategy::Isolated.assign_channels(&[0, 1, 0, 1], &cfg());
        let mut owned = [0u32; 8];
        for s in &sets {
            assert_eq!(s.len(), 2);
            for &c in s {
                owned[c] += 1;
            }
        }
        assert!(owned.iter().all(|&n| n == 1));
    }

    #[test]
    fn isolated_two_tenants_is_4_4() {
        let sets = Strategy::Isolated.assign_channels(&[0, 1], &cfg());
        assert_eq!(sets[0], vec![0, 1, 2, 3]);
        assert_eq!(sets[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn two_part_groups_by_dominance() {
        let s = Strategy::TwoPart { write_channels: 6 };
        let sets = s.assign_channels(&[0, 1, 1, 0], &cfg());
        assert_eq!(sets[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sets[3], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sets[1], vec![6, 7]);
        assert_eq!(sets[2], vec![6, 7]);
    }

    #[test]
    fn four_part_is_positional_and_contiguous() {
        let s = Strategy::FourPart([5, 1, 1, 1]);
        let sets = s.assign_channels(&[0, 1, 0, 1], &cfg());
        assert_eq!(sets[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(sets[1], vec![5]);
        assert_eq!(sets[2], vec![6]);
        assert_eq!(sets[3], vec![7]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Strategy::Shared.to_string(), "Shared");
        assert_eq!(Strategy::Isolated.to_string(), "Isolated");
        assert_eq!(Strategy::TwoPart { write_channels: 7 }.to_string(), "7:1");
        assert_eq!(Strategy::FourPart([4, 2, 1, 1]).to_string(), "4:2:1:1");
    }

    #[test]
    fn canonical_label_collapses_orderings() {
        assert_eq!(
            Strategy::FourPart([1, 5, 1, 1]).canonical_label(),
            "5:1:1:1"
        );
        assert_eq!(
            Strategy::FourPart([1, 2, 4, 1]).canonical_label(),
            "4:2:1:1"
        );
        assert_eq!(
            Strategy::TwoPart { write_channels: 2 }.canonical_label(),
            "2:6"
        );
        assert_eq!(Strategy::Shared.canonical_label(), "Shared");
    }

    /// Every strategy yields non-empty, in-range channel sets covering
    /// each tenant, and four-part assignments are disjoint and complete.
    /// Exhaustive over all 42 strategies, with seeded random tenant
    /// characteristics per strategy.
    #[test]
    fn assignments_are_well_formed() {
        let mut rng = SimRng::seed_from_u64(701);
        for idx in 0..42usize {
            for _ in 0..8 {
                let chars: Vec<u8> = (0..4).map(|_| rng.gen_range(0u8..2)).collect();
                let s = Strategy::from_index(idx, 4).unwrap();
                let sets = s.assign_channels(&chars, &cfg());
                assert_eq!(sets.len(), 4);
                for set in &sets {
                    assert!(!set.is_empty());
                    assert!(set.iter().all(|&c| c < 8));
                }
                if let Strategy::FourPart(_) = s {
                    let mut owned = [0u32; 8];
                    for set in &sets {
                        for &c in set {
                            owned[c] += 1;
                        }
                    }
                    assert!(owned.iter().all(|&n| n == 1), "strategy {idx}");
                }
            }
        }
    }

    /// Canonical labels never depend on part order. Exhaustive over all
    /// four-part strategies.
    #[test]
    fn canonical_is_order_invariant() {
        for idx in 8..42usize {
            if let Some(Strategy::FourPart(parts)) = Strategy::from_index(idx, 4) {
                let mut rev = parts;
                rev.reverse();
                // The reversed composition is also in the space (unless it
                // is the same composition).
                let a = Strategy::FourPart(parts).canonical_label();
                let b = Strategy::FourPart(rev).canonical_label();
                assert_eq!(a, b, "strategy {idx}");
            }
        }
    }
}
