//! The channel allocator (§IV-D).
//!
//! A thin inference wrapper: forward-propagate the collector's features
//! through the trained network and emit the winning strategy. The paper
//! argues the overhead is negligible (`Σ 16·Nᵢ` bytes of parameters,
//! `Σ Nᵢ·Nᵢ₊₁` multiplications per decision); [`ChannelAllocator::cost`]
//! reports both numbers for this model.
//!
//! Two throughput levers sit behind the same API:
//!
//! * **Batching** — [`ChannelAllocator::predict_batch_into`] packs many
//!   feature vectors into one matrix and runs each layer's kernel once
//!   for the whole window instead of once per tenant, through reused
//!   [`DecisionScratch`] buffers (zero steady-state allocations).
//! * **Quantization** — [`ChannelAllocator::quantized`] converts the
//!   backend to i16 fixed-point ([`ann::quant`]); predictions stay
//!   arg-max equivalent on the feature domain (see the equivalence
//!   battery in `crates/ann/tests`). The fleet path keeps the f32
//!   backend, so fleet digests are untouched by this option.

use crate::features::FeatureVector;
use crate::strategy::Strategy;
use ann::network::ForwardScratch;
use ann::quant::{QuantNetwork, QuantScratch};
use ann::{Matrix, Network};

/// Inference-time cost figures for a deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocatorCost {
    /// Parameter storage in bytes.
    pub param_bytes: usize,
    /// Multiplications per decision (integer muls for the quantized
    /// backend, floating-point for f32 — the count is the same).
    pub mults_per_decision: usize,
}

/// Reusable buffers for batched allocator decisions: the packed feature
/// matrix, the forward scratch of whichever backend is active, and the
/// class output vector. One scratch serves any number of allocators.
#[derive(Debug)]
pub struct DecisionScratch {
    input: Matrix,
    fwd: ForwardScratch,
    quant: QuantScratch,
    classes: Vec<usize>,
}

impl Default for DecisionScratch {
    fn default() -> Self {
        Self {
            input: Matrix::zeros(0, 0),
            fwd: ForwardScratch::new(),
            quant: QuantScratch::new(),
            classes: Vec::new(),
        }
    }
}

impl DecisionScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maps observed workload features to a channel-allocation strategy.
///
/// Backed by either the trained f32 network or its quantized mirror —
/// exactly one is active.
#[derive(Debug, Clone)]
pub struct ChannelAllocator {
    network: Option<Network>,
    quant: Option<QuantNetwork>,
    max_total_iops: f64,
}

impl ChannelAllocator {
    /// Wraps a trained network.
    ///
    /// # Panics
    ///
    /// Panics unless the network is 9-in / 42-out (the paper topology).
    pub fn new(network: Network, max_total_iops: f64) -> Self {
        assert_eq!(network.input_width(), 9, "expected 9 input features");
        assert_eq!(network.output_width(), 42, "expected 42 strategy classes");
        assert!(max_total_iops > 0.0);
        Self {
            network: Some(network),
            quant: None,
            max_total_iops,
        }
    }

    /// Wraps a quantized network (e.g. loaded from an `ssdkeeper-qmodel-v1`
    /// file).
    ///
    /// # Panics
    ///
    /// Panics unless the network is 9-in / 42-out.
    pub fn from_quantized(quant: QuantNetwork, max_total_iops: f64) -> Self {
        assert_eq!(quant.input_width(), 9, "expected 9 input features");
        assert_eq!(quant.output_width(), 42, "expected 42 strategy classes");
        assert!(max_total_iops > 0.0);
        Self {
            network: None,
            quant: Some(quant),
            max_total_iops,
        }
    }

    /// This allocator with the backend converted to i16 fixed-point.
    /// A no-op (clone) if the backend is already quantized.
    pub fn quantized(&self) -> ChannelAllocator {
        match &self.network {
            Some(net) => ChannelAllocator {
                network: None,
                quant: Some(QuantNetwork::from_network(net)),
                max_total_iops: self.max_total_iops,
            },
            None => self.clone(),
        }
    }

    /// Whether the active backend is the quantized one.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The IOPS that saturate the intensity scale this model was trained
    /// with; online feature extraction must use the same calibration.
    pub fn max_total_iops(&self) -> f64 {
        self.max_total_iops
    }

    /// Predicts the best strategy for the observed features.
    pub fn predict(&self, features: &FeatureVector) -> Strategy {
        obs::span!("decide");
        obs::counter_add!("keeper.decisions", 1u64);
        let input = features.to_input();
        let class = match (&self.network, &self.quant) {
            (Some(net), _) => net.predict_one(&input),
            (None, Some(q)) => q.predict_one(&input),
            (None, None) => unreachable!("allocator always has a backend"),
        };
        Strategy::from_index(class, 4).expect("42-way output maps onto the strategy space")
    }

    /// Batched prediction through reused scratch buffers: one kernel
    /// invocation per layer for the whole window. Each decision equals
    /// what [`ChannelAllocator::predict`] would return for that feature
    /// vector alone (both backends are row-independent).
    pub fn predict_batch_into(
        &self,
        features: &[FeatureVector],
        scratch: &mut DecisionScratch,
        out: &mut Vec<Strategy>,
    ) {
        out.clear();
        if features.is_empty() {
            return;
        }
        obs::span!("decide_batch");
        obs::counter_add!("keeper.decisions", features.len() as u64);
        scratch.input.resize(features.len(), 9);
        for (i, f) in features.iter().enumerate() {
            scratch.input.row_mut(i).copy_from_slice(&f.to_input());
        }
        match (&self.network, &self.quant) {
            (Some(net), _) => {
                net.predict_batch_into(&scratch.input, &mut scratch.fwd, &mut scratch.classes)
            }
            (None, Some(q)) => {
                q.predict_batch_into(&scratch.input, &mut scratch.quant, &mut scratch.classes)
            }
            (None, None) => unreachable!("allocator always has a backend"),
        }
        out.reserve(scratch.classes.len());
        for &class in &scratch.classes {
            out.push(
                Strategy::from_index(class, 4).expect("42-way output maps onto the strategy space"),
            );
        }
    }

    /// Batched prediction, allocating the result vector.
    pub fn predict_batch(&self, features: &[FeatureVector]) -> Vec<Strategy> {
        let mut scratch = DecisionScratch::new();
        let mut out = Vec::new();
        self.predict_batch_into(features, &mut scratch, &mut out);
        out
    }

    /// Class probabilities over the 42 strategies (for analysis).
    pub fn predict_proba(&self, features: &FeatureVector) -> Vec<f32> {
        let x = Matrix::from_rows(&[&features.to_input()]);
        match (&self.network, &self.quant) {
            (Some(net), _) => net.predict_proba(&x).row(0).to_vec(),
            (None, Some(q)) => q.predict_proba(&x).row(0).to_vec(),
            (None, None) => unreachable!("allocator always has a backend"),
        }
    }

    /// Inference cost of this model.
    pub fn cost(&self) -> AllocatorCost {
        match (&self.network, &self.quant) {
            (Some(net), _) => AllocatorCost {
                param_bytes: net.param_bytes(),
                mults_per_decision: net.forward_mults(),
            },
            (None, Some(q)) => AllocatorCost {
                param_bytes: q.param_bytes(),
                mults_per_decision: q.layers().iter().map(|l| l.fan_in() * l.fan_out()).sum(),
            },
            (None, None) => unreachable!("allocator always has a backend"),
        }
    }

    /// Borrow the underlying f32 network, if the backend is f32 (e.g.
    /// for persistence via [`ann::io`]).
    pub fn network(&self) -> Option<&Network> {
        self.network.as_ref()
    }

    /// Borrow the underlying quantized network, if the backend is
    /// quantized.
    pub fn quant_network(&self) -> Option<&QuantNetwork> {
        self.quant.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::Activation;

    fn allocator() -> ChannelAllocator {
        ChannelAllocator::new(Network::paper_topology(Activation::Logistic, 3), 100_000.0)
    }

    fn fv(level: u32) -> FeatureVector {
        FeatureVector {
            intensity_level: level,
            rw_char: [0, 1, 0, 1],
            shares: [0.4, 0.1, 0.3, 0.2],
        }
    }

    #[test]
    fn predict_returns_a_strategy_in_the_space() {
        let a = allocator();
        let s = a.predict(&fv(10));
        assert!(s.index(4) < 42);
    }

    #[test]
    fn predict_is_deterministic() {
        let a = allocator();
        assert_eq!(a.predict(&fv(5)), a.predict(&fv(5)));
    }

    #[test]
    fn proba_sums_to_one_and_matches_argmax() {
        let a = allocator();
        let p = a.predict_proba(&fv(7));
        assert_eq!(p.len(), 42);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(a.predict(&fv(7)).index(4), argmax);
    }

    #[test]
    fn batched_decisions_match_single_decisions() {
        let a = allocator();
        let features: Vec<FeatureVector> = (0..20).map(fv).collect();
        let mut scratch = DecisionScratch::new();
        let mut out = Vec::new();
        for _ in 0..2 {
            // Second pass runs with warm buffers.
            a.predict_batch_into(&features, &mut scratch, &mut out);
            assert_eq!(out.len(), features.len());
            for (f, s) in features.iter().zip(out.iter()) {
                assert_eq!(*s, a.predict(f), "batched decision drifted");
            }
        }
        a.predict_batch_into(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn quantized_backend_agrees_on_the_feature_domain() {
        let a = allocator();
        let q = a.quantized();
        assert!(q.is_quantized() && !a.is_quantized());
        assert_eq!(q.max_total_iops(), a.max_total_iops());
        let features: Vec<FeatureVector> = (0..20).map(fv).collect();
        for f in &features {
            assert_eq!(q.predict(f), a.predict(f), "quantized arg-max diverged");
        }
        assert_eq!(q.predict_batch(&features), a.predict_batch(&features));
        // Quantizing twice is a no-op.
        assert_eq!(q.quantized().predict(&fv(3)), q.predict(&fv(3)));
        // Half the parameter bytes, same multiply count.
        assert!(q.cost().param_bytes < a.cost().param_bytes);
        assert_eq!(q.cost().mults_per_decision, a.cost().mults_per_decision);
    }

    #[test]
    fn cost_matches_paper_topology() {
        let c = allocator().cost();
        assert_eq!(c.mults_per_decision, 9 * 64 + 64 * 42);
        assert_eq!(c.param_bytes, (9 * 64 + 64 + 64 * 42 + 42) * 4);
        // "Negligible" indeed: under 16 KB and ~3.3k multiplications.
        assert!(c.param_bytes < 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "42 strategy classes")]
    fn wrong_topology_is_rejected() {
        let net = Network::builder(9, 1)
            .hidden(8, Activation::ReLU)
            .output(10)
            .build();
        let _ = ChannelAllocator::new(net, 1.0);
    }

    #[test]
    fn exposes_calibration_and_network() {
        let a = allocator();
        assert_eq!(a.max_total_iops(), 100_000.0);
        assert_eq!(a.network().unwrap().output_width(), 42);
        assert!(a.quant_network().is_none());
        let q = a.quantized();
        assert!(q.network().is_none());
        assert_eq!(q.quant_network().unwrap().output_width(), 42);
    }
}
