//! The channel allocator (§IV-D).
//!
//! A thin inference wrapper: forward-propagate the collector's features
//! through the trained network and emit the winning strategy. The paper
//! argues the overhead is negligible (`Σ 16·Nᵢ` bytes of parameters,
//! `Σ Nᵢ·Nᵢ₊₁` multiplications per decision); [`ChannelAllocator::cost`]
//! reports both numbers for this model.

use crate::features::FeatureVector;
use crate::strategy::Strategy;
use ann::Network;

/// Inference-time cost figures for a deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocatorCost {
    /// Parameter storage in bytes.
    pub param_bytes: usize,
    /// Floating-point multiplications per decision.
    pub mults_per_decision: usize,
}

/// Maps observed workload features to a channel-allocation strategy.
#[derive(Debug, Clone)]
pub struct ChannelAllocator {
    network: Network,
    max_total_iops: f64,
}

impl ChannelAllocator {
    /// Wraps a trained network.
    ///
    /// # Panics
    ///
    /// Panics unless the network is 9-in / 42-out (the paper topology).
    pub fn new(network: Network, max_total_iops: f64) -> Self {
        assert_eq!(network.input_width(), 9, "expected 9 input features");
        assert_eq!(network.output_width(), 42, "expected 42 strategy classes");
        assert!(max_total_iops > 0.0);
        Self {
            network,
            max_total_iops,
        }
    }

    /// The IOPS that saturate the intensity scale this model was trained
    /// with; online feature extraction must use the same calibration.
    pub fn max_total_iops(&self) -> f64 {
        self.max_total_iops
    }

    /// Predicts the best strategy for the observed features.
    pub fn predict(&self, features: &FeatureVector) -> Strategy {
        let class = self.network.predict_one(&features.to_input());
        Strategy::from_index(class, 4).expect("42-way output maps onto the strategy space")
    }

    /// Class probabilities over the 42 strategies (for analysis).
    pub fn predict_proba(&self, features: &FeatureVector) -> Vec<f32> {
        let x = ann::Matrix::from_rows(&[&features.to_input()]);
        self.network.predict_proba(&x).row(0).to_vec()
    }

    /// Inference cost of this model.
    pub fn cost(&self) -> AllocatorCost {
        AllocatorCost {
            param_bytes: self.network.param_bytes(),
            mults_per_decision: self.network.forward_mults(),
        }
    }

    /// Borrow the underlying network (e.g. for persistence via
    /// [`ann::io`]).
    pub fn network(&self) -> &Network {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::Activation;

    fn allocator() -> ChannelAllocator {
        ChannelAllocator::new(Network::paper_topology(Activation::Logistic, 3), 100_000.0)
    }

    fn fv(level: u32) -> FeatureVector {
        FeatureVector {
            intensity_level: level,
            rw_char: [0, 1, 0, 1],
            shares: [0.4, 0.1, 0.3, 0.2],
        }
    }

    #[test]
    fn predict_returns_a_strategy_in_the_space() {
        let a = allocator();
        let s = a.predict(&fv(10));
        assert!(s.index(4) < 42);
    }

    #[test]
    fn predict_is_deterministic() {
        let a = allocator();
        assert_eq!(a.predict(&fv(5)), a.predict(&fv(5)));
    }

    #[test]
    fn proba_sums_to_one_and_matches_argmax() {
        let a = allocator();
        let p = a.predict_proba(&fv(7));
        assert_eq!(p.len(), 42);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(a.predict(&fv(7)).index(4), argmax);
    }

    #[test]
    fn cost_matches_paper_topology() {
        let c = allocator().cost();
        assert_eq!(c.mults_per_decision, 9 * 64 + 64 * 42);
        assert_eq!(c.param_bytes, (9 * 64 + 64 + 64 * 42 + 42) * 4);
        // "Negligible" indeed: under 16 KB and ~3.3k multiplications.
        assert!(c.param_bytes < 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "42 strategy classes")]
    fn wrong_topology_is_rejected() {
        let net = Network::builder(9, 1)
            .hidden(8, Activation::ReLU)
            .output(10)
            .build();
        let _ = ChannelAllocator::new(net, 1.0);
    }

    #[test]
    fn exposes_calibration_and_network() {
        let a = allocator();
        assert_eq!(a.max_total_iops(), 100_000.0);
        assert_eq!(a.network().output_width(), 42);
    }
}
