//! Label generation (Algorithm 1, lines 3–8).
//!
//! For a mixed workload, run the simulator once per strategy in the space
//! and select the strategy with the lowest total response latency (mean
//! read + mean write, the §III-B metric) as the training label. The
//! per-strategy runs are independent, so they fan out over
//! [`parallel::par_map`].

use crate::hybrid;
use crate::strategy::Strategy;
use flash_sim::{IoRequest, SimArena, SimBuilder, SimError, SimReport, SsdConfig, TenantLayout};
use parallel::PoolConfig;
use workloads::ObservedFeatures;

/// Domain tag for per-sample RNG seeding in the parallel label farm
/// ([`crate::learner::Learner::generate_dataset_parallel`]). Shares the
/// [`simrng::derive_seed`] triple rule with `fleet::seed`, whose domains
/// 1–3 are stream/profile/model — domain separation means the farm can
/// never collide with fleet-derived seeds.
pub const DOMAIN_LABEL_SAMPLE: u64 = 4;

/// Configuration shared by every labelling run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Device model under test.
    pub ssd: SsdConfig,
    /// Whether the hybrid page allocator is active.
    pub hybrid: bool,
    /// Thread pool for fanning strategies out.
    pub pool: PoolConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            ssd: SsdConfig::scaled_for_sweeps(),
            hybrid: false,
            pool: PoolConfig::auto(),
        }
    }
}

impl EvalConfig {
    /// This config with the strategy sweep pinned to one worker — for
    /// use inside an outer fan-out (the label farm parallelizes across
    /// samples; nesting a second pool per sample would oversubscribe).
    pub fn sequential(&self) -> EvalConfig {
        EvalConfig {
            pool: PoolConfig::with_workers(1),
            ..self.clone()
        }
    }
}

/// Result of evaluating one strategy on one mixed workload.
#[derive(Debug, Clone)]
pub struct StrategyEval {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Mean read latency (µs).
    pub read_us: f64,
    /// Mean write latency (µs).
    pub write_us: f64,
    /// The selection metric: `read_us + write_us`.
    pub metric_us: f64,
}

/// Runs `trace` on a device partitioned by `strategy`.
///
/// `rw_chars` are the tenants' observed characteristics (for two-part
/// grouping and the hybrid allocator); `lpn_spaces` bound each tenant's
/// logical footprint.
pub fn run_under_strategy(
    trace: &[IoRequest],
    strategy: Strategy,
    rw_chars: &[u8],
    lpn_spaces: &[u64],
    eval: &EvalConfig,
) -> Result<SimReport, SimError> {
    run_under_strategy_with(
        trace,
        strategy,
        rw_chars,
        lpn_spaces,
        eval,
        &mut SimArena::new(),
    )
}

/// [`run_under_strategy`] drawing the simulator's buffers from a
/// caller-owned [`SimArena`] — the label farm's inner loop, where one
/// arena per worker makes every run after the first allocation-free.
/// Reports are byte-identical to [`run_under_strategy`].
pub fn run_under_strategy_with(
    trace: &[IoRequest],
    strategy: Strategy,
    rw_chars: &[u8],
    lpn_spaces: &[u64],
    eval: &EvalConfig,
    arena: &mut SimArena,
) -> Result<SimReport, SimError> {
    assert_eq!(
        rw_chars.len(),
        lpn_spaces.len(),
        "one char and space per tenant"
    );
    let lists = strategy.assign_channels(rw_chars, &eval.ssd);
    let mut layout =
        TenantLayout::from_channel_lists(&lists, &eval.ssd).ok_or_else(|| SimError::BadLayout {
            reason: format!("strategy {strategy:?} produced invalid channel lists {lists:?}"),
        })?;
    let policies = hybrid::policies(rw_chars, eval.hybrid);
    for (t, (&space, &policy)) in lpn_spaces.iter().zip(policies.iter()).enumerate() {
        layout = layout.with_lpn_space(t, space).with_policy(t, policy);
    }
    SimBuilder::new(eval.ssd.clone(), layout)
        .build_with_arena(arena)?
        .run_reclaim(trace, arena)
}

/// Evaluates every strategy in the `tenants`-tenant space on `trace`.
///
/// The tenants' read/write characteristics are taken from the whole
/// trace, exactly as the offline label generator would observe them.
pub fn evaluate_all(
    trace: &[IoRequest],
    tenants: usize,
    lpn_spaces: &[u64],
    eval: &EvalConfig,
) -> Result<Vec<StrategyEval>, SimError> {
    let obs = ObservedFeatures::collect(trace, tenants, u64::MAX);
    let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
    let strategies = Strategy::all_for_tenants(tenants);

    // One arena per pool worker: each worker recycles a single simulator
    // allocation pool across every strategy it claims, so only its first
    // run pays for buffer construction.
    let results = parallel::par_map_init(
        &eval.pool,
        &strategies,
        SimArena::new,
        |arena, _, &strategy| {
            run_under_strategy_with(trace, strategy, &rw_chars, lpn_spaces, eval, arena).map(
                |report| {
                    let row = StrategyEval {
                        strategy,
                        read_us: report.read.mean_us(),
                        write_us: report.write.mean_us(),
                        metric_us: report.total_latency_metric_us(),
                    };
                    arena.recycle_report(report);
                    row
                },
            )
        },
    );
    results.into_iter().collect()
}

/// [`evaluate_all`] with the strategy sweep pinned to one caller-owned
/// [`SimArena`]. Only meaningful for sequential pools (one worker): a
/// parallel pool cannot share one arena, so this delegates to
/// [`evaluate_all`]'s per-worker arenas when `eval.pool` has more. The
/// label farm uses this from its outer fan-out — sample-level workers each
/// own an arena and sweep strategies sequentially through it.
pub fn evaluate_all_with(
    trace: &[IoRequest],
    tenants: usize,
    lpn_spaces: &[u64],
    eval: &EvalConfig,
    arena: &mut SimArena,
) -> Result<Vec<StrategyEval>, SimError> {
    if eval.pool.worker_count() > 1 {
        return evaluate_all(trace, tenants, lpn_spaces, eval);
    }
    let obs = ObservedFeatures::collect(trace, tenants, u64::MAX);
    let rw_chars: Vec<u8> = (0..tenants).map(|t| obs.rw_characteristic(t)).collect();
    let strategies = Strategy::all_for_tenants(tenants);

    strategies
        .iter()
        .map(|&strategy| {
            run_under_strategy_with(trace, strategy, &rw_chars, lpn_spaces, eval, arena).map(
                |report| {
                    let row = StrategyEval {
                        strategy,
                        read_us: report.read.mean_us(),
                        write_us: report.write.mean_us(),
                        metric_us: report.total_latency_metric_us(),
                    };
                    arena.recycle_report(report);
                    row
                },
            )
        })
        .collect()
}

/// The argmin-latency strategy (ties go to the earlier index, i.e. the
/// simpler strategy).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn best_strategy(evals: &[StrategyEval]) -> &StrategyEval {
    best_strategy_with_tolerance(evals, 0.0)
}

/// The earliest-index strategy whose metric is within `rel_tol` of the
/// true minimum.
///
/// Label generation uses a small tolerance (2 % by default): simulated
/// latencies of near-equivalent strategies differ by sampling noise, so a
/// strict argmin turns ties into label noise the model cannot learn.
/// Collapsing near-ties onto the earliest (simplest) strategy gives clean
/// labels, and predicting any strategy inside the tolerance band costs at
/// most `rel_tol` of latency.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn best_strategy_with_tolerance(evals: &[StrategyEval], rel_tol: f64) -> &StrategyEval {
    let min = evals
        .iter()
        .map(|e| e.metric_us)
        .fold(f64::INFINITY, f64::min);
    let bound = min * (1.0 + rel_tol.max(0.0));
    evals
        .iter()
        .find(|e| e.metric_us <= bound)
        .expect("at least one strategy evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

    fn small_eval() -> EvalConfig {
        EvalConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            hybrid: false,
            pool: PoolConfig::with_workers(1),
        }
    }

    fn two_tenant_trace(write_iops: f64, read_iops: f64, n: usize) -> Vec<IoRequest> {
        let w = generate_tenant_stream(
            &TenantSpec::synthetic("w", 1.0, write_iops, 1 << 12),
            0,
            n,
            11,
        );
        let r = generate_tenant_stream(
            &TenantSpec::synthetic("r", 0.0, read_iops, 1 << 12),
            1,
            n,
            22,
        );
        mix_chronological(&[w, r], usize::MAX)
    }

    #[test]
    fn run_under_strategy_produces_report() {
        let trace = two_tenant_trace(5_000.0, 5_000.0, 200);
        let eval = small_eval();
        let report = run_under_strategy(
            &trace,
            Strategy::Shared,
            &[0, 1],
            &[1 << 12, 1 << 12],
            &eval,
        )
        .unwrap();
        assert_eq!(report.total.count as usize, trace.len());
    }

    #[test]
    fn evaluate_all_covers_the_two_tenant_space() {
        let trace = two_tenant_trace(8_000.0, 8_000.0, 150);
        let evals = evaluate_all(&trace, 2, &[1 << 12, 1 << 12], &small_eval()).unwrap();
        assert_eq!(evals.len(), 8);
        assert!(evals.iter().all(|e| e.metric_us > 0.0));
        // Metric is consistent with its parts.
        for e in &evals {
            assert!((e.metric_us - (e.read_us + e.write_us)).abs() < 1e-9);
        }
    }

    #[test]
    fn best_strategy_is_argmin() {
        let trace = two_tenant_trace(8_000.0, 8_000.0, 150);
        let evals = evaluate_all(&trace, 2, &[1 << 12, 1 << 12], &small_eval()).unwrap();
        let best = best_strategy(&evals);
        assert!(evals.iter().all(|e| best.metric_us <= e.metric_us));
    }

    #[test]
    fn heavily_read_skewed_mix_prefers_read_channels() {
        // Reads arrive far above one channel's ~49k IOPS service capacity:
        // 7:1 (reader squeezed onto one channel) must lose badly to 1:7.
        let trace = two_tenant_trace(4_000.0, 90_000.0, 600);
        let evals = evaluate_all(&trace, 2, &[1 << 12, 1 << 12], &small_eval()).unwrap();
        let metric = |s: Strategy| {
            evals
                .iter()
                .find(|e| e.strategy == s)
                .map(|e| e.metric_us)
                .unwrap()
        };
        assert!(
            metric(Strategy::TwoPart { write_channels: 1 })
                < metric(Strategy::TwoPart { write_channels: 7 }),
            "1:7 should beat 7:1 on a read-heavy mix"
        );
    }

    #[test]
    fn hybrid_flag_changes_policies_not_correctness() {
        let trace = two_tenant_trace(6_000.0, 6_000.0, 150);
        let mut eval = small_eval();
        let base = run_under_strategy(
            &trace,
            Strategy::Isolated,
            &[0, 1],
            &[1 << 12, 1 << 12],
            &eval,
        )
        .unwrap();
        eval.hybrid = true;
        let hybrid = run_under_strategy(
            &trace,
            Strategy::Isolated,
            &[0, 1],
            &[1 << 12, 1 << 12],
            &eval,
        )
        .unwrap();
        assert_eq!(base.total.count, hybrid.total.count);
    }

    #[test]
    #[should_panic(expected = "one char and space per tenant")]
    fn mismatched_tenant_vectors_panic() {
        let trace = two_tenant_trace(1_000.0, 1_000.0, 10);
        let _ = run_under_strategy(&trace, Strategy::Shared, &[0, 1], &[64], &small_eval());
    }
}
