//! The hybrid page allocator (§IV-E).
//!
//! SSDKeeper assigns **static** page allocation to read-dominated tenants
//! (consecutive logical pages stripe across channels, so sequential reads
//! engage every bus) and **dynamic** allocation to write-dominated
//! tenants (writes chase idle dies, so bursts spread out). This module
//! maps observed characteristics to per-tenant policies.

use flash_sim::PageAllocPolicy;

/// Chooses the page-allocation policy for one tenant from its read/write
/// characteristic (1 = read-dominated → static; 0 = write-dominated →
/// dynamic).
pub fn policy_for_characteristic(rw_char: u8) -> PageAllocPolicy {
    if rw_char == 0 {
        PageAllocPolicy::Dynamic
    } else {
        PageAllocPolicy::Static
    }
}

/// Policies for a full tenant vector. When `enabled` is false every
/// tenant gets static allocation (the paper's non-hybrid baseline).
pub fn policies(rw_chars: &[u8], enabled: bool) -> Vec<PageAllocPolicy> {
    rw_chars
        .iter()
        .map(|&c| {
            if enabled {
                policy_for_characteristic(c)
            } else {
                PageAllocPolicy::Static
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_dominated_gets_static() {
        assert_eq!(policy_for_characteristic(1), PageAllocPolicy::Static);
    }

    #[test]
    fn write_dominated_gets_dynamic() {
        assert_eq!(policy_for_characteristic(0), PageAllocPolicy::Dynamic);
    }

    #[test]
    fn disabled_hybrid_is_all_static() {
        let p = policies(&[0, 1, 0, 1], false);
        assert!(p.iter().all(|&p| p == PageAllocPolicy::Static));
    }

    #[test]
    fn enabled_hybrid_mixes_policies() {
        let p = policies(&[0, 1, 0, 1], true);
        assert_eq!(
            p,
            vec![
                PageAllocPolicy::Dynamic,
                PageAllocPolicy::Static,
                PageAllocPolicy::Dynamic,
                PageAllocPolicy::Static,
            ]
        );
    }
}
