//! A small, dependency-light parallel execution substrate.
//!
//! The SSDKeeper strategy learner labels thousands of mixed workloads by
//! running each of them under all 42 channel-allocation strategies on the
//! flash simulator (Algorithm 1 of the paper). Those simulations are
//! embarrassingly parallel, so the learner fans them out across cores with
//! [`par_map`]. The paper's authors ran the equivalent sweep with ad-hoc
//! scripts on a dual-Xeon workstation; this crate is the reusable Rust
//! replacement.
//!
//! Design notes:
//! * Built on [`std::thread::scope`] so closures may borrow from the
//!   caller's stack — no `'static` bounds, no `Arc` plumbing, and no
//!   external crates (the workspace builds hermetically offline).
//! * Work distribution is a single atomic cursor over the input index space
//!   (self-scheduling), which load-balances well when item costs vary by an
//!   order of magnitude, as simulator runs do.
//! * Results are returned **in input order** regardless of completion order.
//! * With one worker the implementation degrades to a plain sequential map
//!   (no threads are spawned), so the same code path is used on single-core
//!   CI machines.
#![warn(missing_docs)]

pub mod chunk;
pub mod pool;

pub use chunk::{chunk_ranges, Chunk};
pub use pool::{par_map, par_map_init, par_map_with, PoolConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let out = par_map(&PoolConfig::default(), &[1, 2, 3], |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let ranges = chunk_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
    }
}
