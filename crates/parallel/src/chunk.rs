//! Balanced partitioning of an index space into contiguous chunks.
//!
//! Used by batch producers (dataset generation, parameter sweeps) that want
//! chunk-granular progress reporting rather than item-granular
//! self-scheduling.

use std::ops::Range;

/// A contiguous chunk of a larger index space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the chunk sequence.
    pub index: usize,
    /// Half-open index range covered by the chunk.
    pub range: Range<usize>,
}

impl Chunk {
    /// Number of items in the chunk.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the chunk covers no items.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Splits `0..total` into at most `parts` contiguous chunks whose sizes
/// differ by at most one. Returns fewer chunks when `total < parts`; returns
/// an empty vector when `total == 0`.
///
/// # Examples
///
/// ```
/// use parallel::chunk_ranges;
///
/// let chunks = chunk_ranges(10, 3);
/// assert_eq!(chunks[0].range, 0..4);
/// assert_eq!(chunks[1].range, 4..7);
/// assert_eq!(chunks[2].range, 7..10);
/// ```
pub fn chunk_ranges(total: usize, parts: usize) -> Vec<Chunk> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for index in 0..parts {
        let len = base + usize::from(index < extra);
        chunks.push(Chunk {
            index,
            range: start..start + len,
        });
        start += len;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn zero_total_yields_no_chunks() {
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    fn zero_parts_yields_no_chunks() {
        assert!(chunk_ranges(10, 0).is_empty());
    }

    #[test]
    fn exact_division() {
        let chunks = chunk_ranges(8, 4);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn more_parts_than_items_clamps() {
        let chunks = chunk_ranges(3, 10);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn chunk_len_and_is_empty() {
        let c = Chunk {
            index: 0,
            range: 2..5,
        };
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let e = Chunk {
            index: 1,
            range: 5..5,
        };
        assert!(e.is_empty());
    }

    /// Chunks are a gapless, in-order cover of 0..total, with sizes
    /// differing by at most one, over seeded random (total, parts) pairs.
    #[test]
    fn cover_is_exact_and_balanced() {
        let mut rng = SimRng::seed_from_u64(601);
        for _ in 0..256 {
            let total = rng.gen_range(0usize..10_000);
            let parts = rng.gen_range(1usize..64);
            let chunks = chunk_ranges(total, parts);
            let mut expected_start = 0;
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(c.index, i);
                assert_eq!(c.range.start, expected_start);
                expected_start = c.range.end;
            }
            assert_eq!(expected_start, total, "total {total} parts {parts}");
            if let (Some(max), Some(min)) = (
                chunks.iter().map(Chunk::len).max(),
                chunks.iter().map(Chunk::len).min(),
            ) {
                assert!(max - min <= 1, "total {total} parts {parts}");
            }
        }
    }
}
