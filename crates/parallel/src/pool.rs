//! Order-preserving parallel map over a slice.
//!
//! The implementation deliberately avoids a long-lived thread pool: the
//! strategy learner's unit of work (one simulator run) lasts milliseconds,
//! so the cost of spawning a handful of scoped threads per batch is noise,
//! and scoped threads let the mapped closure borrow the simulator
//! configuration and workload buffers without cloning them per task.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration for [`par_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads. `1` means "run on the calling thread".
    pub workers: NonZeroUsize,
}

impl PoolConfig {
    /// A pool sized to the machine: one worker per available hardware thread.
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism()
            .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero"));
        Self { workers }
    }

    /// A pool with exactly `n` workers (clamped up to at least 1).
    pub fn with_workers(n: usize) -> Self {
        Self {
            workers: NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"),
        }
    }

    /// Number of workers as a plain `usize`.
    pub fn worker_count(&self) -> usize {
        self.workers.get()
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Locks a mutex, ignoring poison: every panic in a worker closure is
/// already routed through `catch_unwind`, so a poisoned lock only means a
/// sibling died mid-update of an `Option` slot, which is safe to read.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Applies `f` to every element of `items` and returns the results in input
/// order, fanning the work across `config.workers` threads.
///
/// Work is self-scheduled: each worker repeatedly claims the next unclaimed
/// index from a shared atomic cursor. This keeps all workers busy even when
/// item costs are highly skewed (e.g. a 1:7 channel split that saturates and
/// simulates slowly next to a balanced split that finishes quickly).
///
/// Panics in `f` are propagated to the caller after all workers have
/// drained: the original panic payload of the **first** failing index is
/// re-raised via [`std::panic::resume_unwind`], so `should_panic`
/// expectations and custom payload types survive the pool boundary.
/// Results completed before the failure are dropped cleanly.
///
/// # Examples
///
/// ```
/// use parallel::{par_map, PoolConfig};
///
/// let squares = par_map(&PoolConfig::with_workers(4), &[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(config: &PoolConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(config, items, |_, item| f(item))
}

/// Like [`par_map`] but the closure also receives the item's index.
///
/// Useful when per-item RNG streams must be derived from the index so that
/// results do not depend on the number of workers.
pub fn par_map_with<T, R, F>(config: &PoolConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_init(config, items, || (), |_, i, t| f(i, t))
}

/// Like [`par_map_with`] but each worker thread owns a mutable state value
/// built once by `init` and handed to every item that worker claims.
///
/// This is the hook for per-worker scratch that is expensive to build —
/// the strategy learner passes `flash_sim::SimArena::new` so each worker
/// recycles one simulator allocation pool across all of its runs. Because
/// the state is per-*worker* (not per-item), `f` must not let results
/// depend on which items share a state value; an arena only recycles
/// buffers, so it satisfies this by construction.
///
/// With one worker (or one item) everything runs on the calling thread
/// with a single `init()` state, preserving the sequential degradation of
/// [`par_map`]. Panic propagation matches [`par_map_with`]: the payload of
/// the lowest-index failing item is re-raised after all workers drain. A
/// panic inside `init` itself also propagates, but loses to any item
/// panic when picking the payload.
pub fn par_map_init<T, S, R, I, F>(config: &PoolConfig, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = config.worker_count().min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    // Each completed item is written into its slot; slots start empty.
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // `(claim index, payload)` of the earliest panicking item; `init`
    // failures record `usize::MAX` so any real item failure outranks them.
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    let record_panic = |idx: usize, payload: Box<dyn std::any::Any + Send>| {
        let mut guard = lock_unpoisoned(&first_panic);
        // Keep the payload of the lowest-index failure so propagation is
        // deterministic across schedules.
        if guard.as_ref().is_none_or(|(i, _)| idx < *i) {
            *guard = Some((idx, payload));
        }
        // Park the cursor so siblings stop claiming work.
        cursor.store(items.len(), Ordering::Relaxed);
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = match catch_unwind(AssertUnwindSafe(&init)) {
                    Ok(s) => s,
                    Err(payload) => {
                        record_panic(usize::MAX, payload);
                        return;
                    }
                };
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(&mut state, idx, &items[idx]))) {
                        Ok(value) => *lock_unpoisoned(&slots[idx]) = Some(value),
                        Err(payload) => {
                            record_panic(idx, payload);
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some((_, payload)) = lock_unpoisoned(&first_panic).take() {
        // Completed slots drop here, then the original payload re-raises.
        drop(slots);
        std::panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every slot is filled unless a worker panicked")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = par_map(&PoolConfig::with_workers(4), &[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential_map() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&PoolConfig::with_workers(1), &items, |&x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_input_order_with_many_workers() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&PoolConfig::with_workers(8), &items, |&x| x * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn each_item_processed_exactly_once() {
        let items: Vec<usize> = (0..512).collect();
        let out = par_map(&PoolConfig::with_workers(7), &items, |&x| x);
        let seen: HashSet<usize> = out.into_iter().collect();
        assert_eq!(seen.len(), 512);
    }

    #[test]
    fn index_variant_passes_matching_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_with(&PoolConfig::with_workers(3), &items, |i, s| {
            format!("{i}{s}")
        });
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn closure_may_borrow_caller_state() {
        let base = [10u64, 20, 30];
        let items = vec![0usize, 1, 2];
        let out = par_map(&PoolConfig::with_workers(2), &items, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn skewed_costs_still_complete() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&PoolConfig::with_workers(4), &items, |&x| {
            // Make early items much more expensive than late ones.
            let spins = if x < 4 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    /// The fleet layer shards work in counts that rarely divide the
    /// worker count evenly: every remainder class must still come back
    /// complete and in input order.
    #[test]
    fn non_multiple_item_counts_preserve_order() {
        for workers in [2usize, 3, 4, 7] {
            for len in [1usize, 5, 7, 13, 63, 65, 101] {
                let items: Vec<usize> = (0..len).collect();
                let out = par_map(&PoolConfig::with_workers(workers), &items, |&x| x * 2 + 1);
                assert_eq!(
                    out,
                    (0..len).map(|x| x * 2 + 1).collect::<Vec<_>>(),
                    "workers {workers}, len {len}"
                );
            }
        }
    }

    /// A panic in the middle of a worker's claimed range (neither the
    /// first nor the last item overall) must still surface, even when the
    /// item count is not a multiple of the worker count.
    #[test]
    #[should_panic(expected = "mid-chunk")]
    fn mid_chunk_panic_propagates_with_ragged_chunks() {
        let items: Vec<u32> = (0..13).collect();
        let _ = par_map(&PoolConfig::with_workers(4), &items, |&x| {
            if x == 6 {
                panic!("mid-chunk");
            }
            x
        });
    }

    /// After a mid-chunk panic the pool must not lose the results
    /// discipline for subsequent calls on the same config: catch the
    /// unwind, then run a clean map and check it end to end.
    #[test]
    fn pool_is_reusable_after_a_panicked_call() {
        let cfg = PoolConfig::with_workers(3);
        let items: Vec<u32> = (0..10).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&cfg, &items, |&x| {
                if x == 7 {
                    panic!("first call dies");
                }
                x
            })
        });
        assert!(result.is_err());
        let out = par_map(&cfg, &items, |&x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let items = vec![0u32, 1, 2, 3];
        let _ = par_map(&PoolConfig::with_workers(2), &items, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    /// The *original* payload must cross the pool boundary — not a generic
    /// "a worker panicked" message — including non-string payload types.
    #[test]
    fn panic_payload_is_preserved_verbatim() {
        #[derive(Debug, PartialEq)]
        struct Marker(u64);

        let items: Vec<u64> = (0..16).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&PoolConfig::with_workers(4), &items, |&x| {
                if x == 5 {
                    std::panic::panic_any(Marker(x));
                }
                x
            })
        }))
        .expect_err("pool must re-raise the worker panic");
        let marker = caught
            .downcast::<Marker>()
            .expect("payload type must survive propagation");
        assert_eq!(*marker, Marker(5));
    }

    /// A panicking closure must not leak results: every successfully
    /// completed item is dropped exactly once, and no drop is lost.
    #[test]
    fn completed_slots_drop_cleanly_on_panic() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        static CREATED: AtomicUsize = AtomicUsize::new(0);

        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&PoolConfig::with_workers(4), &items, |&x| {
                if x == 40 {
                    panic!("late failure");
                }
                CREATED.fetch_add(1, Ordering::SeqCst);
                Counted
            })
        }));
        assert!(result.is_err());
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            CREATED.load(Ordering::SeqCst),
            "every constructed result must be dropped exactly once"
        );
        assert!(
            CREATED.load(Ordering::SeqCst) >= 1,
            "some items completed first"
        );
    }

    /// When several workers panic, the lowest claimed index wins so the
    /// caller sees a deterministic payload.
    #[test]
    fn first_failing_index_wins() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&PoolConfig::with_workers(8), &items, |&x| -> u64 {
                // Everyone panics; index 0 must be the payload that surfaces
                // regardless of scheduling, because it is the lowest index.
                std::panic::panic_any(x);
            })
        }))
        .expect_err("all workers panic");
        let idx = caught.downcast::<u64>().expect("u64 payload");
        assert_eq!(*idx, 0);
    }

    /// Worker state must be built exactly once per participating thread
    /// and visible to every item that thread claims.
    #[test]
    fn init_state_is_per_worker_and_reused() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_init(
            &PoolConfig::with_workers(4),
            &items,
            || {
                INITS.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, i, &x| {
                scratch.push(i); // scratch persists across this worker's items
                x * 2
            },
        );
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
        let inits = INITS.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&inits),
            "one init per spawned worker, got {inits}"
        );
    }

    #[test]
    fn init_runs_once_on_the_sequential_path() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        let out = par_map_init(
            &PoolConfig::with_workers(1),
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |acc, _, &x| {
                *acc += x; // running state survives across items
                *acc
            },
        );
        assert_eq!(inits.load(Ordering::SeqCst), 1);
        // Sequential path threads one accumulator through all items.
        assert_eq!(out.last().copied(), Some((0..16).sum()));
    }

    #[test]
    #[should_panic(expected = "init dies")]
    fn init_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_init(
            &PoolConfig::with_workers(4),
            &items,
            || -> u32 { panic!("init dies") },
            |_, _, &x| x,
        );
    }

    #[test]
    fn workers_clamped_to_item_count() {
        // More workers than items must not deadlock or drop results.
        let items = vec![1u8, 2];
        let out = par_map(&PoolConfig::with_workers(64), &items, |&x| x * 2);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn auto_config_has_at_least_one_worker() {
        assert!(PoolConfig::auto().worker_count() >= 1);
    }
}
