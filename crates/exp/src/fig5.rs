//! Figure 5 + Tables IV/V — the end-to-end evaluation on MSR-like mixes.
//!
//! Builds Mix1–Mix4 (Table IV) from the MSR-like synthesizers, runs each
//! under `Shared`, `Isolated`, and SSDKeeper (with and without the hybrid
//! page allocator), prints the chosen strategies and features (Table V),
//! the per-mix write/read/total latencies normalized to `Shared`
//! (Figure 5a–c), and the overall-improvement summary (§V-C's 24 %
//! headline and the +2.1 % hybrid delta).

use crate::table::{f2, Table};
use flash_sim::{IoRequest, SimReport, SsdConfig};
use ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper::{ChannelAllocator, FeatureVector, Strategy};
use workloads::msr::{paper_mix_profiles, MixProfile, MsrTrace};
use workloads::{generate_tenant_stream, mix_chronological};

/// Parameters for the evaluation runs.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Requests taken per mixed trace (paper: 1 M).
    pub requests: usize,
    /// IOPS that saturate intensity level 19; must match the allocator's
    /// training calibration.
    pub max_total_iops: f64,
    /// Logical pages per tenant.
    pub lpn_space: u64,
    /// Device model.
    pub ssd: SsdConfig,
    /// Observation window T (ns).
    pub observe_window_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            requests: 100_000,
            max_total_iops: 120_000.0,
            lpn_space: 1 << 12,
            ssd: SsdConfig::scaled_for_sweeps(),
            observe_window_ns: 50_000_000,
            seed: 4242,
        }
    }
}

/// All reports for one mix.
#[derive(Debug, Clone)]
pub struct MixResult {
    /// Mix name ("Mix1"…"Mix4").
    pub name: &'static str,
    /// The four traces in tenant order.
    pub members: [MsrTrace; 4],
    /// Collector features at `t == T`.
    pub features: FeatureVector,
    /// SSDKeeper's chosen strategy.
    pub chosen: Strategy,
    /// Baseline: all channels shared.
    pub shared: SimReport,
    /// Baseline: channels split evenly.
    pub isolated: SimReport,
    /// The chosen strategy run from t=0 (steady state, the Figure 5
    /// comparison), without hybrid page allocation.
    pub keeper: SimReport,
    /// Steady state with hybrid page allocation.
    pub keeper_hybrid: SimReport,
    /// The full Algorithm 2 online run: Shared during the observation
    /// window, then a live switch to the chosen strategy. Phase-1 data
    /// stays where it was written, so this is a lower bound on the
    /// steady-state gain.
    pub keeper_online: SimReport,
}

impl MixResult {
    /// Total-latency improvement of SSDKeeper (no hybrid) over `Shared`,
    /// as a fraction (positive = better).
    pub fn improvement_vs_shared(&self) -> f64 {
        1.0 - self.keeper.total_latency_metric_us() / self.shared.total_latency_metric_us()
    }

    /// Extra improvement contributed by hybrid page allocation.
    pub fn hybrid_gain(&self) -> f64 {
        1.0 - self.keeper_hybrid.total_latency_metric_us() / self.keeper.total_latency_metric_us()
    }
}

/// Builds one mixed trace from a Table V profile: each tenant runs at the
/// IOPS implied by the observed shares and intensity level, keeps its
/// Table II write ratio and pattern flavour, and the streams are merged
/// chronologically and truncated to `cfg.requests` (§V-C).
pub fn build_mix(profile: &MixProfile, cfg: &Fig5Config) -> Vec<IoRequest> {
    let iops = profile.tenant_iops(cfg.max_total_iops);
    let streams: Vec<Vec<IoRequest>> = profile
        .members
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // Generate ~25% slack so the lightest tenant still covers the
            // merged horizon after truncation.
            let count = ((cfg.requests as f64 * profile.shares[i] * 1.25).ceil() as usize).max(8);
            let mut spec = t.spec(1.0, cfg.lpn_space);
            spec.iops = iops[i];
            generate_tenant_stream(&spec, i as u16, count, cfg.seed + i as u64 * 97)
        })
        .collect();
    mix_chronological(&streams, cfg.requests)
}

/// Runs all four mixes through the baselines and SSDKeeper.
pub fn run(cfg: &Fig5Config, allocator: &ChannelAllocator) -> Vec<MixResult> {
    paper_mix_profiles()
        .into_iter()
        .map(|profile| {
            let MixProfile { name, members, .. } = profile;
            let trace = build_mix(&profile, cfg);
            let lpn_spaces = [cfg.lpn_space; 4];

            let keeper_cfg = |hybrid: bool| KeeperConfig {
                ssd: cfg.ssd.clone(),
                observe_window_ns: cfg.observe_window_ns,
                hybrid,
            };
            let keeper_plain = Keeper::new(keeper_cfg(false), allocator.clone());
            let keeper_hybrid = Keeper::new(keeper_cfg(true), allocator.clone());

            let shared = keeper_plain
                .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Shared))
                .expect("shared baseline run")
                .report;
            let isolated = keeper_plain
                .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Isolated))
                .expect("isolated baseline run")
                .report;
            // Algorithm 2 online run: observe, predict, live-switch.
            let online = keeper_plain
                .run(RunSpec::adapt_once(&trace, &lpn_spaces))
                .expect("online adaptive run");
            // Steady state: the predicted strategy applied from t=0 (the
            // paper's Figure 5 comparison).
            let steady = keeper_plain
                .run(RunSpec::fixed(&trace, &lpn_spaces, online.strategy))
                .expect("steady run")
                .report;
            let steady_hybrid = keeper_hybrid
                .run(RunSpec::fixed(&trace, &lpn_spaces, online.strategy))
                .expect("steady hybrid run")
                .report;

            MixResult {
                name,
                members,
                features: online
                    .features
                    .clone()
                    .expect("adapt-once always computes features"),
                chosen: online.strategy,
                shared,
                isolated,
                keeper: steady,
                keeper_hybrid: steady_hybrid,
                keeper_online: online.report,
            }
        })
        .collect()
}

/// Renders Table IV (mix membership) and Table V (features + chosen
/// strategy).
pub fn render_tables45(results: &[MixResult]) -> String {
    let mut t4 = Table::new(&["Mixed Workload", "Workloads"]);
    for r in results {
        let names: Vec<&str> = r.members.iter().map(|m| m.name()).collect();
        t4.row(vec![r.name.to_string(), names.join(", ")]);
    }
    let mut t5 = Table::new(&[
        "Mixed Workload",
        "Characteristics",
        "SSDKeeper Channel Allocation",
    ]);
    for r in results {
        t5.row(vec![
            r.name.to_string(),
            r.features.to_string(),
            r.chosen.to_string(),
        ]);
    }
    format!(
        "Table IV: mixed workloads\n{}\nTable V: features and chosen strategies\n{}",
        t4.render(),
        t5.render()
    )
}

/// Renders Figure 5(a,b,c): per-mix write/read/total latency normalized
/// to `Shared`.
pub fn render_fig5(results: &[MixResult]) -> String {
    type SeriesFn = fn(&SimReport) -> f64;
    let mut out = String::new();
    let series: [(&str, SeriesFn); 3] = [
        ("Figure 5(a): normalized WRITE latency", |r| {
            r.write.mean_us()
        }),
        ("Figure 5(b): normalized READ latency", |r| r.read.mean_us()),
        ("Figure 5(c): normalized TOTAL latency", |r| {
            r.total_latency_metric_us()
        }),
    ];
    for (title, f) in series {
        let mut t = Table::new(&["mix", "Shared", "Isolated", "SSDKeeper", "SSDKeeper+hybrid"]);
        for r in results {
            let base = f(&r.shared).max(1e-9);
            t.row(vec![
                r.name.to_string(),
                f2(f(&r.shared) / base),
                f2(f(&r.isolated) / base),
                f2(f(&r.keeper) / base),
                f2(f(&r.keeper_hybrid) / base),
            ]);
        }
        out.push_str(&format!("{title} (Shared = 1.00)\n{}\n", t.render()));
    }
    out
}

/// Renders the per-tenant read/write latency percentile table for the
/// SSDKeeper steady run next to the Shared baseline's tails. Percentiles
/// come from the reports' log₂ histograms (upper bucket edge, so values
/// err high by at most 2×) — the same estimator `ssdtrace summarize`
/// applies to captures.
pub fn render_percentiles(results: &[MixResult]) -> String {
    let tails = |s: &flash_sim::LatencyStats| {
        format!(
            "{}/{}/{}",
            f2(s.percentile_ns(0.50) as f64 / 1_000.0),
            f2(s.percentile_ns(0.95) as f64 / 1_000.0),
            f2(s.percentile_ns(0.99) as f64 / 1_000.0),
        )
    };
    let mut t = Table::new(&[
        "mix",
        "tenant",
        "read p50/p95/p99 (us)",
        "write p50/p95/p99 (us)",
        "Shared read p99",
        "Shared write p99",
    ]);
    for r in results {
        for (tenant, tr) in r.keeper.tenants.iter().enumerate() {
            let shared = &r.shared.tenants[tenant];
            t.row(vec![
                r.name.to_string(),
                format!("t{tenant}"),
                tails(&tr.read),
                tails(&tr.write),
                f2(shared.read.percentile_ns(0.99) as f64 / 1_000.0),
                f2(shared.write.percentile_ns(0.99) as f64 / 1_000.0),
            ]);
        }
    }
    format!(
        "Per-tenant latency percentiles, SSDKeeper steady run (log2-bucketed)\n{}",
        t.render()
    )
}

/// The §V-C headline numbers: per-mix improvement over Shared, the mean
/// over the mixes where SSDKeeper re-allocates, and the hybrid delta.
pub fn render_summary(results: &[MixResult]) -> String {
    let mut out = String::from("Summary (vs Shared baseline):\n");
    let mut gains = Vec::new();
    for r in results {
        let imp = r.improvement_vs_shared() * 100.0;
        let hyb = r.hybrid_gain() * 100.0;
        let online = (1.0
            - r.keeper_online.total_latency_metric_us() / r.shared.total_latency_metric_us())
            * 100.0;
        out.push_str(&format!(
            "  {}: chose {:<8} steady {:+.1}%  online {:+.1}%  (hybrid adds {:+.1}%)\n",
            r.name,
            r.chosen.to_string(),
            imp,
            online,
            hyb
        ));
        if r.chosen != Strategy::Shared {
            gains.push(r.improvement_vs_shared());
        }
    }
    if !gains.is_empty() {
        let mean = gains.iter().sum::<f64>() / gains.len() as f64 * 100.0;
        out.push_str(&format!(
            "  mean improvement on re-allocated mixes: {mean:.1}% (paper: ~24% over Mix2-4)\n"
        ));
    }
    let hybrid_mean =
        results.iter().map(MixResult::hybrid_gain).sum::<f64>() / results.len() as f64 * 100.0;
    out.push_str(&format!(
        "  mean hybrid page-allocation gain: {hybrid_mean:+.1}% (paper: +2.1%)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Activation, Network};
    use parallel::PoolConfig;

    fn tiny_cfg() -> Fig5Config {
        Fig5Config {
            requests: 2_000,
            max_total_iops: 120_000.0,
            lpn_space: 1 << 10,
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            observe_window_ns: 5_000_000,
            seed: 1,
        }
    }

    fn untrained_allocator() -> ChannelAllocator {
        let _ = PoolConfig::with_workers(1);
        ChannelAllocator::new(Network::paper_topology(Activation::Logistic, 2), 120_000.0)
    }

    #[test]
    fn mixes_have_the_right_members_and_size() {
        let cfg = tiny_cfg();
        for profile in paper_mix_profiles() {
            let trace = build_mix(&profile, &cfg);
            assert_eq!(trace.len(), cfg.requests);
            assert!(trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
            // The tenant with the largest Table V share dominates.
            let mut counts = [0usize; 4];
            for r in &trace {
                counts[r.tenant as usize] += 1;
            }
            let heaviest = profile
                .shares
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let max_count = counts.iter().copied().max().unwrap();
            assert_eq!(counts[heaviest], max_count, "{}", profile.name);
        }
    }

    #[test]
    fn full_pipeline_runs_and_renders() {
        let cfg = tiny_cfg();
        let results = run(&cfg, &untrained_allocator());
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.shared.total.count as usize, cfg.requests);
            assert_eq!(r.keeper.total.count as usize, cfg.requests);
        }
        let t = render_tables45(&results);
        assert!(t.contains("Mix1") && t.contains("Table V"));
        let f = render_fig5(&results);
        assert!(f.contains("Figure 5(c)"));
        let s = render_summary(&results);
        assert!(s.contains("mean hybrid"));
        let p = render_percentiles(&results);
        assert!(p.contains("p50/p95/p99"));
        // One row per (mix, tenant) plus the header lines.
        assert!(p.matches("Mix1").count() == 4 && p.matches("t3").count() == 4);
    }
}
