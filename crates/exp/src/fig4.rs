//! Figure 4 + Table III — model training with the four optimizer
//! configurations.
//!
//! Trains the 9→64→42 network on a labelled dataset with SGD,
//! SGD-momentum, Adam-ReLU, and Adam-logistic; prints the loss curve
//! (Figure 4a), the test-accuracy curve (Figure 4b), and the final
//! loss/accuracy/training-time table (Table III).

use crate::table::{f3, Table};
use ssdkeeper::learner::{
    effective_accuracy, effective_accuracy_subset, DatasetSpec, LabelledDataset, Learner,
    OptimizerChoice, TrainedModel,
};

/// Training outcomes per optimizer configuration.
#[derive(Debug)]
pub struct Fig4Result {
    /// The configuration trained.
    pub choice: OptimizerChoice,
    /// The trained model (history inside).
    pub model: TrainedModel,
}

/// Trains all four paper configurations on `dataset` for `epochs`
/// iterations.
pub fn run(dataset: &LabelledDataset, epochs: usize, seed: u64) -> Vec<Fig4Result> {
    let learner = Learner::new(DatasetSpec::quick(1)); // spec irrelevant for training
    OptimizerChoice::PAPER
        .iter()
        .map(|&choice| Fig4Result {
            choice,
            model: learner.train_with(dataset, choice, epochs, seed),
        })
        .collect()
}

/// Renders the loss (a) and accuracy (b) curves, sampled every `stride`
/// iterations.
pub fn render_curves(results: &[Fig4Result], stride: usize) -> String {
    let epochs = results[0].model.history.loss.len();
    let stride = stride.max(1);
    let mut headers = vec!["iteration".to_string()];
    headers.extend(results.iter().map(|r| r.choice.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut loss_table = Table::new(&header_refs);
    let mut acc_table = Table::new(&header_refs);
    for epoch in (0..epochs)
        .step_by(stride)
        .chain(std::iter::once(epochs - 1))
    {
        let mut lrow = vec![format!("{}", epoch + 1)];
        let mut arow = vec![format!("{}", epoch + 1)];
        for r in results {
            lrow.push(f3(r.model.history.loss[epoch] as f64));
            arow.push(f3(r.model.history.test_accuracy[epoch] as f64));
        }
        loss_table.row(lrow);
        acc_table.row(arow);
    }
    format!(
        "Figure 4(a): training loss\n{}\nFigure 4(b): test accuracy\n{}",
        loss_table.render(),
        acc_table.render()
    )
}

/// Renders Table III: final loss, accuracy, and wall training time. When
/// the dataset carries per-strategy metrics (v2), an *effective accuracy*
/// column is added: predictions within 5 % of the optimal latency.
pub fn render_table3(results: &[Fig4Result], dataset: &LabelledDataset) -> String {
    let mut t = Table::new(&[
        "Optimizer",
        "Loss",
        "Accuracy",
        "Effective Acc (<=5% regret)",
        "Training Time(ms)",
    ]);
    for r in results {
        // Score on the model's held-out split when available, so the
        // number is a generalization figure, not memorization.
        let eff = if r.model.test_indices.is_empty() {
            effective_accuracy(&r.model.allocator(), dataset, 0.05)
        } else {
            effective_accuracy_subset(&r.model.allocator(), dataset, &r.model.test_indices, 0.05)
        }
        .map(|a| format!("{:.1}%", a * 100.0))
        .unwrap_or_else(|| "n/a".to_string());
        t.row(vec![
            r.choice.name().to_string(),
            f3(r.model.history.final_loss() as f64),
            format!("{:.1}%", r.model.history.final_accuracy() * 100.0),
            eff,
            format!("{}", r.model.history.wall_time.as_millis()),
        ]);
    }
    format!(
        "Table III: final loss, accuracy and training time\n{}",
        t.render()
    )
}

/// Returns the best configuration: by effective accuracy (<=5 % regret)
/// when the dataset carries per-strategy metrics, otherwise by raw test
/// accuracy.
pub fn best<'a>(results: &'a [Fig4Result], dataset: &LabelledDataset) -> &'a Fig4Result {
    let score = |r: &Fig4Result| {
        let eff = if r.model.test_indices.is_empty() {
            effective_accuracy(&r.model.allocator(), dataset, 0.05)
        } else {
            effective_accuracy_subset(&r.model.allocator(), dataset, &r.model.test_indices, 0.05)
        };
        eff.unwrap_or_else(|| r.model.history.final_accuracy() as f64)
    };
    results
        .iter()
        .max_by(|a, b| score(a).partial_cmp(&score(b)).expect("scores are finite"))
        .expect("non-empty results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::SsdConfig;
    use parallel::PoolConfig;
    use ssdkeeper::label::EvalConfig;

    fn tiny_dataset() -> LabelledDataset {
        let spec = DatasetSpec {
            samples: 12,
            requests_per_sample: 200,
            max_total_iops: 120_000.0,
            lpn_space: 1 << 10,
            label_tolerance: 0.02,
            eval: EvalConfig {
                ssd: SsdConfig {
                    blocks_per_plane: 64,
                    pages_per_block: 32,
                    ..SsdConfig::paper_table1()
                },
                hybrid: false,
                pool: PoolConfig::with_workers(1),
            },
        };
        Learner::new(spec).generate_dataset(3)
    }

    #[test]
    fn trains_all_four_configurations() {
        let d = tiny_dataset();
        let results = run(&d, 4, 1);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.model.history.loss.len(), 4);
            assert_eq!(r.model.history.test_accuracy.len(), 4);
        }
        let names: Vec<_> = results.iter().map(|r| r.choice.name()).collect();
        assert_eq!(
            names,
            vec!["SGD", "SGD-momentum", "Adam-ReLU", "Adam-logistic"]
        );
    }

    #[test]
    fn renders_curves_and_table() {
        let d = tiny_dataset();
        let results = run(&d, 4, 1);
        let curves = render_curves(&results, 2);
        assert!(curves.contains("Figure 4(a)"));
        assert!(curves.contains("Adam-logistic"));
        let t3 = render_table3(&results, &d);
        assert!(t3.contains("Table III"));
        assert!(t3.contains("Training Time(ms)"));
        let b = best(&results, &d);
        assert!(OptimizerChoice::PAPER.contains(&b.choice));
    }
}
