//! Table II — characteristics of the evaluated (synthesized) workloads.
//!
//! Prints the published write/read ratios and request counts next to the
//! ratios measured on our synthesizers, demonstrating the substitution
//! preserves the traced characteristics.

use crate::table::Table;
use workloads::msr::MsrTrace;
use workloads::profile::{profile, TraceProfile};
use workloads::synth::generate_tenant_stream;

/// One Table II row: published vs measured.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// The trace.
    pub trace: MsrTrace,
    /// Measured profile of the synthesized stream.
    pub profile: TraceProfile,
}

/// Synthesizes `sample_requests` requests per trace and measures them.
pub fn run(sample_requests: usize, base_iops: f64, seed: u64) -> Vec<TraceRow> {
    MsrTrace::ALL
        .iter()
        .map(|&trace| {
            let spec = trace.spec(base_iops, 1 << 14);
            let stream = generate_tenant_stream(&spec, 0, sample_requests, seed);
            let profile = profile(&stream, None).expect("non-empty stream");
            TraceRow { trace, profile }
        })
        .collect()
}

/// Renders the comparison table, including the synthesizers' measured
/// access-pattern profiles (burstiness, sequentiality, skew).
pub fn render(rows: &[TraceRow]) -> String {
    let mut t = Table::new(&[
        "Workload",
        "Write Ratio (paper)",
        "Write Ratio (measured)",
        "Request Count (paper)",
        "Relative Intensity",
        "Measured IOPS",
        "Arrival CV2",
        "Sequentiality",
        "Hot-10% Share",
    ]);
    for r in rows {
        t.row(vec![
            r.trace.name().to_string(),
            format!("{:.0}%", r.trace.write_ratio() * 100.0),
            format!("{:.1}%", r.profile.write_ratio * 100.0),
            format!("{}", r.trace.request_count()),
            format!("{:.2}x", r.trace.relative_intensity()),
            format!("{:.0}", r.profile.iops),
            format!("{:.1}", r.profile.interarrival_cv2),
            format!("{:.0}%", r.profile.sequentiality * 100.0),
            format!("{:.0}%", r.profile.hot10_share * 100.0),
        ]);
    }
    format!(
        "Table II: evaluated workloads (paper vs synthesized)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratios_track_published_ones() {
        let rows = run(6_000, 2_000.0, 9);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                (r.profile.write_ratio - r.trace.write_ratio()).abs() < 0.03,
                "{}: measured {} vs published {}",
                r.trace.name(),
                r.profile.write_ratio,
                r.trace.write_ratio()
            );
        }
        // Pattern flavours: read-heavy traces are sequential, write-heavy
        // ones are skewed.
        let get = |name: &str| rows.iter().find(|r| r.trace.name() == name).unwrap();
        assert!(get("web_2").profile.sequentiality > 0.5);
        assert!(get("prxy_0").profile.hot10_share > 0.4);
    }

    #[test]
    fn render_includes_all_traces() {
        let rows = run(500, 2_000.0, 9);
        let s = render(&rows);
        for t in MsrTrace::ALL {
            assert!(s.contains(t.name()));
        }
    }
}
