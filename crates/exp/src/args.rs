//! A tiny `--flag value` argument parser (no external CLI dependency),
//! plus the flag surface every `exp` binary shares.

use flash_sim::BackendKind;
use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit token stream. `--key value` pairs become flags;
    /// a `--key` followed by another `--...` (or end of input) becomes a
    /// boolean switch.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Self {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                let next = tokens.get(i + 1);
                match next {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(key.to_string(), v.clone());
                        i += 2;
                    }
                    _ => {
                        switches.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                i += 1; // ignore stray positionals
            }
        }
        Self { flags, switches }
    }

    /// A `--key value` flag parsed as `T`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.flags.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                panic!(
                    "--{key} expects a {}, got `{v}`",
                    std::any::type_name::<T>()
                )
            }),
        }
    }

    /// A string flag, or `default` when absent.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A string flag if present.
    pub fn get_opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean `--switch` was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key) || self.flags.contains_key(key)
    }

    /// Parses the flag surface shared by every `exp` binary:
    /// `--seed N`, `--json`, and `--backend {sim,file:<path>}`.
    /// A malformed `--backend` exits with a readable message rather
    /// than a panic backtrace.
    pub fn common(&self, default_seed: u64) -> CommonArgs {
        let backend = match self.get_opt("backend") {
            None => BackendKind::Sim,
            Some(v) => v.parse().unwrap_or_else(|e: String| {
                eprintln!("--backend: {e}");
                std::process::exit(2);
            }),
        };
        CommonArgs {
            seed: self.get("seed", default_seed),
            json: self.has("json"),
            backend,
        }
    }
}

/// The common `--seed` / `--json` / `--backend` surface, parsed once by
/// [`Args::common`] so backend selection routes through `RunSpec`/
/// `SimBuilder` instead of per-binary plumbing.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// `--seed N` (binary-specific default).
    pub seed: u64,
    /// `--json` switch.
    pub json: bool,
    /// `--backend sim` (default) or `--backend file:<path>`.
    pub backend: BackendKind,
}

impl CommonArgs {
    /// Exits with a readable message when a binary whose scenario only
    /// makes sense on simulated timing was asked for another backend.
    pub fn require_sim(&self, bin: &str) {
        if self.backend != BackendKind::Sim {
            eprintln!(
                "{bin}: only --backend sim is supported (got {})",
                self.backend
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse("--samples 500 --out foo.txt");
        assert_eq!(a.get("samples", 0usize), 500);
        assert_eq!(a.get_str("out", "x"), "foo.txt");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("");
        assert_eq!(a.get("samples", 7usize), 7);
        assert_eq!(a.get_str("out", "d"), "d");
        assert!(a.get_opt("out").is_none());
    }

    #[test]
    fn switches_are_detected() {
        let a = parse("--quick --samples 3");
        assert!(a.has("quick"));
        assert!(a.has("samples"));
        assert!(!a.has("slow"));
    }

    #[test]
    fn trailing_switch() {
        let a = parse("--samples 3 --verbose");
        assert!(a.has("verbose"));
        assert_eq!(a.get("samples", 0usize), 3);
    }

    #[test]
    #[should_panic(expected = "--samples expects")]
    fn bad_value_panics() {
        let a = parse("--samples banana");
        let _ = a.get("samples", 0usize);
    }

    #[test]
    fn stray_positionals_ignored() {
        let a = parse("stray --k v");
        assert_eq!(a.get_str("k", ""), "v");
    }

    #[test]
    fn common_surface_defaults() {
        let c = parse("").common(42);
        assert_eq!(c.seed, 42);
        assert!(!c.json);
        assert_eq!(c.backend, BackendKind::Sim);
    }

    #[test]
    fn common_surface_parses_all_three() {
        let c = parse("--seed 7 --json --backend file:/tmp/r.img").common(42);
        assert_eq!(c.seed, 7);
        assert!(c.json);
        assert_eq!(
            c.backend,
            BackendKind::File {
                path: "/tmp/r.img".into()
            }
        );
    }
}
