//! Conflict analysis (§III, quantified).
//!
//! The paper argues access conflicts — requests blocked behind other
//! tenants' commands at chips and channels — are what channel allocation
//! removes. The simulator's per-phase breakdown measures exactly that:
//! for each strategy, the fraction of command time spent *waiting* at the
//! execution unit or the bus, split by class, plus GC interference.

use crate::table::{f2, Table};
use flash_sim::SsdConfig;
use parallel::PoolConfig;
use ssdkeeper::label::{run_under_strategy, EvalConfig};
use ssdkeeper::Strategy;
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// Conflict metrics for one strategy.
#[derive(Debug, Clone)]
pub struct ConflictRow {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Read conflict fraction (waiting share of read command time).
    pub read_conflict: f64,
    /// Write conflict fraction.
    pub write_conflict: f64,
    /// Mean read wait (µs/command).
    pub read_wait_us: f64,
    /// Mean write wait (µs/command).
    pub write_wait_us: f64,
    /// Highest/lowest bus utilization ratio.
    pub bus_imbalance: f64,
    /// Total-latency metric (for reference).
    pub total_us: f64,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct ConflictConfig {
    /// Requests in the two-tenant mix.
    pub requests: usize,
    /// Combined arrival rate.
    pub total_iops: f64,
    /// Write proportion (0–1) of the mix.
    pub write_fraction: f64,
    /// Device model.
    pub ssd: SsdConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        Self {
            requests: 20_000,
            total_iops: 70_000.0,
            write_fraction: 0.3,
            ssd: SsdConfig::scaled_for_sweeps(),
            seed: 33,
        }
    }
}

/// Measures every two-tenant strategy on a writer/reader mix.
pub fn run(cfg: &ConflictConfig) -> Vec<ConflictRow> {
    let lpn_space = 1u64 << 12;
    let p = cfg.write_fraction.clamp(0.01, 0.99);
    let writer = TenantSpec::synthetic("writer", 1.0, cfg.total_iops * p, lpn_space);
    let reader = TenantSpec::synthetic("reader", 0.0, cfg.total_iops * (1.0 - p), lpn_space);
    let n_w = ((cfg.requests as f64) * p) as usize;
    let w = generate_tenant_stream(&writer, 0, n_w.max(1), cfg.seed);
    let r = generate_tenant_stream(&reader, 1, (cfg.requests - n_w).max(1), cfg.seed + 1);
    let trace = mix_chronological(&[w, r], cfg.requests);

    let eval = EvalConfig {
        ssd: cfg.ssd.clone(),
        hybrid: false,
        pool: PoolConfig::auto(),
    };
    Strategy::all_for_tenants(2)
        .into_iter()
        .map(|strategy| {
            let report =
                run_under_strategy(&trace, strategy, &[0, 1], &[lpn_space, lpn_space], &eval)
                    .expect("conflict sweep fits the device");
            ConflictRow {
                strategy,
                read_conflict: report.read_breakdown.conflict_fraction(),
                write_conflict: report.write_breakdown.conflict_fraction(),
                read_wait_us: report.read_breakdown.mean_wait_us(),
                write_wait_us: report.write_breakdown.mean_wait_us(),
                bus_imbalance: report.bus_imbalance(),
                total_us: report.total_latency_metric_us(),
            }
        })
        .collect()
}

/// Renders the conflict table.
pub fn render(rows: &[ConflictRow], cfg: &ConflictConfig) -> String {
    let mut t = Table::new(&[
        "strategy",
        "read conflict",
        "write conflict",
        "read wait us",
        "write wait us",
        "bus imbalance",
        "total us",
    ]);
    for r in rows {
        t.row(vec![
            r.strategy.to_string(),
            format!("{:.1}%", r.read_conflict * 100.0),
            format!("{:.1}%", r.write_conflict * 100.0),
            f2(r.read_wait_us),
            f2(r.write_wait_us),
            if r.bus_imbalance.is_finite() {
                f2(r.bus_imbalance)
            } else {
                "inf".to_string()
            },
            f2(r.total_us),
        ]);
    }
    format!(
        "Conflict analysis: waiting share of command time, 2 tenants at {:.0}% writes, {:.0} IOPS\n{}",
        cfg.write_fraction * 100.0,
        cfg.total_iops,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ConflictConfig {
        ConflictConfig {
            requests: 1_500,
            total_iops: 70_000.0,
            write_fraction: 0.3,
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            seed: 5,
        }
    }

    #[test]
    fn produces_a_row_per_strategy_with_sane_fractions() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.read_conflict), "{}", r.strategy);
            assert!((0.0..=1.0).contains(&r.write_conflict));
            assert!(r.total_us > 0.0);
        }
    }

    #[test]
    fn under_provisioned_splits_show_more_conflict() {
        let rows = run(&tiny());
        let find = |s: Strategy| rows.iter().find(|r| r.strategy == s).unwrap();
        // At 30% writes, 1:7 squeezes the writer onto one channel: its
        // write conflict share must exceed Shared's.
        let squeezed = find(Strategy::TwoPart { write_channels: 1 });
        let shared = find(Strategy::Shared);
        assert!(
            squeezed.write_conflict > shared.write_conflict,
            "1:7 write conflict {:.3} vs shared {:.3}",
            squeezed.write_conflict,
            shared.write_conflict
        );
    }

    #[test]
    fn render_contains_all_strategies() {
        let cfg = tiny();
        let rows = run(&cfg);
        let s = render(&rows, &cfg);
        assert!(s.contains("Shared") && s.contains("1:7") && s.contains("conflict"));
    }
}
