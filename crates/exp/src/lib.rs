//! `exp` — the experiment harness.
//!
//! One module per paper artefact, each exposing a `run(...)` entry point
//! used both by the per-figure binaries (`fig2`, `fig4`, `fig5`, `fig6`,
//! `dataset`, `traces`) and by the `run_all` orchestrator. The modules
//! print the same rows/series the paper reports and return the raw
//! numbers so tests can assert on shapes.

pub mod args;
pub mod conflict;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod session;
pub mod table;
pub mod traces;

/// Default directory for datasets and models produced by the harness.
pub const ARTIFACT_DIR: &str = "artifacts";

/// Ensures the artifact directory exists and returns the path of `name`
/// inside it.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(ARTIFACT_DIR);
    std::fs::create_dir_all(dir).expect("create artifacts dir");
    dir.join(name)
}
