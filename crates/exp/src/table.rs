//! Aligned plain-text tables for experiment output.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
    }
}
