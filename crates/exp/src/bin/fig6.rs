//! Regenerates Figure 6: the map of chosen strategies over the
//! (intensity level, total write proportion) plane.
//!
//! ```text
//! cargo run --release -p exp --bin fig6 [--model artifacts/model.txt --max-iops 120000] \
//!     [--samples 400] [--per-level 200]
//! ```

use exp::args::Args;
use exp::fig6::{distinct_strategies, render, run};
use ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper::ChannelAllocator;

fn main() {
    let args = Args::from_env();
    let per_level = args.get("per-level", 200usize);

    let allocator = match args.get_opt("model") {
        Some(path) => match ssdkeeper::model_io::load_allocator(path) {
            Ok(allocator) => allocator,
            Err(_) => {
                // Legacy raw ann file: calibration comes from --max-iops.
                let net = ann::io::load_network(path).expect("load model file");
                ChannelAllocator::new(net, args.get("max-iops", 120_000.0f64))
            }
        },
        None => {
            let mut spec = DatasetSpec::quick(args.get("samples", 400));
            if args.has("quick") {
                spec.samples = spec.samples.min(64);
                spec.requests_per_sample = 1_000;
            }
            eprintln!(
                "fig6: no --model given; labelling {} workloads and training Adam-logistic...",
                spec.samples
            );
            let learner = Learner::new(spec);
            let dataset = learner.generate_dataset(args.get("seed", 1u64));
            let model = learner.train_with(
                &dataset,
                OptimizerChoice::AdamLogistic,
                args.get("epochs", 200usize),
                1,
            );
            eprintln!(
                "trained: final test accuracy {:.1}%",
                model.history.final_accuracy() * 100.0
            );
            model.allocator()
        }
    };

    let map = run(&allocator, per_level, args.get("seed", 6u64));
    println!("{}", render(&map));
    println!(
        "distinct strategies on the map: {} (the paper's point: no single strategy fits all patterns)",
        distinct_strategies(&map)
    );
}
