//! Regenerates Tables IV/V and Figure 5: the Mix1–Mix4 evaluation with
//! Shared / Isolated / SSDKeeper (± hybrid page allocation), plus the
//! §V-C improvement summary.
//!
//! ```text
//! cargo run --release -p exp --bin fig5 [--model artifacts/model.txt --max-iops 120000] \
//!     [--samples 400] [--requests 100000] [--epochs 200]
//! ```
//!
//! Without `--model`, a model is trained first (Adam-logistic, the
//! paper's best configuration).

use exp::args::Args;
use exp::fig5::{render_fig5, render_summary, render_tables45, run, Fig5Config};
use ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper::ChannelAllocator;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig5Config::default();
    cfg.requests = args.get("requests", cfg.requests);
    cfg.max_total_iops = args.get("max-iops", cfg.max_total_iops);
    cfg.seed = args.get("seed", cfg.seed);
    if args.has("quick") {
        cfg.requests = cfg.requests.min(10_000);
    }

    let allocator = match args.get_opt("model") {
        Some(path) => match ssdkeeper::model_io::load_allocator(path) {
            Ok(allocator) => allocator,
            Err(_) => {
                // Legacy raw ann file: calibration comes from --max-iops.
                let net = ann::io::load_network(path).expect("load model file");
                ChannelAllocator::new(net, args.get("max-iops", 120_000.0f64))
            }
        },
        None => {
            let mut spec = DatasetSpec::quick(args.get("samples", 400));
            if args.has("quick") {
                spec.samples = spec.samples.min(64);
                spec.requests_per_sample = 1_000;
            }
            let epochs = args.get("epochs", 200usize);
            eprintln!(
                "fig5: no --model given; labelling {} workloads and training Adam-logistic for {} iterations...",
                spec.samples, epochs
            );
            let learner = Learner::new(spec);
            let dataset = learner.generate_dataset(args.get("seed", 1u64));
            let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, epochs, 1);
            eprintln!(
                "trained: final test accuracy {:.1}%",
                model.history.final_accuracy() * 100.0
            );
            model.allocator()
        }
    };

    eprintln!("fig5: running Mix1-4 x {{Shared, Isolated, SSDKeeper, SSDKeeper+hybrid}} at {} requests each...", cfg.requests);
    let results = run(&cfg, &allocator);
    println!("{}", render_tables45(&results));
    println!("{}", render_fig5(&results));
    println!("{}", render_summary(&results));
}
