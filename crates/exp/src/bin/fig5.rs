//! Regenerates Tables IV/V and Figure 5: the Mix1–Mix4 evaluation with
//! Shared / Isolated / SSDKeeper (± hybrid page allocation), plus the
//! §V-C improvement summary.
//!
//! ```text
//! cargo run --release -p exp --bin fig5 [--model artifacts/model.txt --max-iops 120000] \
//!     [--samples 400] [--requests 100000] [--epochs 200] [--trace-out events.ssdp]
//! ```
//!
//! Without `--model`, a model is trained first (Adam-logistic, the
//! paper's best configuration). With `--trace-out <path>`, the Mix1
//! adapt-once session is re-run with an [`EventRecorder`] attached and
//! the captured events (command lifecycle, bus occupancy, GC passes,
//! reallocation, the keeper decision) are written to `path` in the SSDP
//! little-endian codec (`ssdkeeper::obs::decode_events` reads it back).
//! The tables always run on simulated timing; `--backend file:<path>`
//! switches the `--trace-out` session to real-I/O replay, so the capture
//! carries measured latencies instead of modeled ones.

use exp::args::Args;
use exp::fig5::{
    build_mix, render_fig5, render_percentiles, render_summary, render_tables45, run, Fig5Config,
};
use flash_sim::BackendKind;
use ssdkeeper::keeper::{Keeper, KeeperConfig};
use ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper::obs::{EventRecorder, RunSpec};
use ssdkeeper::ChannelAllocator;
use workloads::msr::paper_mix_profiles;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig5Config::default();
    let common = args.common(cfg.seed);
    cfg.requests = args.get("requests", cfg.requests);
    cfg.max_total_iops = args.get("max-iops", cfg.max_total_iops);
    cfg.seed = common.seed;
    if args.has("quick") {
        cfg.requests = cfg.requests.min(10_000);
    }

    let allocator = match args.get_opt("model") {
        Some(path) => match ssdkeeper::model_io::load_allocator(path) {
            Ok(allocator) => allocator,
            Err(_) => {
                // Legacy raw ann file: calibration comes from --max-iops.
                let net = ann::io::load_network(path).expect("load model file");
                ChannelAllocator::new(net, args.get("max-iops", 120_000.0f64))
            }
        },
        None => {
            let mut spec = DatasetSpec::quick(args.get("samples", 400));
            if args.has("quick") {
                spec.samples = spec.samples.min(64);
                spec.requests_per_sample = 1_000;
            }
            let epochs = args.get("epochs", 200usize);
            eprintln!(
                "fig5: no --model given; labelling {} workloads and training Adam-logistic for {} iterations...",
                spec.samples, epochs
            );
            let learner = Learner::new(spec);
            let dataset = learner.generate_dataset(args.get("seed", 1u64));
            let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, epochs, 1);
            eprintln!(
                "trained: final test accuracy {:.1}%",
                model.history.final_accuracy() * 100.0
            );
            model.allocator()
        }
    };

    eprintln!("fig5: running Mix1-4 x {{Shared, Isolated, SSDKeeper, SSDKeeper+hybrid}} at {} requests each...", cfg.requests);
    let results = run(&cfg, &allocator);
    println!("{}", render_tables45(&results));
    println!("{}", render_fig5(&results));
    println!("{}", render_percentiles(&results));
    println!("{}", render_summary(&results));

    if let Some(path) = args.get_opt("trace-out") {
        write_trace(path, &cfg, &allocator, common.backend);
    }
}

/// Re-runs the Mix1 adapt-once session with a bounded recorder attached
/// and persists the captured events at `path` in the SSDP codec. The
/// session executes on `backend` — `file:<path>` captures measured
/// wall-clock latencies through the same recorder.
fn write_trace(path: &str, cfg: &Fig5Config, allocator: &ChannelAllocator, backend: BackendKind) {
    let [profile, ..] = paper_mix_profiles();
    let trace = build_mix(&profile, cfg);
    let keeper = Keeper::new(
        KeeperConfig {
            ssd: cfg.ssd.clone(),
            observe_window_ns: cfg.observe_window_ns,
            hybrid: false,
        },
        allocator.clone(),
    );
    let mut rec = EventRecorder::with_capacity(1 << 16);
    keeper
        .run(
            RunSpec::adapt_once(&trace, &[cfg.lpn_space; 4])
                .with_probe(&mut rec)
                .with_backend(backend),
        )
        .expect("instrumented Mix1 run");
    let bytes = rec.encode();
    std::fs::write(path, &bytes).expect("write --trace-out file");
    eprintln!(
        "fig5: wrote {} events ({} dropped, {} bytes) to {path}",
        rec.len(),
        rec.dropped(),
        bytes.len()
    );
}
