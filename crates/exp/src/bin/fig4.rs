//! Regenerates Figure 4 (loss/accuracy curves) and Table III (final
//! loss, accuracy, training time) across the four optimizer
//! configurations, and saves the best model.
//!
//! ```text
//! cargo run --release -p exp --bin fig4 [--dataset artifacts/dataset.txt] \
//!     [--samples 400] [--epochs 200] [--model-out artifacts/model.txt]
//! ```
//!
//! Without `--dataset`, a dataset of `--samples` workloads is generated
//! on the fly.

use exp::args::Args;
use exp::{artifact_path, fig4};
use ssdkeeper::learner::{DatasetSpec, LabelledDataset, Learner};

fn main() {
    let args = Args::from_env();
    let epochs = args.get("epochs", 200usize);
    let seed = args.get("seed", 1u64);

    let dataset = match args.get_opt("dataset") {
        Some(path) => {
            let text = std::fs::read_to_string(path).expect("read dataset file");
            LabelledDataset::from_text(&text).expect("parse dataset file")
        }
        None => {
            let mut spec = DatasetSpec::quick(args.get("samples", 400));
            if args.has("quick") {
                spec.samples = spec.samples.min(64);
                spec.requests_per_sample = 1_000;
            }
            eprintln!(
                "fig4: no --dataset given; labelling {} workloads first...",
                spec.samples
            );
            Learner::new(spec).generate_dataset(seed)
        }
    };
    eprintln!(
        "fig4: training 4 optimizer configurations for {epochs} iterations on {} samples (7:3 split)...",
        dataset.samples.len()
    );

    let results = fig4::run(&dataset, epochs, seed);
    println!("{}", fig4::render_curves(&results, (epochs / 10).max(1)));
    println!("{}", fig4::render_table3(&results, &dataset));

    let best = fig4::best(&results, &dataset);
    println!(
        "best configuration: {} at {:.1}% test accuracy (paper: Adam-logistic, 94.5%)",
        best.choice.name(),
        best.model.history.final_accuracy() * 100.0
    );

    let model_out = args.get_str("model-out", artifact_path("model.txt").to_str().unwrap());
    ssdkeeper::model_io::save_model(&best.model, &model_out).expect("save model");
    println!(
        "saved best model to {model_out} (max_total_iops calibration: {})",
        best.model.max_total_iops
    );
}
