//! `fleet` — runs the fleet-scale sharded scenario: M device shards
//! under a two-tier keeper (fleet placement above per-device channel
//! allocation), fanned out over worker threads.
//!
//! The default shape is the tracked `fleet_1k` scenario (1000 tenants /
//! 64 devices). The printed `fleet digest` line is a pure function of
//! the scenario parameters — never of `--workers` — and is what the
//! verify gate compares across worker counts.
//!
//! ```text
//! cargo run --release -p exp --bin fleet -- --tenants 1000 --devices 64
//! cargo run --release -p exp --bin fleet -- --smoke --workers 1
//! ```
//!
//! Flags: `--seed N`, `--tenants N`, `--devices N`, `--requests N`
//! (per tenant), `--workers N` (0 = auto), `--replacements N`,
//! `--threshold X`, `--smoke` (small preset), `--json` (merged summary
//! as ssdtrace JSON), `--timeline` (write the shard-tagged timeline CSV
//! to artifacts/), `--telemetry PATH|stderr` (stream live NDJSON
//! counter snapshots for `ssdtrace live`), `--spans PATH` (write folded
//! host spans for `ssdtrace flame`; both need `--features host-trace`).
//!
//! Under `--json`, stdout carries *only* the JSON document — the digest,
//! timeline, and telemetry status lines move to stderr.

use exp::args::Args;
use exp::artifact_path;
use exp::session::ObsSession;
use fleet::{run_fleet, FleetConfig};
use parallel::PoolConfig;

fn main() {
    let args = Args::from_env();
    let common = args.common(42);
    common.require_sim("fleet");
    let seed = common.seed;
    let mut cfg = if args.has("smoke") {
        FleetConfig::smoke(seed)
    } else {
        FleetConfig::scenario_1k(seed)
    };
    cfg.tenants = args.get("tenants", cfg.tenants);
    cfg.devices = args.get("devices", cfg.devices);
    cfg.requests_per_tenant = args.get("requests", cfg.requests_per_tenant);
    cfg.max_replacements = args.get("replacements", cfg.max_replacements);
    cfg.tail_threshold = args.get("threshold", cfg.tail_threshold);
    let workers = args.get("workers", 0usize);
    if workers > 0 {
        cfg.pool = PoolConfig::with_workers(workers);
    }

    let session = ObsSession::start(&args);
    obs::gauge_set!("fleet.shards_total", cfg.devices as i64);
    obs::gauge_set!("fleet.tenants_total", cfg.tenants as i64);

    let started = std::time::Instant::now();
    let outcome = match run_fleet(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };
    let wall = started.elapsed();
    session.finish();

    if common.json {
        println!("{}", trace_tools::render_json(&outcome.summary.merged, 0));
    } else {
        let events = outcome.summary.total_events();
        let eps = events as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "fleet: {} tenants on {} devices, {} workers",
            cfg.tenants,
            cfg.devices,
            cfg.pool.worker_count()
        );
        println!(
            "  events {events}  wall {:.2}s  ({:.0} events/s)",
            wall.as_secs_f64(),
            eps
        );
        println!(
            "  makespan {:.1} ms (simulated)",
            outcome.summary.makespan_ns() as f64 / 1e6
        );
        for r in &outcome.replacements {
            println!(
                "  re-placed tenant {} from device {} to {} (round {})",
                r.tenant, r.from, r.to, r.round
            );
        }
        let strategies: Vec<String> = outcome
            .summary
            .shards
            .iter()
            .map(|s| format!("{:?}", s.strategy))
            .collect();
        let mut counts = std::collections::BTreeMap::new();
        for s in &strategies {
            *counts.entry(s.clone()).or_insert(0usize) += 1;
        }
        let tally: Vec<String> = counts.iter().map(|(s, n)| format!("{s}×{n}")).collect();
        println!("  strategies: {}", tally.join(" "));
    }

    if args.has("timeline") {
        let path = artifact_path("fleet_timeline.csv");
        std::fs::write(&path, outcome.summary.tagged_timeline_csv()).expect("write timeline csv");
        // Status line, not a result: keep it off stdout so `--json`
        // output stays machine-parseable.
        eprintln!("  timeline -> {}", path.display());
    }

    // Stable, parseable determinism handle (compared by verify.sh,
    // which greps stdout in the human mode; under --json it moves to
    // stderr so stdout is exactly one JSON document).
    let digest = format!("fleet digest: 0x{:016x}", outcome.summary.digest());
    if common.json {
        eprintln!("{digest}");
    } else {
        println!("{digest}");
    }
}
