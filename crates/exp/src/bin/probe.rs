//! Diagnostic: for each paper mix, sweep all 42 strategies with the label
//! generator and print the top-5 and Shared's rank — shows what the
//! simulator's ground-truth optimum is, independent of the model.
//!
//! ```text
//! cargo run --release -p exp --bin probe [--requests 20000]
//! ```

use exp::args::Args;
use exp::fig5::{build_mix, Fig5Config};
use ssdkeeper::label::{evaluate_all, EvalConfig};
use ssdkeeper::Strategy;
use workloads::msr::paper_mix_profiles;

fn main() {
    let args = Args::from_env();
    let cfg = Fig5Config {
        requests: args.get("requests", 20_000),
        ..Fig5Config::default()
    };
    let eval = EvalConfig::default();

    for profile in paper_mix_profiles() {
        let trace = build_mix(&profile, &cfg);
        let mut evals = evaluate_all(&trace, 4, &[cfg.lpn_space; 4], &eval).unwrap();
        evals.sort_by(|a, b| a.metric_us.partial_cmp(&b.metric_us).unwrap());
        let shared_rank = evals
            .iter()
            .position(|e| e.strategy == Strategy::Shared)
            .unwrap();
        let shared = &evals[shared_rank];
        println!(
            "{} (level {}): shared rank {}/42 at {:.1}us",
            profile.name,
            profile.intensity_level,
            shared_rank + 1,
            shared.metric_us
        );
        for e in evals.iter().take(5) {
            println!(
                "    {:<10} total {:>9.1}us  (read {:>8.1}, write {:>8.1})  vs shared {:+.1}%",
                e.strategy.to_string(),
                e.metric_us,
                e.read_us,
                e.write_us,
                (1.0 - e.metric_us / shared.metric_us) * 100.0
            );
        }
    }
}
