//! Prints Table II: published trace characteristics next to the measured
//! characteristics of our MSR-like synthesizers.
//!
//! ```text
//! cargo run --release -p exp --bin traces [--requests 20000]
//! ```

use exp::args::Args;
use exp::traces::{render, run};

fn main() {
    let args = Args::from_env();
    let common = args.common(2);
    common.require_sim("traces");
    let rows = run(
        args.get("requests", 20_000usize),
        args.get("base-iops", 2_000.0f64),
        common.seed,
    );
    println!("{}", render(&rows));
}
