//! `replay` — runs one four-tenant mix through BOTH execution backends
//! (simulated timing, then real I/O against a file) under the same
//! adapt-once keeper session, writes an SSDP v2 capture per backend,
//! and prints the two latency distributions side by side.
//!
//! This is the validation loop SimpleSSD/EagleTree argue a simulator
//! needs: the same workload, the same policy engine, the same probe
//! stream — one run with modeled time, one with measured time — and
//! `ssdtrace diff` comparing the summaries.
//!
//! ```text
//! cargo run --release -p exp --bin replay -- --smoke
//! cargo run --release -p exp --bin replay -- --backend file:/dev/nvme0n1 --requests 50000
//! ```
//!
//! Flags: `--seed N`, `--requests N`, `--json`, `--smoke` (small
//! preset), `--backend file:<path>` (replay target; without it the
//! target comes from `SSDKEEPER_REPLAY_PATH` or a tmpfile that is
//! removed on exit), `--capture-sim <path>` / `--capture-file <path>`
//! (SSDP capture outputs, default under `artifacts/`), `--keep`
//! (keep an auto-created tmpfile target).
//!
//! Exit codes: 0 success, 2 any failure.

use exp::args::Args;
use exp::artifact_path;
use exp::session::ObsSession;
use flash_sim::{BackendKind, EventRecorder, SimReport, SsdConfig};
use ssdkeeper::keeper::{Keeper, KeeperConfig, RunOutcome, RunSpec};
use ssdkeeper::ChannelAllocator;
use std::path::PathBuf;
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// Per-tenant logical space: 1024 pages × 16 KiB × 4 tenants = 64 MiB
/// replay target, small enough for a tmpfile smoke run.
const LPN_SPACE: u64 = 1 << 10;

fn fail(msg: &str) -> ! {
    eprintln!("replay: {msg}");
    std::process::exit(2);
}

/// The keeper-test style mix: two read-dominant and two write-dominant
/// tenants at staggered intensities, deterministic in `seed`.
fn build_trace(requests: usize, seed: u64) -> Vec<flash_sim::IoRequest> {
    let specs = [
        TenantSpec::synthetic("a", 0.9, 8_000.0, LPN_SPACE),
        TenantSpec::synthetic("b", 0.1, 12_000.0, LPN_SPACE),
        TenantSpec::synthetic("c", 0.85, 4_000.0, LPN_SPACE),
        TenantSpec::synthetic("d", 0.05, 6_000.0, LPN_SPACE),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, requests / 4, seed + t as u64))
        .collect();
    mix_chronological(&streams, requests)
}

fn run_backend(
    keeper: &Keeper,
    trace: &[flash_sim::IoRequest],
    backend: BackendKind,
    capture_path: &std::path::Path,
) -> RunOutcome {
    let mut rec = EventRecorder::with_capacity(1 << 16);
    let out = keeper
        .run(
            RunSpec::adapt_once(trace, &[LPN_SPACE; 4])
                .with_probe(&mut rec)
                .with_metrics()
                .with_backend(backend.clone()),
        )
        .unwrap_or_else(|e| fail(&format!("{backend} run failed: {e}")));
    std::fs::write(capture_path, rec.encode())
        .unwrap_or_else(|e| fail(&format!("write capture {}: {e}", capture_path.display())));
    out
}

fn tenant_row(report: &SimReport, t: usize) -> (f64, u64, u64) {
    let all = report.tenants[t].combined();
    (
        all.mean_us(),
        all.percentile_ns(0.5),
        all.percentile_ns(0.99),
    )
}

fn main() {
    let args = Args::from_env();
    let common = args.common(11);
    let session = ObsSession::start(&args);
    let requests = if args.has("smoke") {
        args.get("requests", 2_000usize)
    } else {
        args.get("requests", 20_000usize)
    };

    // Resolve the replay target: --backend file:<path> wins, then
    // SSDKEEPER_REPLAY_PATH, then an auto-removed tmpfile.
    let (target, auto_target) = match &common.backend {
        BackendKind::File { path } => (path.clone(), false),
        BackendKind::Sim => match std::env::var("SSDKEEPER_REPLAY_PATH") {
            Ok(p) if !p.is_empty() => (PathBuf::from(p), false),
            _ => (
                std::env::temp_dir().join(format!("ssdkeeper-replay-{}.img", std::process::id())),
                true,
            ),
        },
    };

    let cfg = KeeperConfig {
        ssd: SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 32,
            ..SsdConfig::paper_table1()
        },
        observe_window_ns: 10_000_000,
        hybrid: true,
    };
    let keeper = Keeper::new(
        cfg,
        ChannelAllocator::new(
            ann::Network::paper_topology(ann::Activation::Logistic, common.seed),
            120_000.0,
        ),
    );
    let trace = build_trace(requests, common.seed);

    let sim_capture = args
        .get_opt("capture-sim")
        .map(PathBuf::from)
        .unwrap_or_else(|| artifact_path("replay_sim.ssdp"));
    let file_capture = args
        .get_opt("capture-file")
        .map(PathBuf::from)
        .unwrap_or_else(|| artifact_path("replay_file.ssdp"));

    let sim_out = run_backend(&keeper, &trace, BackendKind::Sim, &sim_capture);
    let file_backend = BackendKind::File {
        path: target.clone(),
    };
    let file_out = run_backend(&keeper, &trace, file_backend, &file_capture);
    if auto_target && !args.has("keep") {
        let _ = std::fs::remove_file(&target);
    }
    session.finish();

    let engine = if flash_sim::backend::io_uring_available() {
        "io_uring"
    } else {
        "pread"
    };
    if common.json {
        let mut rows = String::new();
        for t in 0..4 {
            let (sm, sp50, sp99) = tenant_row(&sim_out.report, t);
            let (fm, fp50, fp99) = tenant_row(&file_out.report, t);
            rows.push_str(&format!(
                "{}{{\"tenant\":{t},\"sim\":{{\"mean_us\":{sm:.3},\"p50_ns\":{sp50},\"p99_ns\":{sp99}}},\
                 \"file\":{{\"mean_us\":{fm:.3},\"p50_ns\":{fp50},\"p99_ns\":{fp99}}}}}",
                if t == 0 { "" } else { "," }
            ));
        }
        println!(
            "{{\"requests\":{requests},\"seed\":{},\"engine\":\"{engine}\",\"target\":\"{}\",\
             \"strategy\":\"{}\",\"tenants\":[{rows}]}}",
            common.seed,
            target.display(),
            sim_out.strategy,
        );
    } else {
        println!(
            "replay: {requests} requests, seed {}, target {} ({engine})",
            common.seed,
            target.display()
        );
        println!(
            "  strategy: sim={} file={} (same decision on both backends)",
            sim_out.strategy, file_out.strategy
        );
        println!("  tenant        sim mean       p50       p99  |  file mean       p50       p99");
        for t in 0..4 {
            let (sm, sp50, sp99) = tenant_row(&sim_out.report, t);
            let (fm, fp50, fp99) = tenant_row(&file_out.report, t);
            println!(
                "  {t:>6}  {sm:>11.1}us {sp50:>8}ns {sp99:>8}ns  | {fm:>9.1}us {fp50:>8}ns {fp99:>8}ns"
            );
        }
        println!(
            "  captures: {} (modeled) vs {} (measured)",
            sim_capture.display(),
            file_capture.display()
        );
        println!("  compare: ssdtrace diff <(summarize --json) of the two captures");
    }

    // The decision layer is backend-agnostic: both runs observed the
    // same trace prefix, so they must pick the same strategy.
    if sim_out.strategy != file_out.strategy {
        fail("backends disagreed on the keeper decision");
    }
}
