//! Runs the full reproduction pipeline end-to-end and prints every table
//! and figure: Table II, Figure 2, dataset generation, Figure 4 +
//! Table III, Tables IV/V + Figure 5, and Figure 6.
//!
//! ```text
//! cargo run --release -p exp --bin run_all [--quick] \
//!     [--samples 800] [--epochs 200] [--fig2-requests 20000] [--fig5-requests 100000]
//! ```
//!
//! `--quick` shrinks every knob for a minutes-scale smoke run.

use exp::args::Args;
use exp::{conflict, fig2, fig4, fig5, fig6, traces};
use ssdkeeper::learner::{DatasetSpec, Learner};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let t0 = Instant::now();

    let samples = args.get("samples", if quick { 96 } else { 800 });
    let epochs = args.get("epochs", if quick { 60 } else { 200usize });
    let fig2_requests = args.get("fig2-requests", if quick { 4_000 } else { 20_000 });
    let fig5_requests = args.get("fig5-requests", if quick { 20_000 } else { 100_000 });
    let requests_per_sample = args.get("requests", if quick { 1_200 } else { 2_000 });
    let seed = args.get("seed", 1u64);

    println!("================ Table II ================");
    let rows = traces::run(if quick { 4_000 } else { 20_000 }, 2_000.0, 2);
    println!("{}", traces::render(&rows));

    println!("========== Conflict analysis ============");
    let ccfg = conflict::ConflictConfig {
        requests: if quick { 4_000 } else { 20_000 },
        ..conflict::ConflictConfig::default()
    };
    let crows = conflict::run(&ccfg);
    println!("{}", conflict::render(&crows, &ccfg));

    println!("================ Figure 2 ================");
    let f2cfg = fig2::Fig2Config {
        requests: fig2_requests,
        ..fig2::Fig2Config::default()
    };
    let points = fig2::run(&f2cfg);
    fig2::print_report(&points);

    println!("============ Dataset (Alg. 1) ============");
    let mut spec = DatasetSpec::quick(samples);
    spec.requests_per_sample = requests_per_sample;
    let learner = Learner::new(spec);
    let t = Instant::now();
    let dataset = learner.generate_dataset(seed);
    println!(
        "labelled {} mixed workloads x 42 strategies in {:?}",
        dataset.samples.len(),
        t.elapsed()
    );

    println!("========= Figure 4 + Table III ===========");
    let results = fig4::run(&dataset, epochs, seed);
    println!("{}", fig4::render_curves(&results, (epochs / 10).max(1)));
    println!("{}", fig4::render_table3(&results, &dataset));
    let best = fig4::best(&results, &dataset);
    println!(
        "best: {} at {:.1}% test accuracy (paper: Adam-logistic at 94.5%)\n",
        best.choice.name(),
        best.model.history.final_accuracy() * 100.0
    );

    println!("===== Tables IV/V + Figure 5 (Mix1-4) ====");
    let allocator = best.model.allocator();
    let f5cfg = fig5::Fig5Config {
        requests: fig5_requests,
        ..fig5::Fig5Config::default()
    };
    let mixes = fig5::run(&f5cfg, &allocator);
    println!("{}", fig5::render_tables45(&mixes));
    println!("{}", fig5::render_fig5(&mixes));
    println!("{}", fig5::render_summary(&mixes));

    println!("================ Figure 6 ================");
    let map = fig6::run(&allocator, if quick { 60 } else { 200 }, 6);
    println!("{}", fig6::render(&map));
    println!(
        "distinct strategies on the map: {}\n",
        fig6::distinct_strategies(&map)
    );

    eprintln!("run_all finished in {:?}", t0.elapsed());
}
