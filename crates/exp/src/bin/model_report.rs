//! Decision-quality report for a trained strategy model: regret
//! distribution, accuracy by intensity level, family confusion, and an
//! optional dataset-size ablation ("how much labelled data does
//! SSDKeeper need?").
//!
//! ```text
//! cargo run --release -p exp --bin model_report -- \
//!     --dataset artifacts/dataset.txt --model artifacts/model.txt [--ablation]
//! ```

use exp::args::Args;
use exp::table::Table;
use ssdkeeper::analysis::{accuracy_by_level, family_confusion, regret_summary, Family};
use ssdkeeper::learner::{DatasetSpec, LabelledDataset, Learner, OptimizerChoice};
use ssdkeeper::model_io;

fn main() {
    let args = Args::from_env();
    let dataset_path = args.get_str("dataset", "artifacts/dataset.txt");
    let text = std::fs::read_to_string(&dataset_path).expect("read dataset file");
    let dataset = LabelledDataset::from_text(&text).expect("parse dataset file");
    eprintln!(
        "loaded {} samples from {dataset_path}",
        dataset.samples.len()
    );

    let allocator = match args.get_opt("model") {
        Some(path) => model_io::load_allocator(path).expect("load model file"),
        None => {
            eprintln!("no --model given; training Adam-logistic for 200 iterations...");
            let learner = Learner::new(DatasetSpec::quick(1));
            learner
                .train_with(&dataset, OptimizerChoice::AdamLogistic, 200, 1)
                .allocator()
        }
    };

    println!(
        "note: scores below cover the whole dataset (train + test); Table III's\n\
         effective-accuracy column is the held-out figure.\n"
    );

    // --- Regret distribution. ---
    match regret_summary(&allocator, &dataset) {
        Some(s) => {
            println!("Prediction regret over {} samples:", s.samples);
            println!(
                "  mean {:.2}%  median {:.2}%  p95 {:.2}%  max {:.1}%",
                s.mean * 100.0,
                s.p50 * 100.0,
                s.p95 * 100.0,
                s.max * 100.0
            );
            println!(
                "  within 1%: {:.1}%   within 5%: {:.1}%   within 10%: {:.1}%\n",
                s.within_1pct * 100.0,
                s.within_5pct * 100.0,
                s.within_10pct * 100.0
            );
        }
        None => println!("dataset carries no per-strategy metrics (v1 file); regret unavailable\n"),
    }

    // --- Accuracy by intensity level. ---
    let mut t = Table::new(&["level", "samples", "exact acc", "effective acc (<=5%)"]);
    for (level, n, exact, eff) in accuracy_by_level(&allocator, &dataset, 0.05) {
        t.row(vec![
            format!("{level}"),
            format!("{n}"),
            format!("{:.1}%", exact * 100.0),
            format!("{:.1}%", eff * 100.0),
        ]);
    }
    println!("Accuracy by intensity level:\n{}", t.render());

    // --- Family confusion. ---
    let m = family_confusion(&allocator, &dataset);
    let fams = [Family::Shared, Family::Partitioned2, Family::Partitioned4];
    let mut t = Table::new(&["true \\ predicted", "Shared", "2-part", "4-part"]);
    for f in fams {
        let row = m[f.index()];
        t.row(vec![
            f.name().to_string(),
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
        ]);
    }
    println!("Strategy-family confusion:\n{}", t.render());

    // --- Dataset-size ablation. ---
    if args.has("ablation") {
        println!("Dataset-size ablation (Adam-logistic, 200 iterations):");
        let learner = Learner::new(DatasetSpec::quick(1));
        let mut t = Table::new(&["train samples", "effective acc (<=5%)", "within 1%"]);
        for frac in [0.1f64, 0.25, 0.5, 1.0] {
            let take = ((dataset.samples.len() as f64) * frac) as usize;
            let subset = LabelledDataset {
                samples: dataset.samples[..take.max(10)].to_vec(),
                max_total_iops: dataset.max_total_iops,
            };
            let model = learner.train_with(&subset, OptimizerChoice::AdamLogistic, 200, 7);
            let alloc = model.allocator();
            // Score on the FULL dataset so subsets are comparable.
            let s = regret_summary(&alloc, &dataset).expect("v2 dataset");
            t.row(vec![
                format!("{}", subset.samples.len()),
                format!("{:.1}%", s.within_5pct * 100.0),
                format!("{:.1}%", s.within_1pct * 100.0),
            ]);
        }
        t.print();
    }
}
