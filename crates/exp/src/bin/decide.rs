//! `decide` — exercises the decision-throughput layer end to end: a
//! deterministic corpus of keeper feature vectors pushed through the
//! channel allocator row-at-a-time, batched, and batched on the i16
//! quantized backend.
//!
//! All three paths must agree decision-for-decision (the batched kernel
//! is row-independent and the quantized backend is arg-max equivalent on
//! the feature domain); the binary exits non-zero if they ever diverge,
//! which is what makes it a verify gate and not just a stopwatch. The
//! printed `decide digest` line is a pure function of `--seed` and
//! `--batch` — never of timing or `--passes`.
//!
//! ```text
//! cargo run --release -p exp --bin decide
//! cargo run --release -p exp --bin decide -- --smoke
//! cargo run --release -p exp --bin decide -- --batch 512 --passes 40
//! ```
//!
//! Flags: `--seed N` (network init seed), `--batch N` (feature vectors
//! per batched call), `--passes N` (timed passes over the corpus),
//! `--smoke` (small preset: batch 64, 2 passes).

use exp::args::Args;
use simrng::{Rng, SimRng};
use ssdkeeper::{ChannelAllocator, DecisionScratch, FeatureVector};
use std::time::Instant;

/// A deterministic corpus of realistic keeper feature vectors: mixed
/// intensities, all read/write characters, normalized channel shares.
fn corpus(seed: u64, n: usize) -> Vec<FeatureVector> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xD0C5);
    (0..n)
        .map(|_| {
            let mut shares = [0.0f64; 4];
            let mut total = 0.0;
            for s in shares.iter_mut() {
                *s = rng.gen_range(0.05..1.0);
                total += *s;
            }
            for s in shares.iter_mut() {
                *s /= total;
            }
            FeatureVector {
                intensity_level: rng.gen_range(0u32..20),
                rw_char: [
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                ],
                shares,
            }
        })
        .collect()
}

/// FNV-1a over the decided strategy indices — the determinism handle.
fn digest(decisions: &[ssdkeeper::Strategy]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for d in decisions {
        h ^= d.index(4) as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let args = Args::from_env();
    let common = args.common(3);
    common.require_sim("decide");
    let seed = common.seed;
    let (batch, passes) = if args.has("smoke") {
        (args.get("batch", 64usize), args.get("passes", 2usize))
    } else {
        (args.get("batch", 256usize), args.get("passes", 20usize))
    };

    let allocator = ChannelAllocator::new(
        ann::Network::paper_topology(ann::Activation::Logistic, seed),
        120_000.0,
    );
    let quantized = allocator.quantized();
    let features = corpus(seed, batch);

    // Agreement gate: every path must make the same call on every row.
    let rowwise: Vec<_> = features.iter().map(|f| allocator.predict(f)).collect();
    let batched = allocator.predict_batch(&features);
    let quant = quantized.predict_batch(&features);
    for (i, ((r, b), q)) in rowwise.iter().zip(&batched).zip(&quant).enumerate() {
        if r != b || r != q {
            eprintln!(
                "decide: paths diverged on row {i}: rowwise {r:?}, batched {b:?}, quantized {q:?}"
            );
            std::process::exit(2);
        }
    }

    let decisions = (batch * passes) as u64;
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64().max(1e-9)
    };
    let row_s = time(&mut || {
        for _ in 0..passes {
            for f in &features {
                std::hint::black_box(allocator.predict(f));
            }
        }
    });
    let mut scratch = DecisionScratch::new();
    let mut out = Vec::new();
    let batch_s = time(&mut || {
        for _ in 0..passes {
            allocator.predict_batch_into(&features, &mut scratch, &mut out);
        }
    });
    let quant_s = time(&mut || {
        for _ in 0..passes {
            quantized.predict_batch_into(&features, &mut scratch, &mut out);
        }
    });

    println!("decide: batch {batch}, {passes} passes, {decisions} decisions per path");
    println!("  rowwise   {:>10.0} decisions/s", decisions as f64 / row_s);
    println!(
        "  batched   {:>10.0} decisions/s  ({:.2}x)",
        decisions as f64 / batch_s,
        row_s / batch_s
    );
    println!(
        "  quantized {:>10.0} decisions/s  ({:.2}x)",
        decisions as f64 / quant_s,
        row_s / quant_s
    );
    println!("  agreement: {} rows, all three paths identical", batch);

    // Stable, parseable determinism handle (compared by verify.sh).
    println!("decide digest: 0x{:016x}", digest(&batched));
}
