//! Quantifies §III's access conflicts: waiting share of command time per
//! strategy on a two-tenant mix, from the simulator's phase breakdown.
//!
//! ```text
//! cargo run --release -p exp --bin conflicts [--requests 20000] [--write-pct 30]
//! ```

use exp::args::Args;
use exp::conflict::{render, run, ConflictConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ConflictConfig {
        requests: args.get("requests", 20_000),
        total_iops: args.get("iops", 70_000.0),
        write_fraction: args.get("write-pct", 30.0f64) / 100.0,
        seed: args.get("seed", 33),
        ..ConflictConfig::default()
    };
    let rows = run(&cfg);
    println!("{}", render(&rows, &cfg));
}
