//! Regenerates Figure 2: two-tenant write/read/total latency vs write
//! proportion under all 8 strategies.
//!
//! ```text
//! cargo run --release -p exp --bin fig2 [--requests 20000] [--iops 60000] [--workers N]
//! ```

use exp::args::Args;
use exp::fig2::{print_report, run, Fig2Config};
use parallel::PoolConfig;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig2Config::default();
    cfg.requests = args.get("requests", cfg.requests);
    cfg.total_iops = args.get("iops", cfg.total_iops);
    cfg.seed = args.get("seed", cfg.seed);
    if let Some(w) = args.get_opt("workers") {
        cfg.pool = PoolConfig::with_workers(w.parse().expect("--workers expects a number"));
    }
    if args.has("quick") {
        cfg.requests = cfg.requests.min(5_000);
    }
    eprintln!(
        "fig2: {} requests/point, {:.0} total IOPS, sweeping write proportion 10-90%...",
        cfg.requests, cfg.total_iops
    );
    let points = run(&cfg);
    print_report(&points);
}
