//! Algorithm 1's data collection: generates labelled (features → best
//! strategy) samples by sweeping all 42 strategies per synthetic mixed
//! workload, and writes them to a text file.
//!
//! ```text
//! cargo run --release -p exp --bin dataset [--samples 800] [--requests 2000] \
//!     [--out artifacts/dataset.txt] [--seed 1] [--workers N]
//! ```

use exp::args::Args;
use exp::{artifact_path, table::Table};
use parallel::PoolConfig;
use ssdkeeper::learner::{DatasetSpec, Learner};
use ssdkeeper::Strategy;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let mut spec = DatasetSpec::quick(args.get("samples", 800));
    spec.requests_per_sample = args.get("requests", spec.requests_per_sample);
    if let Some(w) = args.get_opt("workers") {
        spec.eval.pool = PoolConfig::with_workers(w.parse().expect("--workers expects a number"));
    }
    if args.has("quick") {
        spec.samples = spec.samples.min(64);
        spec.requests_per_sample = spec.requests_per_sample.min(1_000);
    }
    let out = args.get_str("out", artifact_path("dataset.txt").to_str().unwrap());
    let seed = args.get("seed", 1u64);

    eprintln!(
        "dataset: labelling {} mixed workloads x 42 strategies x {} requests...",
        spec.samples, spec.requests_per_sample
    );
    let learner = Learner::new(spec);
    let t = Instant::now();
    let dataset = learner.generate_dataset(seed);
    eprintln!(
        "labelled {} samples in {:?}",
        dataset.samples.len(),
        t.elapsed()
    );

    std::fs::write(&out, dataset.to_text()).expect("write dataset file");
    // Status, not a result row: stderr like the other progress lines.
    eprintln!("wrote {} samples to {out}", dataset.samples.len());

    // Label distribution summary (top 12 classes).
    let hist = dataset.label_histogram();
    let mut by_count: Vec<(usize, usize)> = hist
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .collect();
    by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mut t = Table::new(&["strategy", "label id", "samples"]);
    for (label, n) in by_count.into_iter().take(12) {
        t.row(vec![
            Strategy::from_index(label, 4).unwrap().to_string(),
            label.to_string(),
            n.to_string(),
        ]);
    }
    println!("top labels:\n{}", t.render());
}
