//! Figure 2 — the motivation study.
//!
//! Two tenants (one all-writes, one all-reads) share the 8-channel SSD
//! with a fixed total request count; the write proportion sweeps 10–90 %.
//! Every two-tenant strategy (Shared, Isolated, 7:1 … 1:7) is evaluated,
//! and write / read / total mean response latencies are reported,
//! normalized to `Shared` per column as in the paper's plots.

use crate::table::{f2, Table};
use flash_sim::SsdConfig;
use parallel::PoolConfig;
use ssdkeeper::label::{evaluate_all, EvalConfig, StrategyEval};
use ssdkeeper::Strategy;
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Total requests per experiment point (paper: 2 M).
    pub requests: usize,
    /// Combined arrival rate of both tenants (IOPS).
    pub total_iops: f64,
    /// Logical pages per tenant.
    pub lpn_space: u64,
    /// Device model.
    pub ssd: SsdConfig,
    /// Worker threads for the strategy fan-out.
    pub pool: PoolConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Self {
            requests: 20_000,
            total_iops: 70_000.0,
            lpn_space: 1 << 12,
            ssd: SsdConfig::scaled_for_sweeps(),
            pool: PoolConfig::auto(),
            seed: 2020,
        }
    }
}

/// One sweep point: a write proportion and all strategy evaluations.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Write proportion in percent (10–90).
    pub write_pct: u32,
    /// Evaluations for the 8 two-tenant strategies, in label order.
    pub evals: Vec<StrategyEval>,
}

/// Runs the full sweep and returns one point per write proportion.
pub fn run(cfg: &Fig2Config) -> Vec<Fig2Point> {
    let eval = EvalConfig {
        ssd: cfg.ssd.clone(),
        hybrid: false,
        pool: cfg.pool,
    };
    (1..=9u32)
        .map(|step| {
            let write_pct = step * 10;
            let p = write_pct as f64 / 100.0;
            let writer =
                TenantSpec::synthetic("writer", 1.0, (cfg.total_iops * p).max(1.0), cfg.lpn_space);
            let reader = TenantSpec::synthetic(
                "reader",
                0.0,
                (cfg.total_iops * (1.0 - p)).max(1.0),
                cfg.lpn_space,
            );
            let n_w = ((cfg.requests as f64) * p).round() as usize;
            let n_r = cfg.requests - n_w;
            let w = generate_tenant_stream(&writer, 0, n_w.max(1), cfg.seed + step as u64);
            let r = generate_tenant_stream(&reader, 1, n_r.max(1), cfg.seed + 100 + step as u64);
            let trace = mix_chronological(&[w, r], cfg.requests);
            let evals = evaluate_all(&trace, 2, &[cfg.lpn_space, cfg.lpn_space], &eval)
                .expect("fig2 workloads stay within capacity");
            Fig2Point { write_pct, evals }
        })
        .collect()
}

/// Which latency series of a point to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Figure 2(a): mean write latency.
    Write,
    /// Figure 2(b): mean read latency.
    Read,
    /// Figure 2(c): total (read mean + write mean).
    Total,
}

impl Series {
    fn value(self, e: &StrategyEval) -> f64 {
        match self {
            Series::Write => e.write_us,
            Series::Read => e.read_us,
            Series::Total => e.metric_us,
        }
    }

    /// Subplot title.
    pub fn title(self) -> &'static str {
        match self {
            Series::Write => "Figure 2(a): normalized WRITE latency (Shared = 1.00)",
            Series::Read => "Figure 2(b): normalized READ latency (Shared = 1.00)",
            Series::Total => "Figure 2(c): normalized TOTAL latency (Shared = 1.00)",
        }
    }
}

/// Renders one subplot as a table: rows = strategies, columns = write
/// proportions, cells normalized to `Shared`.
pub fn render_series(points: &[Fig2Point], series: Series) -> String {
    let strategies: Vec<Strategy> = points[0].evals.iter().map(|e| e.strategy).collect();
    let mut headers: Vec<String> = vec!["strategy".to_string()];
    headers.extend(points.iter().map(|p| format!("{}%", p.write_pct)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (si, s) in strategies.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for p in points {
            let shared = series.value(&p.evals[0]).max(1e-9); // index 0 = Shared
            row.push(f2(series.value(&p.evals[si]) / shared));
        }
        table.row(row);
    }
    format!("{}\n{}", series.title(), table.render())
}

/// The paper's headline: the max/min total-latency ratio across
/// strategies at a given write proportion ("up to 10.6×" at 50 %).
pub fn max_spread(points: &[Fig2Point]) -> (u32, f64) {
    let mut best = (0u32, 0.0f64);
    for p in points {
        let lo = p
            .evals
            .iter()
            .map(|e| e.metric_us)
            .fold(f64::INFINITY, f64::min);
        let hi = p.evals.iter().map(|e| e.metric_us).fold(0.0f64, f64::max);
        let ratio = hi / lo.max(1e-9);
        if ratio > best.1 {
            best = (p.write_pct, ratio);
        }
    }
    best
}

/// Prints all three subplots plus the spread summary.
pub fn print_report(points: &[Fig2Point]) {
    for series in [Series::Write, Series::Read, Series::Total] {
        println!("{}", render_series(points, series));
    }
    let (pct, ratio) = max_spread(points);
    println!(
        "max total-latency spread across strategies: {ratio:.1}x at write proportion {pct}% \
         (paper reports up to 10.6x at 50%)\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig2Config {
        Fig2Config {
            requests: 600,
            total_iops: 60_000.0,
            lpn_space: 1 << 10,
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            pool: PoolConfig::with_workers(1),
            seed: 7,
        }
    }

    #[test]
    fn sweep_produces_nine_points_of_eight_strategies() {
        let points = run(&tiny());
        assert_eq!(points.len(), 9);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.write_pct, (i as u32 + 1) * 10);
            assert_eq!(p.evals.len(), 8);
            assert_eq!(p.evals[0].strategy, Strategy::Shared);
        }
    }

    #[test]
    fn read_latency_improves_with_read_channels_at_low_write_pct() {
        let points = run(&tiny());
        // At 10% writes, the reader with 7 channels (1:7) must beat the
        // reader with 1 channel (7:1) on read latency.
        let p10 = &points[0];
        let read_of = |s: Strategy| p10.evals.iter().find(|e| e.strategy == s).unwrap().read_us;
        assert!(
            read_of(Strategy::TwoPart { write_channels: 1 })
                < read_of(Strategy::TwoPart { write_channels: 7 })
        );
    }

    #[test]
    fn rendering_has_expected_shape() {
        let points = run(&tiny());
        let s = render_series(&points, Series::Total);
        assert!(s.contains("Shared"));
        assert!(s.contains("90%"));
        // Shared's own column is exactly 1.00.
        let shared_line = s.lines().find(|l| l.contains("Shared")).unwrap();
        assert!(shared_line.contains("1.00"));
        let (_, ratio) = max_spread(&points);
        assert!(ratio >= 1.0);
    }
}
