//! Per-binary observability session: telemetry sampler + span export.
//!
//! Long-running `exp` binaries bracket their work in an [`ObsSession`]:
//! [`ObsSession::start`] resolves `--telemetry PATH` (or the
//! `SSDKEEPER_TELEMETRY` env var; `stderr`/`-` streams to stderr) into
//! a running NDJSON sampler and remembers `--spans PATH` (or
//! `SSDKEEPER_SPANS`); [`ObsSession::finish`] stops the sampler —
//! flushing the `"final":true` snapshot — and writes the merged span
//! tree as folded-stack lines for `ssdtrace flame`.
//!
//! The session is inert when neither source names a target, and prints
//! a warning when one does but the binary was built without
//! `--features host-trace` (the stream would carry no counters).
//! All session status goes to stderr, never stdout.

use obs::monitor::Sampler;

/// A started observability session. Dropping it without calling
/// [`ObsSession::finish`] still stops the sampler (panic-safe final
/// snapshot) but skips the span export.
pub struct ObsSession {
    sampler: Option<Sampler>,
    spans_path: Option<String>,
}

/// Environment variable naming the folded-span output path when no
/// `--spans` flag is given.
pub const SPANS_ENV: &str = "SSDKEEPER_SPANS";

impl ObsSession {
    /// Starts the sampler/span session from the parsed CLI flags.
    /// Exits with code 2 when a requested telemetry target cannot be
    /// opened (bad path is operator error, not a soft warning).
    pub fn start(args: &crate::args::Args) -> ObsSession {
        let telemetry = args.get_opt("telemetry");
        let spans_path = args
            .get_opt("spans")
            .map(String::from)
            .or_else(|| std::env::var(SPANS_ENV).ok().filter(|s| !s.is_empty()));
        let requested = telemetry.is_some()
            || std::env::var(obs::monitor::TELEMETRY_ENV).is_ok()
            || spans_path.is_some();
        if requested && !obs::ENABLED {
            eprintln!(
                "warning: telemetry/spans requested but this binary was built without \
                 host tracing; rebuild with `--features exp/host-trace` for real counters"
            );
        }
        let sampler = match Sampler::from_spec_or_env(telemetry) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("telemetry: cannot open target: {e}");
                std::process::exit(2);
            }
        };
        ObsSession {
            sampler,
            spans_path,
        }
    }

    /// Stops the sampler (final snapshot flushed) and writes the folded
    /// span file when one was requested. Failures are reported on
    /// stderr; span-export failure exits 2 so gates can trust the file.
    pub fn finish(mut self) {
        if let Some(sampler) = self.sampler.take() {
            if let Err(e) = sampler.stop() {
                eprintln!("telemetry: stream error: {e}");
            }
        }
        if let Some(path) = self.spans_path.take() {
            let stats = obs::spans::drain();
            if let Err(e) = std::fs::write(&path, stats.folded()) {
                eprintln!("spans: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("spans -> {path}");
        }
    }
}
