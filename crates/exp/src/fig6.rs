//! Figure 6 — the strategy map.
//!
//! Sweeps synthetic feature vectors over the (intensity level, total write
//! proportion) plane, asks the trained allocator for its strategy, and
//! prints the dominant canonical strategy label per cell — the textual
//! equivalent of the paper's scatter plot.

use crate::table::Table;
use simrng::Rng;
use ssdkeeper::{ChannelAllocator, FeatureVector};
use std::collections::HashMap;

/// Number of write-proportion buckets on the y-axis.
pub const WP_BUCKETS: usize = 11; // 0.0, 0.1, ... 1.0

/// The strategy map: `cells[wp_bucket][level]` holds the dominant
/// canonical label (empty when no sample fell in the cell).
#[derive(Debug, Clone)]
pub struct StrategyMap {
    /// Dominant label per cell.
    pub cells: Vec<Vec<String>>,
    /// Samples drawn per cell.
    pub counts: Vec<Vec<usize>>,
}

/// Draws `samples_per_level` random feature vectors at every intensity
/// level and records the allocator's decisions.
pub fn run(allocator: &ChannelAllocator, samples_per_level: usize, seed: u64) -> StrategyMap {
    let mut rng = simrng::SimRng::seed_from_u64(seed);
    let mut votes: Vec<Vec<HashMap<String, usize>>> = vec![vec![HashMap::new(); 20]; WP_BUCKETS];
    let mut counts = vec![vec![0usize; 20]; WP_BUCKETS];

    for level in 0..20u32 {
        for _ in 0..samples_per_level {
            let rw_char: [u8; 4] = std::array::from_fn(|_| rng.gen_range(0..2u8));
            let mut shares = [0.0f64; 4];
            let mut sum = 0.0;
            for s in &mut shares {
                *s = rng.gen_range(0.05..1.0);
                sum += *s;
            }
            for s in &mut shares {
                *s /= sum;
            }
            let fv = FeatureVector {
                intensity_level: level,
                rw_char,
                shares,
            };
            let wp = fv.write_proportion_estimate();
            let bucket = ((wp * 10.0).round() as usize).min(WP_BUCKETS - 1);
            let label = allocator.predict(&fv).canonical_label();
            *votes[bucket][level as usize].entry(label).or_insert(0) += 1;
            counts[bucket][level as usize] += 1;
        }
    }

    let cells = votes
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|cell| {
                    cell.into_iter()
                        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                        .map(|(label, _)| label)
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect();
    StrategyMap { cells, counts }
}

/// Renders the map: rows = write proportion (descending), columns =
/// intensity level.
pub fn render(map: &StrategyMap) -> String {
    let mut headers = vec!["write-prop".to_string()];
    headers.extend((0..20).map(|l| format!("L{l}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for bucket in (0..WP_BUCKETS).rev() {
        let mut row = vec![format!("{:.1}", bucket as f64 / 10.0)];
        for level in 0..20 {
            let cell = &map.cells[bucket][level];
            row.push(if cell.is_empty() {
                "-".to_string()
            } else {
                cell.clone()
            });
        }
        t.row(row);
    }
    format!(
        "Figure 6: dominant SSDKeeper strategy per (intensity level, total write proportion)\n{}",
        t.render()
    )
}

/// Count of distinct strategies appearing in the map — the paper's point
/// is that no single strategy covers the plane.
pub fn distinct_strategies(map: &StrategyMap) -> usize {
    let mut set = std::collections::HashSet::new();
    for row in &map.cells {
        for cell in row {
            if !cell.is_empty() {
                set.insert(cell.clone());
            }
        }
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Activation, Network};

    fn allocator() -> ChannelAllocator {
        ChannelAllocator::new(Network::paper_topology(Activation::Logistic, 6), 120_000.0)
    }

    #[test]
    fn map_covers_every_level() {
        let map = run(&allocator(), 30, 1);
        assert_eq!(map.cells.len(), WP_BUCKETS);
        for level in 0..20 {
            let total: usize = (0..WP_BUCKETS).map(|b| map.counts[b][level]).sum();
            assert_eq!(total, 30, "level {level} sample count");
        }
    }

    #[test]
    fn map_is_deterministic() {
        let a = run(&allocator(), 10, 5);
        let b = run(&allocator(), 10, 5);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn render_shows_grid() {
        let map = run(&allocator(), 10, 2);
        let s = render(&map);
        assert!(s.contains("L19"));
        assert!(s.contains("1.0"));
        assert!(distinct_strategies(&map) >= 1);
    }

    #[test]
    fn impossible_cells_are_empty() {
        let map = run(&allocator(), 20, 3);
        // Write proportion 1.0 requires all four tenants write-dominated
        // with shares summing to 1 — possible; but proportions strictly
        // between bucket levels always land somewhere. Just assert the
        // empty-cell marker renders without panicking.
        let _ = render(&map);
    }
}
