//! Flame golden: a fixed-seed smoke fleet run must light up a stable
//! set of span *names*. Counts and timings are excluded on purpose —
//! they vary with the host — but which code paths are instrumented is
//! a contract: a span silently disappearing from the profile is a
//! regression in observability, and a new one must be pinned here.
//!
//! Only compiled with host tracing on:
//! `cargo test -p exp --features host-trace --test flame_golden`.
//! Integration tests get their own process, so the global span
//! registry drained here holds exactly this run's spans.
#![cfg(feature = "host-trace")]

use std::collections::BTreeSet;

#[test]
fn smoke_run_span_names_match_golden() {
    assert!(obs::ENABLED, "host-trace must enable obs");
    let mut cfg = fleet::FleetConfig::smoke(42);
    cfg.pool = parallel::PoolConfig::with_workers(2);
    let outcome = fleet::run_fleet(&cfg).expect("smoke fleet run");
    assert!(outcome.summary.merged.events_observed > 0);

    let stats = obs::spans::drain();
    let names: BTreeSet<&str> = stats
        .paths
        .keys()
        .flat_map(|path| path.split(';'))
        .collect();
    let mut got = String::new();
    for name in &names {
        got.push_str(name);
        got.push('\n');
    }

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/span_names.txt"
    );
    let want = std::fs::read_to_string(golden_path).expect("read span-name golden");
    assert_eq!(
        got, want,
        "span-name set diverged from tests/golden/span_names.txt; if the \
         instrumentation change is intentional, replace the golden with the \
         `got` set above (one name per line, sorted)"
    );

    // The folded export must round-trip through the flame parser and
    // attribute real time at the roots.
    let stacks = trace_tools::flame::parse_folded(&stats.folded()).expect("parse own folded");
    assert!(stacks.root_ns() > 0, "no time attributed at span roots");
}
