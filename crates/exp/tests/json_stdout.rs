//! `--json` stdout purity: binaries that advertise machine-parseable
//! output must emit exactly one JSON document on stdout — status,
//! digests, and progress all belong on stderr. Each stdout is piped
//! through the same std-only JSON parser `ssdtrace diff` trusts
//! (`trace_tools::json::parse` rejects trailing garbage, so a stray
//! `println!` anywhere in the run fails the test).

use std::process::{Command, Output};

fn run_bin(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .expect("spawn exp bin")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

#[test]
fn fleet_json_stdout_is_one_parseable_document() {
    let out = run_bin(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--json",
            "--tenants",
            "8",
            "--devices",
            "2",
            "--requests",
            "60",
            "--workers",
            "1",
        ],
    );
    let stdout = stdout_of(&out);
    let doc = trace_tools::json::parse(&stdout)
        .unwrap_or_else(|e| panic!("fleet --json stdout unparseable: {e}\n{stdout}"));
    assert!(
        doc.get("ssdtrace").is_some() && doc.get("events").is_some(),
        "unexpected document shape:\n{stdout}"
    );
    // The determinism digest still exists for scripts — on stderr now.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fleet digest: 0x"),
        "digest line missing from stderr: {stderr}"
    );
}

#[test]
fn fleet_human_mode_keeps_digest_on_stdout() {
    // verify.sh greps stdout for `^fleet digest:` in the non-json mode;
    // that contract must survive the stderr routing.
    let out = run_bin(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--tenants",
            "8",
            "--devices",
            "2",
            "--requests",
            "60",
            "--workers",
            "1",
        ],
    );
    let stdout = stdout_of(&out);
    assert!(
        stdout.lines().any(|l| l.starts_with("fleet digest: 0x")),
        "digest left stdout in human mode:\n{stdout}"
    );
}

#[test]
fn replay_json_stdout_is_one_parseable_document() {
    // Route the default SSDP captures to a temp dir: integration tests
    // run with the package dir as cwd, and the default artifacts/
    // outputs would litter crates/exp/.
    let dir = std::env::temp_dir().join(format!("replay_json_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create capture temp dir");
    let sim = dir.join("sim.ssdp");
    let file = dir.join("file.ssdp");
    let out = run_bin(
        env!("CARGO_BIN_EXE_replay"),
        &[
            "--json",
            "--smoke",
            "--requests",
            "300",
            "--capture-sim",
            sim.to_str().unwrap(),
            "--capture-file",
            file.to_str().unwrap(),
        ],
    );
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = stdout_of(&out);
    let doc = trace_tools::json::parse(&stdout)
        .unwrap_or_else(|e| panic!("replay --json stdout unparseable: {e}\n{stdout}"));
    assert!(
        doc.get("tenants").is_some() && doc.get("engine").is_some(),
        "unexpected document shape:\n{stdout}"
    );
}
