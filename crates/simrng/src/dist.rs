//! Distribution helpers shared by workload synthesis, the learner, and
//! ANN initialization.
//!
//! Everything here is a thin, deterministic transform over [`RngCore`]
//! draws — inverse-CDF where a closed form exists, Box–Muller for the
//! normal — so the sampled streams are a pure function of the seed.

use crate::{Rng, RngCore};

/// Bernoulli draw: `true` with probability `p` (alias of
/// [`Rng::gen_bool`], kept for call sites that read better as a
/// distribution).
#[inline]
pub fn bernoulli<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen_bool(p)
}

/// Exponential sample with the given mean, via inverse CDF.
///
/// The uniform is drawn from `[EPSILON, 1)` so `ln` never sees zero.
#[inline]
pub fn exponential<R: RngCore + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Poisson-process inter-arrival gap for a process with the given rate
/// (events per unit time): an exponential with mean `1 / rate`.
#[inline]
pub fn poisson_interarrival<R: RngCore + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "poisson rate must be positive");
    exponential(rng, 1.0 / rate)
}

/// Bounded-Zipf sample over `[0, n)` via the continuous inverse-CDF
/// approximation: `F(x) ∝ x^(1-θ)` on `[1, n]`, so
/// `x = ((n^(1-θ) - 1)·u + 1)^(1/(1-θ))`. Rank 1 (the hottest item) maps
/// to 0. Requires `0 < θ < 1`.
///
/// The approximation slightly underweights the very first ranks relative
/// to exact Zipf but preserves the power-law head/tail shape that matters
/// for GC and cache behaviour.
pub fn zipf<R: RngCore + ?Sized>(rng: &mut R, n: u64, theta: f64) -> u64 {
    debug_assert!(n > 0);
    debug_assert!(0.0 < theta && theta < 1.0);
    let one_minus = 1.0 - theta;
    let u: f64 = rng.gen_range(0.0..1.0);
    let x = ((n as f64).powf(one_minus) - 1.0)
        .mul_add(u, 1.0)
        .powf(1.0 / one_minus);
    (x as u64 - 1).min(n - 1)
}

/// Hot/cold draw over `[0, n)`: with probability `hot_prob` the sample
/// falls uniformly in the hot head `[0, ceil(n·hot_frac))`, otherwise
/// uniformly in the cold tail.
pub fn hot_cold<R: RngCore + ?Sized>(rng: &mut R, n: u64, hot_frac: f64, hot_prob: f64) -> u64 {
    debug_assert!(n > 0);
    debug_assert!((0.0..=1.0).contains(&hot_frac));
    let hot = ((n as f64 * hot_frac).ceil() as u64).clamp(1, n);
    if hot == n || rng.gen_bool(hot_prob) {
        rng.gen_range(0..hot)
    } else {
        rng.gen_range(hot..n)
    }
}

/// Standard-normal sample via Box–Muller (two uniforms per pair; the
/// second value is discarded to keep the function stateless).
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
#[inline]
pub fn normal<R: RngCore + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0);
    standard_normal(rng).mul_add(std_dev, mean)
}

/// The Xavier/Glorot uniform bound `sqrt(6 / (fan_in + fan_out))`.
#[inline]
pub fn xavier_limit(fan_in: usize, fan_out: usize) -> f32 {
    debug_assert!(fan_in + fan_out > 0);
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// One Xavier/Glorot-uniform weight: uniform in `±xavier_limit`.
#[inline]
pub fn xavier_uniform<R: RngCore + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> f32 {
    let limit = xavier_limit(fan_in, fan_out);
    rng.gen_range(-limit..limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn exponential_mean_is_respected() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.03, "mean {mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut rng = SimRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| exponential(&mut rng, 1.0) >= 0.0));
    }

    #[test]
    fn poisson_interarrival_matches_rate() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| poisson_interarrival(&mut rng, 10_000.0))
            .sum();
        let rate = n as f64 / total;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.03, "rate {rate}");
    }

    #[test]
    fn zipf_stays_in_range_and_is_head_heavy() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 10_000u64;
        let draws = 20_000;
        let mut head = 0usize;
        for _ in 0..draws {
            let v = zipf(&mut rng, n, 0.9);
            assert!(v < n);
            if v < n / 100 {
                head += 1;
            }
        }
        assert!(
            head as f64 / draws as f64 > 0.2,
            "hottest 1% drew only {head}/{draws}"
        );
    }

    #[test]
    fn zipf_skew_increases_with_theta() {
        let head_frac = |theta: f64| {
            let mut rng = SimRng::seed_from_u64(5);
            (0..10_000)
                .filter(|_| zipf(&mut rng, 10_000, theta) < 1_000)
                .count()
        };
        assert!(head_frac(0.9) > head_frac(0.5));
        assert!(head_frac(0.5) > head_frac(0.1));
    }

    #[test]
    fn hot_cold_concentrates_on_head() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 1_000u64;
        let hits = (0..20_000)
            .filter(|_| hot_cold(&mut rng, n, 0.1, 0.9) < 100)
            .count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn hot_cold_degenerate_head_still_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(hot_cold(&mut rng, 1, 1.0, 0.5) == 0);
            assert!(hot_cold(&mut rng, 10, 1.0, 0.5) < 10);
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn bernoulli_alias_matches_gen_bool() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(bernoulli(&mut a, 0.4), crate::Rng::gen_bool(&mut b, 0.4));
        }
    }

    #[test]
    fn xavier_init_is_bounded() {
        let mut rng = SimRng::seed_from_u64(10);
        let limit = xavier_limit(9, 64);
        assert!((limit - (6.0f32 / 73.0).sqrt()).abs() < 1e-7);
        for _ in 0..10_000 {
            let w = xavier_uniform(&mut rng, 9, 64);
            assert!(w.abs() <= limit);
        }
    }
}
