//! Seedable, dependency-free pseudo-random numbers for the SSDKeeper
//! reproduction.
//!
//! Every stochastic component of the pipeline — workload synthesis, the
//! strategy learner's mixed-workload sampler, ANN weight initialization,
//! test fixtures — draws from this crate so that the whole stack builds
//! hermetically (no external registry) and recorded artifacts stay
//! bit-reproducible across environments.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by
//! expanding a single `u64` through **SplitMix64**. Both algorithms are
//! public-domain reference constructions with published constants; the
//! implementation here is frozen — changing the output stream for a given
//! seed would invalidate every recorded trace, dataset, and report, so any
//! future generator must be added under a new type, never by editing
//! [`SimRng`].
//!
//! The API mirrors the subset of the `rand` crate the codebase used
//! (`Rng::gen_range`/`gen`/`gen_bool`, slice shuffling) so call sites port
//! mechanically, plus the distribution helpers the simulator needs
//! ([`dist`]: Bernoulli, exponential / Poisson inter-arrival, bounded
//! Zipf, hot/cold draws, normal and Xavier init).
#![warn(missing_docs)]

pub mod dist;

/// Minimal generator interface: a source of uniform `u64`s.
///
/// Split from [`Rng`] so that `&mut R` forwards automatically and the
/// extension methods on [`Rng`] come for free for every implementor.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; ~1 ns per draw.
/// Construct it with [`SimRng::seed_from_u64`] — identical seeds yield
/// bit-identical streams on every platform, forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step: the seed-expansion generator recommended by the
/// xoshiro authors. Also usable standalone for cheap stateless mixing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `(seed, domain, index)` with a splitmix64
/// finalizer — the domain-derivation rule shared by the fleet layer
/// (`fleet::seed`) and the parallel label farm. Pure and stateless: the
/// same triple always yields the same seed on every platform, and
/// distinct domains cannot collide even for equal indices, so a new
/// consumer of randomness never perturbs existing ones.
#[inline]
pub fn derive_seed(seed: u64, domain: u64, index: u64) -> u64 {
    let mut z = seed
        ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Builds a generator from a 64-bit seed by running SplitMix64 four
    /// times, exactly as the xoshiro reference code prescribes.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four zeros from any seed, but guard anyway so the
        // invariant is local.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives an independent child stream (e.g. one per work item) while
    /// advancing this generator by one draw.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift
/// rejection method. `span` must be non-zero.
#[inline]
pub fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "uniform_u64 span must be non-zero");
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types drawable uniformly over their whole domain with [`Rng::gen`]
/// (for floats: uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; xoshiro++'s low bits are fine but the high
        // ones are conventionally preferred.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive`). Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range called with an empty range"
                );
                let lo = low as u64;
                let hi = high as u64;
                let span = if inclusive {
                    // hi - lo + 1 wraps to 0 exactly when the range covers
                    // the whole u64 domain; every bit pattern is then valid.
                    (hi - lo).wrapping_add(1)
                } else {
                    hi - lo
                };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo + uniform_u64(rng, span)) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range called with an empty range"
                );
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high || (inclusive && low == high),
            "gen_range requires finite bounds with low < high"
        );
        let v = f64::sample(rng).mul_add(high - low, low);
        // Rounding can land exactly on `high`; keep the half-open contract.
        if !inclusive && v >= high {
            high.next_down()
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high || (inclusive && low == high),
            "gen_range requires finite bounds with low < high"
        );
        let v = f32::sample(rng).mul_add(high - low, low);
        if !inclusive && v >= high {
            high.next_down()
        } else {
            v
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s domain (floats: `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random slice operations (Fisher–Yates shuffling, uniform choice).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the published xoshiro256++ C code seeded by
    /// SplitMix64(0). These pin the stream forever: if this test breaks,
    /// every recorded artifact in the repository silently changes meaning.
    #[test]
    fn golden_stream_seed_zero() {
        let mut rng = SimRng::seed_from_u64(0);
        // State after SplitMix64 expansion of seed 0.
        assert_eq!(
            rng.s,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            [
                0x53175D61490B23DF,
                0x61DA6F3DC380D507,
                0x5C0FDF91EC9A7BFC,
                0x02EEBF8C3BBE5E1A,
            ]
        );
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SimRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SimRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(0xDEAD_BEF0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_int_bounds_hold() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
            let w: u32 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let u: usize = rng.gen_range(0..2);
            assert!(u < 2);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "500 draws must cover 7 slots");
    }

    #[test]
    fn gen_range_float_bounds_hold() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.05..1.0);
            assert!((0.05..1.0).contains(&v));
            let w: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = SimRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::seed_from_u64(6);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = SimRng::seed_from_u64(8);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut SimRng::seed_from_u64(9));
        b.shuffle(&mut SimRng::seed_from_u64(9));
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, (0..50).collect::<Vec<_>>(), "50 elements should move");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<_>>(),
            "permutation preserves elements"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = SimRng::seed_from_u64(10);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = SimRng::seed_from_u64(11);
        // Both direct and reborrowed calls must compile and agree on type.
        let a = draw(&mut rng);
        let b = draw(&mut &mut rng);
        assert!(a < 100 && b < 100);
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_u64_is_unbiased_over_non_power_span() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_u64(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }
}
