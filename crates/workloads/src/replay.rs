//! Replaying **real** block traces (MSR-Cambridge CSV format).
//!
//! The evaluation in this repository substitutes synthetic stand-ins for
//! the MSR-Cambridge traces (see [`crate::msr`]); this module is the hook
//! for users who have the originals. It parses the SNIA CSV layout
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,mds,0,Read,7014609920,24576,41286
//! ```
//!
//! (timestamps are Windows FILETIME: 100 ns ticks since 1601; offsets and
//! sizes are bytes) and converts the byte-addressed records into the
//! page-granular, zero-based [`IoRequest`]s the simulator consumes.

use flash_sim::{IoRequest, Op};

/// One parsed block-trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// Windows FILETIME timestamp (100 ns ticks since 1601-01-01).
    pub timestamp: u64,
    /// Host name column (e.g. "mds").
    pub host: String,
    /// Disk number within the host.
    pub disk: u32,
    /// Read or write.
    pub op: Op,
    /// Byte offset on the volume.
    pub offset_bytes: u64,
    /// Transfer size in bytes.
    pub size_bytes: u64,
}

/// Errors from [`parse_msr_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A line had fewer than 6 comma-separated fields.
    ShortLine {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The column name.
        field: &'static str,
    },
    /// The Type column was neither `Read` nor `Write`.
    BadOp {
        /// 1-based line number.
        line: usize,
        /// The value found.
        value: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ShortLine { line } => write!(f, "line {line}: too few fields"),
            ReplayError::BadNumber { line, field } => {
                write!(f, "line {line}: field `{field}` is not a number")
            }
            ReplayError::BadOp { line, value } => {
                write!(f, "line {line}: unknown op `{value}`")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parses MSR-Cambridge CSV text. Blank lines are skipped; a header line
/// starting with `Timestamp` is tolerated. The `ResponseTime` column (and
/// anything after it) is ignored — the simulator recomputes latencies.
pub fn parse_msr_csv(text: &str) -> Result<Vec<BlockRecord>, ReplayError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with("Timestamp") {
            continue;
        }
        let mut fields = trimmed.split(',');
        let mut next = || fields.next().map(str::trim);
        let timestamp = next()
            .ok_or(ReplayError::ShortLine { line })?
            .parse()
            .map_err(|_| ReplayError::BadNumber {
                line,
                field: "Timestamp",
            })?;
        let host = next().ok_or(ReplayError::ShortLine { line })?.to_string();
        let disk = next()
            .ok_or(ReplayError::ShortLine { line })?
            .parse()
            .map_err(|_| ReplayError::BadNumber {
                line,
                field: "DiskNumber",
            })?;
        let op_str = next().ok_or(ReplayError::ShortLine { line })?;
        let op = match op_str {
            "Read" | "read" | "R" => Op::Read,
            "Write" | "write" | "W" => Op::Write,
            other => {
                return Err(ReplayError::BadOp {
                    line,
                    value: other.to_string(),
                })
            }
        };
        let offset_bytes = next()
            .ok_or(ReplayError::ShortLine { line })?
            .parse()
            .map_err(|_| ReplayError::BadNumber {
                line,
                field: "Offset",
            })?;
        let size_bytes = next()
            .ok_or(ReplayError::ShortLine { line })?
            .parse()
            .map_err(|_| ReplayError::BadNumber {
                line,
                field: "Size",
            })?;
        out.push(BlockRecord {
            timestamp,
            host,
            disk,
            op,
            offset_bytes,
            size_bytes,
        });
    }
    Ok(out)
}

/// How to map block records onto simulator requests.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Flash page size in bytes (must match the simulated device).
    pub page_size: u64,
    /// Tenant id to stamp on every request.
    pub tenant: u16,
    /// Logical space to fold LPNs into (the raw volumes are far larger
    /// than scaled simulated devices). LPNs are taken modulo this bound,
    /// preserving locality structure within the bound.
    pub lpn_space: u64,
    /// Optional wall-clock compression: arrival gaps are divided by this
    /// factor (1.0 = real time). Useful to push a lightly loaded trace
    /// into the contention regime under study.
    pub time_compression: f64,
}

impl ReplayConfig {
    /// Sensible defaults for the Table I device: 16 KB pages, tenant 0,
    /// 2²⁰-page space, real-time replay.
    pub fn new(tenant: u16) -> Self {
        Self {
            page_size: 16 * 1024,
            tenant,
            lpn_space: 1 << 20,
            time_compression: 1.0,
        }
    }
}

/// Converts parsed records to page-granular [`IoRequest`]s:
///
/// * timestamps are rebased to zero and converted from 100 ns ticks to
///   nanoseconds (with optional compression);
/// * byte extents become page extents (`offset / page_size`, size rounded
///   up to whole pages, minimum one page);
/// * LPNs are folded into `lpn_space`.
///
/// Records must be handed in ascending timestamp order, as the MSR files
/// are distributed; the output is sorted defensively anyway.
pub fn to_page_requests(records: &[BlockRecord], cfg: &ReplayConfig) -> Vec<IoRequest> {
    assert!(cfg.page_size > 0, "page size must be non-zero");
    assert!(cfg.lpn_space > 0, "lpn space must be non-zero");
    assert!(cfg.time_compression > 0.0, "compression must be positive");
    let base = records.iter().map(|r| r.timestamp).min().unwrap_or(0);
    let mut out: Vec<IoRequest> = records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let ticks = r.timestamp - base;
            let arrival_ns = ((ticks as f64) * 100.0 / cfg.time_compression) as u64;
            let first_page = r.offset_bytes / cfg.page_size;
            let last_page = r.offset_bytes.saturating_add(r.size_bytes.max(1) - 1) / cfg.page_size;
            let size_pages = (last_page - first_page + 1).min(u32::MAX as u64) as u32;
            IoRequest {
                id: i as u64,
                tenant: cfg.tenant,
                op: r.op,
                lpn: first_page % cfg.lpn_space,
                size_pages,
                arrival_ns,
            }
        })
        .collect();
    out.sort_by_key(|r| r.arrival_ns);
    for (i, r) in out.iter_mut().enumerate() {
        r.id = i as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,mds,0,Read,32768,24576,41286
128166372003061630,mds,0,Write,65536,4096,9016
128166372013061631,mds,1,Read,665600,16384,3572
";

    #[test]
    fn parses_records_and_skips_header() {
        let recs = parse_msr_csv(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, Op::Read);
        assert_eq!(recs[0].host, "mds");
        assert_eq!(recs[1].op, Op::Write);
        assert_eq!(recs[2].disk, 1);
        assert_eq!(recs[2].size_bytes, 16384);
        assert_eq!(recs[0].offset_bytes, 32768);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let recs = parse_msr_csv("\n\n128166372003061629,a,0,Read,0,512,1\n\n").unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn rejects_short_lines() {
        assert_eq!(
            parse_msr_csv("1,mds,0,Read").unwrap_err(),
            ReplayError::ShortLine { line: 1 }
        );
    }

    #[test]
    fn rejects_bad_numbers_and_ops() {
        assert_eq!(
            parse_msr_csv("abc,mds,0,Read,0,512,1").unwrap_err(),
            ReplayError::BadNumber {
                line: 1,
                field: "Timestamp"
            }
        );
        assert_eq!(
            parse_msr_csv("1,mds,0,Erase,0,512,1").unwrap_err(),
            ReplayError::BadOp {
                line: 1,
                value: "Erase".to_string()
            }
        );
    }

    #[test]
    fn conversion_rebases_time_and_pages() {
        let recs = parse_msr_csv(SAMPLE).unwrap();
        let cfg = ReplayConfig::new(3);
        let reqs = to_page_requests(&recs, &cfg);
        assert_eq!(reqs.len(), 3);
        // First record is the time base.
        assert_eq!(reqs[0].arrival_ns, 0);
        // Second: 1 tick later = 100 ns.
        assert_eq!(reqs[1].arrival_ns, 100);
        // Third: 10_000_002 ticks later = 1_000_000_200 ns.
        assert_eq!(reqs[2].arrival_ns, 1_000_000_200);
        // 24576 bytes (1.5 pages) from a page-aligned offset spans 2 pages.
        assert_eq!(reqs[0].size_pages, 2);
        assert_eq!(reqs[0].lpn, 2);
        // 4096 bytes within one page.
        assert_eq!(reqs[1].size_pages, 1);
        assert_eq!(reqs[1].lpn, 4);
        assert!(reqs.iter().all(|r| r.tenant == 3));
        assert!(reqs.iter().all(|r| r.lpn < cfg.lpn_space));
    }

    #[test]
    fn unaligned_extents_cover_both_pages() {
        let rec = BlockRecord {
            timestamp: 10,
            host: "h".into(),
            disk: 0,
            op: Op::Write,
            offset_bytes: 16 * 1024 - 50,
            size_bytes: 100,
        };
        let reqs = to_page_requests(&[rec], &ReplayConfig::new(0));
        assert_eq!(reqs[0].size_pages, 2);
        assert_eq!(reqs[0].lpn, 0);
    }

    #[test]
    fn zero_size_becomes_one_page() {
        let rec = BlockRecord {
            timestamp: 0,
            host: "h".into(),
            disk: 0,
            op: Op::Read,
            offset_bytes: 32 * 1024,
            size_bytes: 0,
        };
        let reqs = to_page_requests(&[rec], &ReplayConfig::new(0));
        assert_eq!(reqs[0].size_pages, 1);
        assert_eq!(reqs[0].lpn, 2);
    }

    #[test]
    fn time_compression_divides_gaps() {
        let recs = vec![
            BlockRecord {
                timestamp: 0,
                host: "h".into(),
                disk: 0,
                op: Op::Read,
                offset_bytes: 0,
                size_bytes: 512,
            },
            BlockRecord {
                timestamp: 1_000,
                host: "h".into(),
                disk: 0,
                op: Op::Read,
                offset_bytes: 0,
                size_bytes: 512,
            },
        ];
        let mut cfg = ReplayConfig::new(0);
        cfg.time_compression = 10.0;
        let reqs = to_page_requests(&recs, &cfg);
        // 1000 ticks = 100_000 ns real time, compressed 10x -> 10_000 ns.
        assert_eq!(reqs[1].arrival_ns, 10_000);
    }

    #[test]
    fn replayed_trace_drives_the_simulator() {
        use flash_sim::{Simulator, SsdConfig, TenantLayout};
        let recs = parse_msr_csv(SAMPLE).unwrap();
        let mut cfg = ReplayConfig::new(0);
        cfg.lpn_space = 1 << 10;
        let trace = to_page_requests(&recs, &cfg);
        let ssd = SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 32,
            ..SsdConfig::paper_table1()
        };
        let layout = TenantLayout::shared(1, &ssd).with_lpn_space_all(1 << 10);
        let report = Simulator::new(ssd, layout).unwrap().run(&trace).unwrap();
        assert_eq!(report.total.count, 3);
    }
}
