//! Trace profiling: quantitative characterization of a request stream.
//!
//! Used to validate the synthesizers against their specs (and, with
//! [`crate::replay`], against real traces): write ratio, rate, arrival
//! burstiness, spatial sequentiality, footprint, and access skew — the
//! properties that drive the simulator's contention behaviour.

use flash_sim::{IoRequest, Op};
use std::collections::HashMap;

/// Summary statistics of one request stream (optionally filtered to one
/// tenant).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Requests profiled.
    pub count: usize,
    /// Fraction of write requests.
    pub write_ratio: f64,
    /// Mean request size in pages.
    pub mean_size_pages: f64,
    /// Mean arrival rate (requests per second over the span).
    pub iops: f64,
    /// Squared coefficient of variation of inter-arrival gaps
    /// (1 ≈ Poisson, ≫1 bursty, <1 regular).
    pub interarrival_cv2: f64,
    /// Fraction of requests that continue the previous request's extent
    /// (`lpn == prev.lpn + prev.size`), i.e. sequential-run membership.
    pub sequentiality: f64,
    /// Distinct starting LPNs touched.
    pub footprint_lpns: u64,
    /// Share of accesses landing on the hottest 10 % of touched LPNs
    /// (0.1 for uniform traffic, →1 for heavily skewed).
    pub hot10_share: f64,
}

/// Profiles `trace`, optionally restricted to a single tenant.
/// Returns `None` for an empty (post-filter) stream.
pub fn profile(trace: &[IoRequest], tenant: Option<u16>) -> Option<TraceProfile> {
    let reqs: Vec<&IoRequest> = trace
        .iter()
        .filter(|r| tenant.is_none_or(|t| r.tenant == t))
        .collect();
    if reqs.is_empty() {
        return None;
    }
    let count = reqs.len();
    let writes = reqs.iter().filter(|r| r.op == Op::Write).count();
    let pages: u64 = reqs.iter().map(|r| r.size_pages as u64).sum();

    let span_ns = reqs
        .last()
        .expect("non-empty")
        .arrival_ns
        .saturating_sub(reqs[0].arrival_ns)
        .max(1);
    let iops = count as f64 / (span_ns as f64 / 1e9);

    // Inter-arrival CV².
    let gaps: Vec<f64> = reqs
        .windows(2)
        .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64)
        .collect();
    let interarrival_cv2 = if gaps.is_empty() {
        0.0
    } else {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        }
    };

    // Sequentiality.
    let sequential = reqs
        .windows(2)
        .filter(|w| w[1].lpn == w[0].lpn + w[0].size_pages as u64)
        .count();
    let sequentiality = if count < 2 {
        0.0
    } else {
        sequential as f64 / (count - 1) as f64
    };

    // Footprint and skew.
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for r in &reqs {
        *freq.entry(r.lpn).or_insert(0) += 1;
    }
    let footprint_lpns = freq.len() as u64;
    let mut counts: Vec<u64> = freq.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let hot_n = (counts.len().div_ceil(10)).max(1);
    let hot_hits: u64 = counts.iter().take(hot_n).sum();
    let hot10_share = hot_hits as f64 / count as f64;

    Some(TraceProfile {
        count,
        write_ratio: writes as f64 / count as f64,
        mean_size_pages: pages as f64 / count as f64,
        iops,
        interarrival_cv2,
        sequentiality,
        footprint_lpns,
        hot10_share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AddressPattern, ArrivalProcess, SizeDist, TenantSpec};
    use crate::synth::generate_tenant_stream;

    fn req(t: u16, op: Op, lpn: u64, size: u32, at: u64) -> IoRequest {
        IoRequest::new(0, t, op, lpn, size, at)
    }

    #[test]
    fn empty_stream_yields_none() {
        assert!(profile(&[], None).is_none());
        let trace = vec![req(0, Op::Read, 0, 1, 0)];
        assert!(profile(&trace, Some(5)).is_none());
    }

    #[test]
    fn basic_counters() {
        let trace = vec![
            req(0, Op::Write, 0, 2, 0),
            req(0, Op::Read, 2, 1, 1_000),
            req(0, Op::Read, 3, 1, 2_000),
            req(0, Op::Read, 100, 1, 3_000),
        ];
        let p = profile(&trace, None).unwrap();
        assert_eq!(p.count, 4);
        assert_eq!(p.write_ratio, 0.25);
        assert!((p.mean_size_pages - 1.25).abs() < 1e-12);
        // Three of four transitions are sequential continuations except
        // the last jump: (0,2)->2 yes, 2->3 yes, 3->100 no.
        assert!((p.sequentiality - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.footprint_lpns, 4);
    }

    #[test]
    fn tenant_filter_applies() {
        let trace = vec![
            req(0, Op::Write, 0, 1, 0),
            req(1, Op::Read, 1, 1, 10),
            req(1, Op::Read, 2, 1, 20),
        ];
        let p0 = profile(&trace, Some(0)).unwrap();
        assert_eq!(p0.count, 1);
        assert_eq!(p0.write_ratio, 1.0);
        let p1 = profile(&trace, Some(1)).unwrap();
        assert_eq!(p1.count, 2);
        assert_eq!(p1.write_ratio, 0.0);
    }

    #[test]
    fn uniform_synthetic_stream_profiles_as_specified() {
        let spec = TenantSpec::synthetic("u", 0.4, 20_000.0, 1 << 14);
        let stream = generate_tenant_stream(&spec, 0, 20_000, 1);
        let p = profile(&stream, None).unwrap();
        assert!((p.write_ratio - 0.4).abs() < 0.02);
        assert!((p.iops - 20_000.0).abs() / 20_000.0 < 0.05);
        // Poisson arrivals: CV² ≈ 1.
        assert!(
            (p.interarrival_cv2 - 1.0).abs() < 0.15,
            "cv2 {}",
            p.interarrival_cv2
        );
        // Uniform addresses: low sequentiality, hot10 ≈ 0.1-0.2.
        assert!(p.sequentiality < 0.01);
        assert!(p.hot10_share < 0.3, "hot10 {}", p.hot10_share);
    }

    #[test]
    fn sequential_runs_profile_as_sequential() {
        let spec = TenantSpec {
            pattern: AddressPattern::SequentialRuns { run_len: 16 },
            ..TenantSpec::synthetic("s", 0.0, 10_000.0, 1 << 14)
        };
        let stream = generate_tenant_stream(&spec, 0, 8_000, 2);
        let p = profile(&stream, None).unwrap();
        assert!(p.sequentiality > 0.85, "sequentiality {}", p.sequentiality);
    }

    #[test]
    fn zipf_profiles_as_skewed() {
        let spec = TenantSpec {
            pattern: AddressPattern::Zipf { theta: 0.9 },
            ..TenantSpec::synthetic("z", 1.0, 10_000.0, 1 << 14)
        };
        let stream = generate_tenant_stream(&spec, 0, 10_000, 3);
        let p = profile(&stream, None).unwrap();
        assert!(p.hot10_share > 0.5, "hot10 {}", p.hot10_share);
    }

    #[test]
    fn bursty_arrivals_profile_as_bursty() {
        let spec = TenantSpec {
            arrival: ArrivalProcess::OnOff {
                on_fraction: 0.1,
                burst_len: 64,
            },
            size: SizeDist::Fixed(1),
            ..TenantSpec::synthetic("b", 0.5, 10_000.0, 1 << 12)
        };
        let stream = generate_tenant_stream(&spec, 0, 10_000, 4);
        let p = profile(&stream, None).unwrap();
        assert!(p.interarrival_cv2 > 3.0, "cv2 {}", p.interarrival_cv2);
    }
}
