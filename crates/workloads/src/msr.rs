//! MSR-Cambridge-like trace synthesizers (Table II substitution).
//!
//! The paper evaluates on six MSR-Cambridge block traces. Those traces are
//! not redistributable data files, so this module provides synthesizers
//! parameterized to the published characteristics:
//!
//! | Workload | Write ratio | Request count | Flavour                    |
//! |----------|-------------|---------------|----------------------------|
//! | mds_0    | 88 %        | 1 211 034     | media server metadata — small random writes |
//! | mds_1    | 7 %         | 1 637 711     | media server data — sequential reads |
//! | rsrch_0  | 91 %        | 1 433 654     | research projects — small random writes |
//! | prxy_0   | 97 %        | 12 518 968    | firewall/web proxy — intense small writes |
//! | src_1    | 5 %         | 45 746 222    | source control — very intense reads |
//! | web_2    | 1 %         | 5 175 367     | web server — sequential reads |
//!
//! Relative intensities follow the request counts: when four tenants are
//! mixed over a common wall-clock horizon, each contributes requests in
//! proportion to its Table II count, which is what reproduces the
//! per-mix feature vectors of Table V.

use crate::spec::{AddressPattern, ArrivalProcess, SizeDist, TenantSpec};

/// The six evaluated MSR-like workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsrTrace {
    /// Media server 0: write-dominated metadata traffic.
    Mds0,
    /// Media server 1: read-dominated streaming.
    Mds1,
    /// Research projects volume: write-dominated.
    Rsrch0,
    /// Web proxy: extremely write-dominated and intense.
    Prxy0,
    /// Source control: read-dominated, the most intense trace.
    Src1,
    /// Web server: almost pure reads.
    Web2,
}

impl MsrTrace {
    /// All six traces in Table II order.
    pub const ALL: [MsrTrace; 6] = [
        MsrTrace::Mds0,
        MsrTrace::Mds1,
        MsrTrace::Rsrch0,
        MsrTrace::Prxy0,
        MsrTrace::Src1,
        MsrTrace::Web2,
    ];

    /// Trace name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MsrTrace::Mds0 => "mds_0",
            MsrTrace::Mds1 => "mds_1",
            MsrTrace::Rsrch0 => "rsrch_0",
            MsrTrace::Prxy0 => "prxy_0",
            MsrTrace::Src1 => "src_1",
            MsrTrace::Web2 => "web_2",
        }
    }

    /// Write ratio from Table II.
    pub fn write_ratio(self) -> f64 {
        match self {
            MsrTrace::Mds0 => 0.88,
            MsrTrace::Mds1 => 0.07,
            MsrTrace::Rsrch0 => 0.91,
            MsrTrace::Prxy0 => 0.97,
            MsrTrace::Src1 => 0.05,
            MsrTrace::Web2 => 0.01,
        }
    }

    /// Request count from Table II (full original trace).
    pub fn request_count(self) -> u64 {
        match self {
            MsrTrace::Mds0 => 1_211_034,
            MsrTrace::Mds1 => 1_637_711,
            MsrTrace::Rsrch0 => 1_433_654,
            MsrTrace::Prxy0 => 12_518_968,
            MsrTrace::Src1 => 45_746_222,
            MsrTrace::Web2 => 5_175_367,
        }
    }

    /// Relative intensity versus the lightest trace (mds_0 ≈ 1.0).
    pub fn relative_intensity(self) -> f64 {
        self.request_count() as f64 / MsrTrace::Mds0.request_count() as f64
    }

    /// Builds the tenant spec for this trace.
    ///
    /// `base_iops` is the arrival rate assigned to the lightest trace
    /// (mds_0); heavier traces scale up proportionally to their Table II
    /// request counts. `lpn_space` bounds the tenant's logical footprint
    /// (scaled down from the original volumes so sweep-sized simulated
    /// devices hold the working sets).
    pub fn spec(self, base_iops: f64, lpn_space: u64) -> TenantSpec {
        let (pattern, size, arrival): (AddressPattern, SizeDist, ArrivalProcess) = match self {
            // Write-heavy server volumes: skewed small random I/O, bursty.
            MsrTrace::Mds0 | MsrTrace::Rsrch0 => (
                AddressPattern::Zipf { theta: 0.8 },
                SizeDist::Uniform { min: 1, max: 2 },
                ArrivalProcess::OnOff {
                    on_fraction: 0.4,
                    burst_len: 32,
                },
            ),
            // Proxy: hottest write set, steadier arrival.
            MsrTrace::Prxy0 => (
                AddressPattern::Zipf { theta: 0.9 },
                SizeDist::Fixed(1),
                ArrivalProcess::Poisson,
            ),
            // Read-heavy streaming/web: sequential runs, larger requests.
            MsrTrace::Mds1 | MsrTrace::Web2 => (
                AddressPattern::SequentialRuns { run_len: 16 },
                SizeDist::Uniform { min: 2, max: 4 },
                ArrivalProcess::Poisson,
            ),
            // Source control: mixed sequential/random reads, intense.
            MsrTrace::Src1 => (
                AddressPattern::SequentialRuns { run_len: 8 },
                SizeDist::Uniform { min: 1, max: 4 },
                ArrivalProcess::OnOff {
                    on_fraction: 0.5,
                    burst_len: 64,
                },
            ),
        };
        TenantSpec {
            name: self.name().to_string(),
            write_ratio: self.write_ratio(),
            iops: base_iops * self.relative_intensity(),
            arrival,
            pattern,
            size,
            lpn_space,
        }
    }
}

/// The paper's four evaluation mixes (Table IV), in tenant order.
pub fn paper_mixes() -> [(&'static str, [MsrTrace; 4]); 4] {
    [
        (
            "Mix1",
            [
                MsrTrace::Mds0,
                MsrTrace::Mds1,
                MsrTrace::Rsrch0,
                MsrTrace::Prxy0,
            ],
        ),
        (
            "Mix2",
            [
                MsrTrace::Prxy0,
                MsrTrace::Src1,
                MsrTrace::Rsrch0,
                MsrTrace::Mds1,
            ],
        ),
        (
            "Mix3",
            [
                MsrTrace::Web2,
                MsrTrace::Rsrch0,
                MsrTrace::Prxy0,
                MsrTrace::Mds0,
            ],
        ),
        (
            "Mix4",
            [
                MsrTrace::Rsrch0,
                MsrTrace::Web2,
                MsrTrace::Mds1,
                MsrTrace::Prxy0,
            ],
        ),
    ]
}

/// A mixed workload parameterized by what the paper's features collector
/// *observed* for it (Table V): the overall intensity level and the
/// per-tenant request shares.
///
/// Real traces are bursty, so a single per-trace rate cannot reproduce the
/// per-mix shares the paper reports (e.g. rsrch_0's share is 2 % of Mix2
/// but 65 % of Mix4). The shares and levels below are therefore taken
/// directly from Table V, while each tenant keeps its Table II write
/// ratio and access-pattern flavour — the most faithful reconstruction of
/// the evaluation inputs available without the raw traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixProfile {
    /// Mix name ("Mix1" … "Mix4").
    pub name: &'static str,
    /// The four member traces, in tenant order (Table IV).
    pub members: [MsrTrace; 4],
    /// Observed overall intensity level, 0–19 (Table V).
    pub intensity_level: u32,
    /// Observed per-tenant request shares (Table V; sums to 1).
    pub shares: [f64; 4],
}

impl MixProfile {
    /// Per-tenant IOPS implied by the profile, given the IOPS that
    /// saturates intensity level 19.
    pub fn tenant_iops(&self, max_total_iops: f64) -> [f64; 4] {
        let total = (self.intensity_level as f64 + 0.5) / 20.0 * max_total_iops;
        std::array::from_fn(|i| (total * self.shares[i]).max(1.0))
    }
}

/// The four mixes with their Table V observations.
pub fn paper_mix_profiles() -> [MixProfile; 4] {
    let mixes = paper_mixes();
    [
        MixProfile {
            name: mixes[0].0,
            members: mixes[0].1,
            intensity_level: 3,
            shares: [0.08, 0.09, 0.08, 0.75],
        },
        MixProfile {
            name: mixes[1].0,
            members: mixes[1].1,
            intensity_level: 18,
            shares: [0.21, 0.72, 0.02, 0.05],
        },
        MixProfile {
            name: mixes[2].0,
            members: mixes[2].1,
            intensity_level: 16,
            shares: [0.67, 0.26, 0.03, 0.04],
        },
        MixProfile {
            name: mixes[3].0,
            members: mixes[3].1,
            intensity_level: 17,
            shares: [0.65, 0.03, 0.27, 0.05],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_tenant_stream, stream_stats};

    #[test]
    fn table2_constants_match_the_paper() {
        assert_eq!(MsrTrace::Mds0.write_ratio(), 0.88);
        assert_eq!(MsrTrace::Prxy0.request_count(), 12_518_968);
        assert_eq!(MsrTrace::Src1.name(), "src_1");
        assert_eq!(MsrTrace::ALL.len(), 6);
    }

    #[test]
    fn relative_intensity_is_anchored_at_mds0() {
        assert!((MsrTrace::Mds0.relative_intensity() - 1.0).abs() < 1e-12);
        assert!(MsrTrace::Src1.relative_intensity() > 30.0);
        assert!(MsrTrace::Prxy0.relative_intensity() > 10.0);
    }

    #[test]
    fn all_specs_validate() {
        for t in MsrTrace::ALL {
            t.spec(1_000.0, 1 << 14).validate().unwrap();
        }
    }

    #[test]
    fn generated_streams_match_table2_write_ratios() {
        for t in MsrTrace::ALL {
            let spec = t.spec(5_000.0, 1 << 14);
            let stream = generate_tenant_stream(&spec, 0, 8_000, 99);
            let stats = stream_stats(&stream);
            assert!(
                (stats.write_ratio - t.write_ratio()).abs() < 0.02,
                "{}: expected {}, measured {}",
                t.name(),
                t.write_ratio(),
                stats.write_ratio
            );
        }
    }

    #[test]
    fn read_dominance_matches_table2() {
        for t in MsrTrace::ALL {
            let spec = t.spec(1_000.0, 1 << 12);
            let expect_read = matches!(t, MsrTrace::Mds1 | MsrTrace::Src1 | MsrTrace::Web2);
            assert_eq!(spec.is_read_dominated(), expect_read, "{}", t.name());
        }
    }

    #[test]
    fn paper_mixes_match_table4() {
        let mixes = paper_mixes();
        assert_eq!(mixes[0].0, "Mix1");
        assert_eq!(mixes[0].1[0], MsrTrace::Mds0);
        assert_eq!(mixes[1].1[1], MsrTrace::Src1);
        assert_eq!(mixes[2].1[0], MsrTrace::Web2);
        assert_eq!(mixes[3].1[3], MsrTrace::Prxy0);
    }

    #[test]
    fn mix_profiles_match_table5() {
        let profiles = paper_mix_profiles();
        assert_eq!(profiles[0].intensity_level, 3);
        assert_eq!(profiles[1].intensity_level, 18);
        assert_eq!(profiles[2].shares, [0.67, 0.26, 0.03, 0.04]);
        for p in &profiles {
            let sum: f64 = p.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} shares sum to {sum}", p.name);
        }
    }

    #[test]
    fn tenant_iops_follow_level_and_shares() {
        let p = &paper_mix_profiles()[1]; // Mix2, level 18
        let iops = p.tenant_iops(120_000.0);
        let total: f64 = iops.iter().sum();
        assert!((total - 18.5 / 20.0 * 120_000.0).abs() < 5.0);
        // src_1 dominates Mix2.
        assert!(iops[1] > iops[0] && iops[1] > iops[2] && iops[1] > iops[3]);
    }

    #[test]
    fn intensity_scales_iops() {
        let light = MsrTrace::Mds0.spec(1_000.0, 1 << 12);
        let heavy = MsrTrace::Src1.spec(1_000.0, 1 << 12);
        assert!(heavy.iops > light.iops * 30.0);
    }
}
