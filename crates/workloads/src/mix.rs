//! Chronological mixing of per-tenant streams.
//!
//! §V-C: "we first mix the four workloads in chronological order and then
//! take one million traces" — [`mix_chronological`] is exactly that
//! operation, generalized to any tenant count and cut length.

use flash_sim::IoRequest;

/// Merges per-tenant streams by arrival time, retagging each request with
/// its stream index as the tenant id and assigning fresh sequential ids.
/// At most `take` requests are kept (pass `usize::MAX` for all).
///
/// Each input stream must already be sorted by arrival; the merge is
/// stable (ties go to the lower stream index).
pub fn mix_chronological(streams: &[Vec<IoRequest>], take: usize) -> Vec<IoRequest> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let keep = total.min(take);
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(keep);
    while out.len() < keep {
        // Pick the stream whose head arrives earliest.
        let mut best: Option<(u64, usize)> = None;
        for (si, stream) in streams.iter().enumerate() {
            if let Some(req) = stream.get(cursors[si]) {
                let key = (req.arrival_ns, si);
                if best.is_none_or(|(t, s)| key < (t, s)) {
                    best = Some(key);
                }
            }
        }
        let Some((_, si)) = best else { break };
        let req = streams[si][cursors[si]];
        cursors[si] += 1;
        out.push(IoRequest {
            id: out.len() as u64,
            tenant: si as u16,
            ..req
        });
    }
    out
}

/// Per-tenant request shares of a mixed trace (sums to 1 for non-empty
/// traces). The vector is indexed by tenant id.
pub fn tenant_shares(mixed: &[IoRequest], tenants: usize) -> Vec<f64> {
    let mut counts = vec![0usize; tenants];
    for r in mixed {
        if (r.tenant as usize) < tenants {
            counts[r.tenant as usize] += 1;
        }
    }
    let total = mixed.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TenantSpec;
    use crate::synth::generate_tenant_stream;
    use flash_sim::Op;

    fn req(t: u16, at: u64) -> IoRequest {
        IoRequest::new(0, t, Op::Read, 0, 1, at)
    }

    #[test]
    fn merge_is_chronological_and_retagged() {
        let a = vec![req(9, 10), req(9, 30)];
        let b = vec![req(9, 20), req(9, 40)];
        let mixed = mix_chronological(&[a, b], usize::MAX);
        let arrivals: Vec<u64> = mixed.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(arrivals, vec![10, 20, 30, 40]);
        let tenants: Vec<u16> = mixed.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![0, 1, 0, 1]);
        let ids: Vec<u64> = mixed.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_break_toward_lower_stream() {
        let a = vec![req(0, 5)];
        let b = vec![req(0, 5)];
        let mixed = mix_chronological(&[a, b], usize::MAX);
        assert_eq!(mixed[0].tenant, 0);
        assert_eq!(mixed[1].tenant, 1);
    }

    #[test]
    fn take_truncates() {
        let a = vec![req(0, 1), req(0, 3), req(0, 5)];
        let b = vec![req(0, 2), req(0, 4), req(0, 6)];
        let mixed = mix_chronological(&[a, b], 4);
        assert_eq!(mixed.len(), 4);
        assert_eq!(mixed.last().unwrap().arrival_ns, 4);
    }

    #[test]
    fn empty_inputs() {
        assert!(mix_chronological(&[], 10).is_empty());
        assert!(mix_chronological(&[vec![], vec![]], 10).is_empty());
        let a = vec![req(0, 1)];
        assert_eq!(mix_chronological(&[a, vec![]], 10).len(), 1);
    }

    #[test]
    fn shares_reflect_intensity_ratio() {
        // Tenant 1 runs at 4x the rate of tenant 0.
        let s0 = generate_tenant_stream(&TenantSpec::synthetic("a", 0.5, 1_000.0, 64), 0, 4_000, 1);
        let s1 =
            generate_tenant_stream(&TenantSpec::synthetic("b", 0.5, 4_000.0, 64), 1, 16_000, 2);
        let mixed = mix_chronological(&[s0, s1], 10_000);
        let shares = tenant_shares(&mixed, 2);
        assert!((shares[0] - 0.2).abs() < 0.03, "share {}", shares[0]);
        assert!((shares[1] - 0.8).abs() < 0.03, "share {}", shares[1]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merged_output_is_sorted_for_real_streams() {
        let streams: Vec<Vec<IoRequest>> = (0..4)
            .map(|t| {
                generate_tenant_stream(
                    &TenantSpec::synthetic(format!("t{t}"), 0.5, 2_000.0, 256),
                    t,
                    500,
                    t as u64,
                )
            })
            .collect();
        let mixed = mix_chronological(&streams, usize::MAX);
        assert_eq!(mixed.len(), 2_000);
        assert!(mixed.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }
}
