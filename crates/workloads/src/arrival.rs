//! Arrival-time generation.

use crate::spec::ArrivalProcess;
use simrng::Rng;

/// Stateful generator of monotonically increasing arrival timestamps.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    mean_gap_ns: f64,
    clock_ns: f64,
    /// Remaining requests in the current burst (OnOff only).
    burst_remaining: u32,
}

impl ArrivalGen {
    /// Builds a generator for a tenant with mean rate `iops`.
    ///
    /// # Panics
    ///
    /// Panics if `iops` is not positive.
    pub fn new(process: ArrivalProcess, iops: f64) -> Self {
        assert!(iops > 0.0, "arrival rate must be positive");
        Self {
            process,
            mean_gap_ns: 1e9 / iops,
            clock_ns: 0.0,
            burst_remaining: 0,
        }
    }

    /// Draws the next arrival time in nanoseconds.
    pub fn next_arrival(&mut self, rng: &mut impl Rng) -> u64 {
        let gap = match self.process {
            ArrivalProcess::Poisson => exponential(self.mean_gap_ns, rng),
            ArrivalProcess::OnOff {
                on_fraction,
                burst_len,
            } => {
                // Within a burst the rate is mean/on_fraction (faster);
                // between bursts a long gap restores the long-run mean.
                if self.burst_remaining == 0 {
                    self.burst_remaining = burst_len;
                    // Off-gap: the burst of `burst_len` requests takes
                    // `burst_len * gap_on`; the off time fills the rest of
                    // the cycle so the mean rate holds.
                    let gap_on = self.mean_gap_ns * on_fraction;
                    let cycle = burst_len as f64 * self.mean_gap_ns;
                    let off = cycle - burst_len as f64 * gap_on;
                    self.burst_remaining -= 1;
                    exponential(off.max(gap_on), rng)
                } else {
                    self.burst_remaining -= 1;
                    exponential(self.mean_gap_ns * on_fraction, rng)
                }
            }
        };
        self.clock_ns += gap;
        self.clock_ns as u64
    }
}

/// Exponential sample with the given mean, via [`simrng::dist`].
fn exponential(mean: f64, rng: &mut impl Rng) -> f64 {
    simrng::dist::exponential(rng, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> simrng::SimRng {
        simrng::SimRng::seed_from_u64(seed)
    }

    #[test]
    fn arrivals_are_monotonic() {
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson, 10_000.0);
        let mut r = rng(1);
        let mut prev = 0;
        for _ in 0..1000 {
            let t = g.next_arrival(&mut r);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let iops = 50_000.0;
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson, iops);
        let mut r = rng(2);
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_arrival(&mut r);
        }
        let measured = n as f64 / (last as f64 / 1e9);
        assert!(
            (measured - iops).abs() / iops < 0.05,
            "measured {measured} vs {iops}"
        );
    }

    #[test]
    fn onoff_long_run_rate_matches_mean() {
        let iops = 20_000.0;
        let mut g = ArrivalGen::new(
            ArrivalProcess::OnOff {
                on_fraction: 0.2,
                burst_len: 50,
            },
            iops,
        );
        let mut r = rng(3);
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_arrival(&mut r);
        }
        let measured = n as f64 / (last as f64 / 1e9);
        assert!(
            (measured - iops).abs() / iops < 0.1,
            "measured {measured} vs {iops}"
        );
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of gaps.
        let cv2 = |process: ArrivalProcess, seed: u64| -> f64 {
            let mut g = ArrivalGen::new(process, 10_000.0);
            let mut r = rng(seed);
            let mut prev = 0u64;
            let gaps: Vec<f64> = (0..20_000)
                .map(|_| {
                    let t = g.next_arrival(&mut r);
                    let gap = (t - prev) as f64;
                    prev = t;
                    gap
                })
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(ArrivalProcess::Poisson, 4);
        let bursty = cv2(
            ArrivalProcess::OnOff {
                on_fraction: 0.1,
                burst_len: 100,
            },
            4,
        );
        assert!(
            bursty > poisson * 2.0,
            "bursty CV² {bursty} vs poisson {poisson}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut g = ArrivalGen::new(ArrivalProcess::Poisson, 1000.0);
            let mut r = rng(seed);
            (0..100).map(|_| g.next_arrival(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalGen::new(ArrivalProcess::Poisson, 0.0);
    }
}
