//! Tenant workload specifications.

/// Inter-arrival behaviour of a tenant's requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential gaps with the spec's mean rate.
    Poisson,
    /// On/off bursts: during a burst the instantaneous rate is
    /// `burst_factor ×` the mean; bursts cover `on_fraction` of time.
    /// The mean rate over a long horizon still equals the spec's `iops`.
    OnOff {
        /// Fraction of wall time spent bursting, in `(0, 1]`.
        on_fraction: f64,
        /// Mean burst length in requests.
        burst_len: u32,
    },
}

/// Spatial locality of a tenant's accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressPattern {
    /// Uniformly random pages.
    Uniform,
    /// Zipf-skewed pages (`theta` in `(0,1)`, higher = more skew).
    Zipf {
        /// Skew parameter.
        theta: f64,
    },
    /// Sequential runs: a random start followed by `run_len` consecutive
    /// requests walking forward.
    SequentialRuns {
        /// Requests per run.
        run_len: u32,
    },
}

/// Request size distribution (in pages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every request is `0`-field pages.
    Fixed(u32),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
}

impl SizeDist {
    /// Mean size in pages.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(n) => n as f64,
            SizeDist::Uniform { min, max } => (min as f64 + max as f64) / 2.0,
        }
    }
}

/// Full description of one tenant's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (trace name for MSR-like tenants).
    pub name: String,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_ratio: f64,
    /// Mean request rate in I/Os per second.
    pub iops: f64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Address pattern for both reads and writes.
    pub pattern: AddressPattern,
    /// Request size distribution.
    pub size: SizeDist,
    /// Logical page space of the tenant.
    pub lpn_space: u64,
}

impl TenantSpec {
    /// A plain synthetic tenant: Poisson arrivals, uniform single-page
    /// accesses over `lpn_space` pages.
    pub fn synthetic(name: impl Into<String>, write_ratio: f64, iops: f64, lpn_space: u64) -> Self {
        Self {
            name: name.into(),
            write_ratio,
            iops,
            arrival: ArrivalProcess::Poisson,
            pattern: AddressPattern::Uniform,
            size: SizeDist::Fixed(1),
            lpn_space,
        }
    }

    /// The paper's binary read/write characteristic: `true` when the
    /// tenant is read-dominated (feature value 1).
    pub fn is_read_dominated(&self) -> bool {
        self.write_ratio < 0.5
    }

    /// Checks field sanity.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !(0.0..=1.0).contains(&self.write_ratio) {
            return Err(SpecError::BadWriteRatio(self.write_ratio));
        }
        if self.iops <= 0.0 {
            return Err(SpecError::BadIops(self.iops));
        }
        if self.lpn_space == 0 {
            return Err(SpecError::EmptyLpnSpace);
        }
        match self.pattern {
            AddressPattern::Zipf { theta } if !(0.0 < theta && theta < 1.0) => {
                return Err(SpecError::BadZipfTheta(theta))
            }
            AddressPattern::SequentialRuns { run_len: 0 } => return Err(SpecError::EmptyRun),
            _ => {}
        }
        match self.size {
            SizeDist::Fixed(0) => return Err(SpecError::ZeroSize),
            SizeDist::Uniform { min, max } if min == 0 || min > max => {
                return Err(SpecError::BadSizeRange { min, max });
            }
            _ => {}
        }
        match self.arrival {
            ArrivalProcess::OnOff {
                on_fraction,
                burst_len,
            } => {
                if !(0.0 < on_fraction && on_fraction <= 1.0) {
                    return Err(SpecError::BadOnFraction(on_fraction));
                }
                if burst_len == 0 {
                    return Err(SpecError::EmptyBurst);
                }
            }
            ArrivalProcess::Poisson => {}
        }
        Ok(())
    }
}

/// Validation failures for [`TenantSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// write_ratio outside `[0, 1]`.
    BadWriteRatio(f64),
    /// Non-positive arrival rate.
    BadIops(f64),
    /// Zero-sized logical space.
    EmptyLpnSpace,
    /// Zipf theta outside `(0, 1)`.
    BadZipfTheta(f64),
    /// Zero-length sequential run.
    EmptyRun,
    /// Zero-page request size.
    ZeroSize,
    /// Invalid size range.
    BadSizeRange {
        /// Lower bound.
        min: u32,
        /// Upper bound.
        max: u32,
    },
    /// On-fraction outside `(0, 1]`.
    BadOnFraction(f64),
    /// Zero-length burst.
    EmptyBurst,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadWriteRatio(v) => write!(f, "write_ratio {v} outside [0,1]"),
            SpecError::BadIops(v) => write!(f, "iops {v} must be positive"),
            SpecError::EmptyLpnSpace => write!(f, "lpn_space must be non-zero"),
            SpecError::BadZipfTheta(v) => write!(f, "zipf theta {v} outside (0,1)"),
            SpecError::EmptyRun => write!(f, "sequential run length must be non-zero"),
            SpecError::ZeroSize => write!(f, "request size must be non-zero"),
            SpecError::BadSizeRange { min, max } => write!(f, "bad size range [{min},{max}]"),
            SpecError::BadOnFraction(v) => write!(f, "on_fraction {v} outside (0,1]"),
            SpecError::EmptyBurst => write!(f, "burst length must be non-zero"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_defaults_validate() {
        let s = TenantSpec::synthetic("t", 0.5, 1000.0, 1 << 16);
        s.validate().unwrap();
        assert_eq!(s.size.mean(), 1.0);
    }

    #[test]
    fn read_dominated_threshold() {
        assert!(TenantSpec::synthetic("r", 0.49, 1.0, 1).is_read_dominated());
        assert!(!TenantSpec::synthetic("w", 0.5, 1.0, 1).is_read_dominated());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = TenantSpec::synthetic("t", 0.5, 1000.0, 1 << 10);
        let mut s = base.clone();
        s.write_ratio = 1.5;
        assert_eq!(s.validate(), Err(SpecError::BadWriteRatio(1.5)));
        let mut s = base.clone();
        s.iops = 0.0;
        assert_eq!(s.validate(), Err(SpecError::BadIops(0.0)));
        let mut s = base.clone();
        s.lpn_space = 0;
        assert_eq!(s.validate(), Err(SpecError::EmptyLpnSpace));
        let mut s = base.clone();
        s.pattern = AddressPattern::Zipf { theta: 1.0 };
        assert_eq!(s.validate(), Err(SpecError::BadZipfTheta(1.0)));
        let mut s = base.clone();
        s.pattern = AddressPattern::SequentialRuns { run_len: 0 };
        assert_eq!(s.validate(), Err(SpecError::EmptyRun));
        let mut s = base.clone();
        s.size = SizeDist::Fixed(0);
        assert_eq!(s.validate(), Err(SpecError::ZeroSize));
        let mut s = base.clone();
        s.size = SizeDist::Uniform { min: 4, max: 2 };
        assert_eq!(
            s.validate(),
            Err(SpecError::BadSizeRange { min: 4, max: 2 })
        );
        let mut s = base.clone();
        s.arrival = ArrivalProcess::OnOff {
            on_fraction: 0.0,
            burst_len: 5,
        };
        assert_eq!(s.validate(), Err(SpecError::BadOnFraction(0.0)));
        let mut s = base;
        s.arrival = ArrivalProcess::OnOff {
            on_fraction: 0.5,
            burst_len: 0,
        };
        assert_eq!(s.validate(), Err(SpecError::EmptyBurst));
    }

    #[test]
    fn size_means() {
        assert_eq!(SizeDist::Fixed(4).mean(), 4.0);
        assert_eq!(SizeDist::Uniform { min: 1, max: 3 }.mean(), 2.0);
    }

    #[test]
    fn error_display_covers_variants() {
        for e in [
            SpecError::BadWriteRatio(2.0),
            SpecError::BadIops(-1.0),
            SpecError::EmptyLpnSpace,
            SpecError::BadZipfTheta(0.0),
            SpecError::EmptyRun,
            SpecError::ZeroSize,
            SpecError::BadSizeRange { min: 2, max: 1 },
            SpecError::BadOnFraction(2.0),
            SpecError::EmptyBurst,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
