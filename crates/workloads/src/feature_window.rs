//! Observation-window feature extraction (the features collector's math).
//!
//! SSDKeeper's features collector watches the mixed workload for a period
//! `T` and derives, per §V-A:
//!
//! * the **overall intensity level** — total requests in the window
//!   quantized to 20 levels;
//! * each tenant's **read/write characteristic** — 0 (write-dominated) or
//!   1 (read-dominated);
//! * each tenant's **share** of total requests (relative intensity, sums
//!   to 1).
//!
//! This module holds the trace-side computation; assembling the 9-D model
//! input lives in `ssdkeeper::features`.

use flash_sim::{IoRequest, Op};

/// Number of intensity levels the paper quantizes into.
pub const INTENSITY_LEVELS: u32 = 20;

/// Calibration of the intensity quantizer: the request count (per window)
/// that maps to the top level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityScale {
    /// Requests per observation window that saturate level 19.
    pub max_requests_per_window: f64,
}

impl IntensityScale {
    /// Scale that saturates at `max` requests per window.
    pub fn new(max: f64) -> Self {
        assert!(max > 0.0, "scale must be positive");
        Self {
            max_requests_per_window: max,
        }
    }

    /// Quantizes a request count to a level in `0..20`.
    pub fn level(&self, requests: u64) -> u32 {
        let frac = requests as f64 / self.max_requests_per_window;
        ((frac * INTENSITY_LEVELS as f64) as u32).min(INTENSITY_LEVELS - 1)
    }
}

/// Raw per-window observations for a fixed tenant count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedFeatures {
    /// Reads observed per tenant.
    pub reads: Vec<u64>,
    /// Writes observed per tenant.
    pub writes: Vec<u64>,
}

impl ObservedFeatures {
    /// Observes all requests with `arrival_ns < window_ns` (pass
    /// `u64::MAX` to observe a whole trace).
    pub fn collect(trace: &[IoRequest], tenants: usize, window_ns: u64) -> Self {
        Self::collect_range(trace, tenants, 0, window_ns)
    }

    /// Observes requests with `start_ns <= arrival_ns < end_ns`; the trace
    /// must be sorted by arrival. Used by periodic re-observation, where
    /// each decision sees only its own window.
    pub fn collect_range(trace: &[IoRequest], tenants: usize, start_ns: u64, end_ns: u64) -> Self {
        let mut reads = vec![0u64; tenants];
        let mut writes = vec![0u64; tenants];
        let begin = trace.partition_point(|r| r.arrival_ns < start_ns);
        for r in trace[begin..].iter().take_while(|r| r.arrival_ns < end_ns) {
            let t = r.tenant as usize;
            if t < tenants {
                match r.op {
                    Op::Read => reads[t] += 1,
                    Op::Write => writes[t] += 1,
                }
            }
        }
        Self { reads, writes }
    }

    /// Number of tenants observed.
    pub fn tenants(&self) -> usize {
        self.reads.len()
    }

    /// Total requests in the window.
    pub fn total(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Per-tenant request totals.
    pub fn per_tenant_total(&self, t: usize) -> u64 {
        self.reads[t] + self.writes[t]
    }

    /// The binary read/write characteristic: 1 when reads ≥ writes
    /// (read-dominated), else 0. Idle tenants default to read-dominated.
    pub fn rw_characteristic(&self, t: usize) -> u8 {
        u8::from(self.reads[t] >= self.writes[t])
    }

    /// Each tenant's share of the window's requests; all zeros for an
    /// empty window.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.tenants()];
        }
        (0..self.tenants())
            .map(|t| self.per_tenant_total(t) as f64 / total as f64)
            .collect()
    }

    /// Total write fraction across tenants (the y-axis of Figure 6).
    pub fn total_write_proportion(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.writes.iter().sum::<u64>() as f64 / total as f64
    }

    /// Intensity level under the given scale.
    pub fn intensity_level(&self, scale: &IntensityScale) -> u32 {
        scale.level(self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    fn req(t: u16, op: Op, at: u64) -> IoRequest {
        IoRequest::new(0, t, op, 0, 1, at)
    }

    #[test]
    fn collect_respects_window() {
        let trace = vec![
            req(0, Op::Read, 0),
            req(0, Op::Write, 50),
            req(1, Op::Read, 100), // outside window
        ];
        let obs = ObservedFeatures::collect(&trace, 2, 100);
        assert_eq!(obs.total(), 2);
        assert_eq!(obs.reads, vec![1, 0]);
        assert_eq!(obs.writes, vec![1, 0]);
    }

    #[test]
    fn characteristics_and_shares() {
        let trace = vec![
            req(0, Op::Write, 0),
            req(0, Op::Write, 1),
            req(0, Op::Read, 2),
            req(1, Op::Read, 3),
        ];
        let obs = ObservedFeatures::collect(&trace, 2, u64::MAX);
        assert_eq!(obs.rw_characteristic(0), 0, "tenant 0 write-dominated");
        assert_eq!(obs.rw_characteristic(1), 1, "tenant 1 read-dominated");
        assert_eq!(obs.shares(), vec![0.75, 0.25]);
        assert_eq!(obs.total_write_proportion(), 0.5);
    }

    #[test]
    fn collect_range_slices_by_arrival() {
        let trace = vec![
            req(0, Op::Read, 10),
            req(0, Op::Write, 20),
            req(1, Op::Read, 30),
            req(1, Op::Write, 40),
        ];
        let obs = ObservedFeatures::collect_range(&trace, 2, 20, 40);
        assert_eq!(obs.total(), 2);
        assert_eq!(obs.writes[0], 1);
        assert_eq!(obs.reads[1], 1);
        // Inclusive start, exclusive end.
        let edge = ObservedFeatures::collect_range(&trace, 2, 40, 41);
        assert_eq!(edge.total(), 1);
        // Empty range.
        assert_eq!(
            ObservedFeatures::collect_range(&trace, 2, 50, 100).total(),
            0
        );
    }

    #[test]
    fn collect_equals_collect_range_from_zero() {
        let trace: Vec<IoRequest> = (0..50)
            .map(|i| {
                req(
                    (i % 3) as u16,
                    if i % 2 == 0 { Op::Read } else { Op::Write },
                    i * 7,
                )
            })
            .collect();
        assert_eq!(
            ObservedFeatures::collect(&trace, 3, 200),
            ObservedFeatures::collect_range(&trace, 3, 0, 200)
        );
    }

    #[test]
    fn idle_tenant_defaults_to_read_dominated() {
        let obs = ObservedFeatures::collect(&[], 2, u64::MAX);
        assert_eq!(obs.rw_characteristic(0), 1);
        assert_eq!(obs.shares(), vec![0.0, 0.0]);
        assert_eq!(obs.total_write_proportion(), 0.0);
    }

    #[test]
    fn intensity_level_quantization() {
        let scale = IntensityScale::new(2_000.0);
        assert_eq!(scale.level(0), 0);
        assert_eq!(scale.level(99), 0);
        assert_eq!(scale.level(100), 1);
        assert_eq!(scale.level(1_000), 10);
        assert_eq!(scale.level(1_999), 19);
        assert_eq!(scale.level(2_000), 19, "clamped at the top level");
        assert_eq!(scale.level(1_000_000), 19);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = IntensityScale::new(0.0);
    }

    #[test]
    fn out_of_range_tenants_are_ignored() {
        let trace = vec![req(7, Op::Read, 0)];
        let obs = ObservedFeatures::collect(&trace, 2, u64::MAX);
        assert_eq!(obs.total(), 0);
    }

    /// Shares always sum to ~1 for non-empty windows and levels stay
    /// below 20, over seeded random op mixes.
    #[test]
    fn invariants() {
        for seed in 0..48u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let len = rng.gen_range(1usize..300);
            let ops: Vec<(u16, bool)> = (0..len)
                .map(|_| (rng.gen_range(0u16..4), rng.gen()))
                .collect();
            let scale_max = rng.gen_range(1.0f64..10_000.0);
            let trace: Vec<IoRequest> = ops
                .iter()
                .enumerate()
                .map(|(i, &(t, is_read))| {
                    req(t, if is_read { Op::Read } else { Op::Write }, i as u64)
                })
                .collect();
            let obs = ObservedFeatures::collect(&trace, 4, u64::MAX);
            let sum: f64 = obs.shares().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "seed {seed}");
            let scale = IntensityScale::new(scale_max);
            assert!(
                obs.intensity_level(&scale) < INTENSITY_LEVELS,
                "seed {seed}"
            );
            let wp = obs.total_write_proportion();
            assert!((0.0..=1.0).contains(&wp), "seed {seed}");
        }
    }
}
