//! Synthesis of one tenant's request stream from its spec.

use crate::address::AddressGen;
use crate::arrival::ArrivalGen;
use crate::spec::{SizeDist, TenantSpec};
use flash_sim::{IoRequest, Op};
use simrng::Rng;

/// Generates `count` requests for `tenant_id` according to `spec`.
///
/// The stream is sorted by arrival time (arrivals are generated
/// monotonically) and fully determined by `(spec, tenant_id, count, seed)`.
///
/// # Panics
///
/// Panics if the spec fails validation — call [`TenantSpec::validate`]
/// first when handling untrusted input.
pub fn generate_tenant_stream(
    spec: &TenantSpec,
    tenant_id: u16,
    count: usize,
    seed: u64,
) -> Vec<IoRequest> {
    spec.validate().expect("invalid tenant spec");
    let mut rng = simrng::SimRng::seed_from_u64(seed ^ (tenant_id as u64) << 48);
    let mut arrivals = ArrivalGen::new(spec.arrival, spec.iops);
    let mut addrs = AddressGen::new(spec.pattern, spec.lpn_space);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let op = if rng.gen_bool(spec.write_ratio) {
            Op::Write
        } else {
            Op::Read
        };
        let size = match spec.size {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { min, max } => rng.gen_range(min..=max),
        };
        let arrival_ns = arrivals.next_arrival(&mut rng);
        let lpn = addrs.next_lpn(size, &mut rng);
        out.push(IoRequest {
            id: i as u64,
            tenant: tenant_id,
            op,
            lpn,
            size_pages: size,
            arrival_ns,
        });
    }
    out
}

/// Measured aggregate characteristics of a request stream, for validating
/// that generated traces match their specs (and for printing Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Total requests.
    pub count: usize,
    /// Fraction of write requests.
    pub write_ratio: f64,
    /// Mean request size in pages.
    pub mean_size: f64,
    /// Measured rate in I/Os per second.
    pub iops: f64,
}

/// Computes [`StreamStats`] for a stream.
pub fn stream_stats(stream: &[IoRequest]) -> StreamStats {
    if stream.is_empty() {
        return StreamStats {
            count: 0,
            write_ratio: 0.0,
            mean_size: 0.0,
            iops: 0.0,
        };
    }
    let writes = stream.iter().filter(|r| r.op == Op::Write).count();
    let pages: u64 = stream.iter().map(|r| r.size_pages as u64).sum();
    let span_ns = stream
        .last()
        .expect("non-empty")
        .arrival_ns
        .saturating_sub(stream[0].arrival_ns)
        .max(1);
    StreamStats {
        count: stream.len(),
        write_ratio: writes as f64 / stream.len() as f64,
        mean_size: pages as f64 / stream.len() as f64,
        iops: stream.len() as f64 / (span_ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AddressPattern, ArrivalProcess};

    fn base_spec() -> TenantSpec {
        TenantSpec::synthetic("t", 0.3, 10_000.0, 1 << 14)
    }

    #[test]
    fn stream_has_requested_count_and_sorted_arrivals() {
        let s = generate_tenant_stream(&base_spec(), 0, 500, 1);
        assert_eq!(s.len(), 500);
        assert!(s.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(s.iter().all(|r| r.tenant == 0 && r.size_pages == 1));
    }

    #[test]
    fn write_ratio_is_honoured() {
        let s = generate_tenant_stream(&base_spec(), 1, 10_000, 2);
        let stats = stream_stats(&s);
        assert!(
            (stats.write_ratio - 0.3).abs() < 0.02,
            "got {}",
            stats.write_ratio
        );
    }

    #[test]
    fn iops_is_honoured() {
        let s = generate_tenant_stream(&base_spec(), 0, 20_000, 3);
        let stats = stream_stats(&s);
        assert!(
            (stats.iops - 10_000.0).abs() / 10_000.0 < 0.05,
            "got {}",
            stats.iops
        );
    }

    #[test]
    fn sizes_follow_distribution() {
        let mut spec = base_spec();
        spec.size = SizeDist::Uniform { min: 2, max: 6 };
        let s = generate_tenant_stream(&spec, 0, 5_000, 4);
        assert!(s.iter().all(|r| (2..=6).contains(&r.size_pages)));
        let stats = stream_stats(&s);
        assert!(
            (stats.mean_size - 4.0).abs() < 0.15,
            "got {}",
            stats.mean_size
        );
    }

    #[test]
    fn deterministic_per_seed_and_tenant() {
        let a = generate_tenant_stream(&base_spec(), 0, 100, 5);
        let b = generate_tenant_stream(&base_spec(), 0, 100, 5);
        assert_eq!(a, b);
        let c = generate_tenant_stream(&base_spec(), 0, 100, 6);
        assert_ne!(a, c);
        let d = generate_tenant_stream(&base_spec(), 1, 100, 5);
        assert_ne!(
            a.iter().map(|r| r.lpn).collect::<Vec<_>>(),
            d.iter().map(|r| r.lpn).collect::<Vec<_>>(),
            "different tenants must draw different streams"
        );
    }

    #[test]
    fn bursty_sequential_spec_generates() {
        let spec = TenantSpec {
            arrival: ArrivalProcess::OnOff {
                on_fraction: 0.25,
                burst_len: 16,
            },
            pattern: AddressPattern::SequentialRuns { run_len: 8 },
            ..base_spec()
        };
        let s = generate_tenant_stream(&spec, 2, 1_000, 7);
        assert_eq!(s.len(), 1_000);
        assert!(s.iter().all(|r| r.lpn < 1 << 14));
    }

    #[test]
    fn empty_stream_stats() {
        let stats = stream_stats(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.iops, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid tenant spec")]
    fn invalid_spec_panics() {
        let mut spec = base_spec();
        spec.write_ratio = 7.0;
        let _ = generate_tenant_stream(&spec, 0, 10, 1);
    }
}
