//! Address (LPN) generation for the three locality patterns.

use crate::spec::AddressPattern;
use simrng::Rng;

/// Stateful LPN generator for one tenant.
#[derive(Debug, Clone)]
pub struct AddressGen {
    pattern: AddressPattern,
    lpn_space: u64,
    /// Sequential-run cursor.
    run_pos: u64,
    run_remaining: u32,
}

impl AddressGen {
    /// Builds a generator over `0..lpn_space`.
    ///
    /// # Panics
    ///
    /// Panics if `lpn_space` is zero.
    pub fn new(pattern: AddressPattern, lpn_space: u64) -> Self {
        assert!(lpn_space > 0, "lpn space must be non-empty");
        Self {
            pattern,
            lpn_space,
            run_pos: 0,
            run_remaining: 0,
        }
    }

    /// Draws the starting LPN of the next request. `size` pages will be
    /// accessed from it; sequential runs advance by `size`.
    pub fn next_lpn(&mut self, size: u32, rng: &mut impl Rng) -> u64 {
        match self.pattern {
            AddressPattern::Uniform => rng.gen_range(0..self.lpn_space),
            AddressPattern::Zipf { theta } => zipf_approx(self.lpn_space, theta, rng),
            AddressPattern::SequentialRuns { run_len } => {
                if self.run_remaining == 0 {
                    self.run_remaining = run_len;
                    self.run_pos = rng.gen_range(0..self.lpn_space);
                }
                self.run_remaining -= 1;
                let lpn = self.run_pos;
                self.run_pos = (self.run_pos + size as u64) % self.lpn_space;
                lpn
            }
        }
    }
}

/// Bounded-Zipf sample via the continuous inverse-CDF approximation:
/// `F(x) ∝ x^(1-θ)` on `[1, n]`, so `x = ((n^(1-θ) - 1)·u + 1)^(1/(1-θ))`.
/// Rank 1 (the hottest page) maps to LPN 0.
///
/// The approximation slightly underweights the very first ranks relative
/// to exact Zipf but preserves the power-law head/tail shape that matters
/// for GC and cache behaviour.
pub fn zipf_approx(n: u64, theta: f64, rng: &mut impl Rng) -> u64 {
    simrng::dist::zipf(rng, n, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::Rng;

    fn rng(seed: u64) -> simrng::SimRng {
        simrng::SimRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut g = AddressGen::new(AddressPattern::Uniform, 32);
        let mut r = rng(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let lpn = g.next_lpn(1, &mut r);
            assert!(lpn < 32);
            seen.insert(lpn);
        }
        assert_eq!(seen.len(), 32, "2000 uniform draws should cover 32 slots");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let n = 10_000u64;
        let mut r = rng(2);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if zipf_approx(n, 0.9, &mut r) < n / 100 {
                head += 1;
            }
        }
        // With theta=0.9, the hottest 1% of pages should absorb far more
        // than 1% of accesses.
        assert!(
            head as f64 / draws as f64 > 0.2,
            "head fraction {}",
            head as f64 / draws as f64
        );
    }

    #[test]
    fn zipf_skew_increases_with_theta() {
        let n = 10_000u64;
        let head_frac = |theta: f64| {
            let mut r = rng(3);
            let mut head = 0usize;
            for _ in 0..10_000 {
                if zipf_approx(n, theta, &mut r) < n / 10 {
                    head += 1;
                }
            }
            head as f64 / 10_000.0
        };
        assert!(head_frac(0.9) > head_frac(0.5));
        assert!(head_frac(0.5) > head_frac(0.1));
    }

    #[test]
    fn sequential_runs_walk_forward() {
        let mut g = AddressGen::new(AddressPattern::SequentialRuns { run_len: 4 }, 1000);
        let mut r = rng(4);
        let a = g.next_lpn(2, &mut r);
        let b = g.next_lpn(2, &mut r);
        let c = g.next_lpn(2, &mut r);
        let d = g.next_lpn(2, &mut r);
        assert_eq!(b, (a + 2) % 1000);
        assert_eq!(c, (b + 2) % 1000);
        assert_eq!(d, (c + 2) % 1000);
        // Fifth draw starts a new run (usually elsewhere).
        let e = g.next_lpn(2, &mut r);
        assert!(e < 1000);
    }

    #[test]
    fn sequential_runs_wrap_at_space_end() {
        let mut g = AddressGen::new(AddressPattern::SequentialRuns { run_len: 100 }, 8);
        let mut r = rng(5);
        for _ in 0..50 {
            assert!(g.next_lpn(3, &mut r) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_space_panics() {
        let _ = AddressGen::new(AddressPattern::Uniform, 0);
    }

    /// Zipf samples always fall inside [0, n), over seeded random
    /// (n, theta) pairs.
    #[test]
    fn zipf_in_range() {
        let mut meta = rng(801);
        for _ in 0..512 {
            let n = meta.gen_range(1u64..100_000);
            let theta = meta.gen_range(0.05f64..0.95);
            let mut r = rng(meta.gen());
            let v = zipf_approx(n, theta, &mut r);
            assert!(v < n, "n {n} theta {theta}");
        }
    }

    /// All patterns produce in-range addresses.
    #[test]
    fn all_patterns_in_range() {
        let mut meta = rng(802);
        for _ in 0..64 {
            let seed: u64 = meta.gen();
            let size = meta.gen_range(1u32..8);
            let patterns = [
                AddressPattern::Uniform,
                AddressPattern::Zipf { theta: 0.8 },
                AddressPattern::SequentialRuns { run_len: 7 },
            ];
            for p in patterns {
                let mut g = AddressGen::new(p, 513);
                let mut r = rng(seed);
                for _ in 0..64 {
                    assert!(g.next_lpn(size, &mut r) < 513);
                }
            }
        }
    }
}
