//! A minimal in-repo benchmark harness.
//!
//! The bench targets in `benches/` are plain `harness = false` binaries,
//! so they need something to time closures and print a report. This
//! module is that something: warmup runs, then `N` measured iterations,
//! then a one-line `min/median/mean/p99/max` summary per benchmark. It
//! has no external dependencies and no statistics beyond order
//! statistics, which is all the figure-reproduction benches need — they
//! compare the *same* binary across configurations, not across machines.
//!
//! Iteration counts are environment-tunable so CI can run a smoke pass:
//!
//! * `SSDKEEPER_BENCH_ITERS` — measured iterations per benchmark
//!   (overrides [`Group::sample_size`]).
//! * `SSDKEEPER_BENCH_WARMUP` — warmup iterations (default 2).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] so bench code has one import.
pub use std::hint::black_box;

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// A named group of benchmarks sharing iteration settings, mirroring the
/// shape of the Criterion API this harness replaced so bench targets read
/// the same way.
pub struct Group {
    name: String,
    iters: usize,
    warmup: usize,
    /// Optional element count per iteration; when set, the report adds a
    /// throughput column derived from the median.
    throughput: Option<u64>,
}

impl Group {
    /// Creates a group with the default (or env-overridden) settings.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            // Clamped to 1: zero measured iterations leaves nothing to
            // report.
            iters: env_usize("SSDKEEPER_BENCH_ITERS").unwrap_or(10).max(1),
            warmup: env_usize("SSDKEEPER_BENCH_WARMUP").unwrap_or(2),
            throughput: None,
        }
    }

    /// Sets the measured-iteration count (ignored when
    /// `SSDKEEPER_BENCH_ITERS` is set).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_usize("SSDKEEPER_BENCH_ITERS").is_none() {
            self.iters = n.max(1);
        }
        self
    }

    /// Declares that each iteration processes `elements` items.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Runs `f` for warmup + N iterations and prints a summary line.
    ///
    /// The closure's return value is routed through [`black_box`] so the
    /// optimizer cannot delete the benchmarked work.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        let report = Report::from_sorted(&samples);
        let label = format!("{}/{}", self.name, id);
        match self.throughput {
            Some(elems) => {
                let per_s = elems as f64 / report.median.as_secs_f64();
                println!(
                    "{label:<48} iters={:<4} min={} median={} mean={} p99={} max={}  {:.2} Melem/s",
                    self.iters,
                    fmt(report.min),
                    fmt(report.median),
                    fmt(report.mean),
                    fmt(report.p99),
                    fmt(report.max),
                    per_s / 1e6,
                );
            }
            None => {
                println!(
                    "{label:<48} iters={:<4} min={} median={} mean={} p99={} max={}",
                    self.iters,
                    fmt(report.min),
                    fmt(report.median),
                    fmt(report.mean),
                    fmt(report.p99),
                    fmt(report.max),
                );
            }
        }
    }

    /// No-op terminator, kept so call sites read like the old API.
    pub fn finish(&mut self) {}
}

/// Order statistics over one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration (lower-middle sample for even counts).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// 99th-percentile iteration (nearest-rank).
    pub p99: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Report {
    /// Computes the report from an ascending-sorted, non-empty slice.
    pub fn from_sorted(sorted: &[Duration]) -> Self {
        assert!(!sorted.is_empty(), "report needs at least one sample");
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "samples must be sorted"
        );
        let n = sorted.len();
        let rank = |q: f64| sorted[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        Self {
            min: sorted[0],
            median: rank(0.5),
            mean: sorted.iter().sum::<Duration>() / n as u32,
            p99: rank(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Formats a duration with an auto-selected unit, fixed width.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{:>8}", format!("{ns}ns"))
    } else if ns < 10_000_000 {
        format!("{:>8}", format!("{:.1}us", ns as f64 / 1e3))
    } else if ns < 10_000_000_000 {
        format!("{:>8}", format!("{:.1}ms", ns as f64 / 1e6))
    } else {
        format!("{:>8}", format!("{:.2}s", ns as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn report_order_statistics() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let r = Report::from_sorted(&samples);
        assert_eq!(r.min, ms(1));
        assert_eq!(r.median, ms(50));
        assert_eq!(r.p99, ms(99));
        assert_eq!(r.max, ms(100));
        assert_eq!(r.mean, ms(50) + Duration::from_micros(500));
    }

    #[test]
    fn report_single_sample_is_degenerate() {
        let r = Report::from_sorted(&[ms(7)]);
        assert_eq!(r.min, ms(7));
        assert_eq!(r.median, ms(7));
        assert_eq!(r.p99, ms(7));
        assert_eq!(r.max, ms(7));
        assert_eq!(r.mean, ms(7));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn report_rejects_empty() {
        let _ = Report::from_sorted(&[]);
    }

    #[test]
    fn bench_runs_closure_warmup_plus_iters() {
        let mut calls = 0u32;
        let mut g = Group::new("test");
        g.sample_size(5);
        g.warmup = 2;
        // Env overrides would change the count; skip the exact assertion
        // when the smoke-pass variables are set.
        let overridden = std::env::var("SSDKEEPER_BENCH_ITERS").is_ok();
        g.bench("counting", || calls += 1);
        if !overridden {
            assert_eq!(calls, 7, "2 warmup + 5 measured");
        } else {
            assert!(calls > 0);
        }
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt(Duration::from_nanos(500)).trim(), "500ns");
        assert_eq!(fmt(Duration::from_micros(500)).trim(), "500.0us");
        assert_eq!(fmt(Duration::from_millis(500)).trim(), "500.0ms");
        assert_eq!(fmt(Duration::from_secs(12)).trim(), "12.00s");
    }
}
